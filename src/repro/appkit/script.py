"""Application scripts: the setup/run pair plus bash interop.

An :class:`AppScript` is the Python-native equivalent of the user's bash
script from the paper's Listing 2: a setup function ("download of input
data and preparation of the application") and a run function ("a simple
mpirun command, or ... preparation of input files based on environment
variables, ... parse of application metric data").

For fidelity with the paper's user experience, every plugin can render
itself to a Listing-2-style bash script (:meth:`AppScript.to_bash`), and
:func:`parse_bash_script` performs the structural validation the real tool
does on user-provided scripts (both functions present, metric emissions
discoverable).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.appkit.context import AppRunContext
from repro.errors import AppScriptError

#: Function names the paper's contract mandates.
SETUP_FN = "hpcadvisor_setup"
RUN_FN = "hpcadvisor_run"


@dataclass
class AppScript:
    """A setup/run pair implementing the application contract.

    Attributes
    ----------
    appname:
        Name matching the configuration's ``appname`` field and the
        performance-model registry.
    setup:
        Called once per pool (per VM type, as in Algorithm 1 line 6).
        Returns an exit code (0 = success).
    run:
        Called once per scenario.  Returns an exit code; stdout with
        HPCADVISORVAR lines accumulates on the context.
    setup_seconds:
        Simulated duration of the setup phase (downloads, compilation).
    bash_equivalent:
        Optional hand-written bash rendering; when absent,
        :meth:`to_bash` generates a skeleton.
    """

    appname: str
    setup: Callable[[AppRunContext], int]
    run: Callable[[AppRunContext], int]
    setup_seconds: float = 60.0
    bash_equivalent: Optional[str] = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.appname:
            raise AppScriptError("AppScript needs an application name")
        if self.setup_seconds < 0:
            raise AppScriptError(
                f"negative setup duration: {self.setup_seconds}"
            )

    def to_bash(self) -> str:
        """Render the plugin as a Listing-2-style bash script."""
        if self.bash_equivalent is not None:
            return self.bash_equivalent
        return (
            "#!/usr/bin/env bash\n"
            "\n"
            f"# Auto-generated equivalent of the {self.appname!r} plugin.\n"
            f"{SETUP_FN}() {{\n"
            f"  # {self.description or 'prepare application and input data'}\n"
            "  return 0\n"
            "}\n"
            "\n"
            f"{RUN_FN}() {{\n"
            "  NP=$(($NNODES * $PPN))\n"
            f"  mpirun -np $NP --host \"$HOSTLIST_PPN\" {self.appname}\n"
            "  echo \"HPCADVISORVAR APPEXECTIME=$APPEXECTIME\"\n"
            "  return 0\n"
            "}\n"
        )


@dataclass(frozen=True)
class BashScriptInfo:
    """Structural facts extracted from a user bash script."""

    functions: List[str]
    has_setup: bool
    has_run: bool
    emitted_vars: List[str]
    downloads: List[str]
    modules: List[str]


_FN_RE = re.compile(r"^\s*(?:function\s+)?([A-Za-z_][A-Za-z0-9_]*)\s*\(\)\s*\{",
                    re.MULTILINE)
_VAR_EMIT_RE = re.compile(r"HPCADVISORVAR\s+([A-Za-z_][A-Za-z0-9_]*)=")
_WGET_RE = re.compile(r"\b(?:wget|curl)\s+(?:-\S+\s+)*(\S+)")
_MODULE_RE = re.compile(r"^\s*module\s+load\s+(\S+)", re.MULTILINE)


def parse_bash_script(text: str) -> BashScriptInfo:
    """Validate and summarise a user-provided application bash script.

    Raises
    ------
    AppScriptError
        If either mandated function is missing — the same fast-fail the
        real tool performs before provisioning anything.
    """
    functions = _FN_RE.findall(text)
    has_setup = SETUP_FN in functions
    has_run = RUN_FN in functions
    if not has_setup or not has_run:
        missing = [
            name for name, ok in ((SETUP_FN, has_setup), (RUN_FN, has_run))
            if not ok
        ]
        raise AppScriptError(
            f"application script is missing required function(s): "
            f"{', '.join(missing)}"
        )
    return BashScriptInfo(
        functions=functions,
        has_setup=has_setup,
        has_run=has_run,
        emitted_vars=sorted(set(_VAR_EMIT_RE.findall(text))),
        downloads=_WGET_RE.findall(text),
        modules=_MODULE_RE.findall(text),
    )
