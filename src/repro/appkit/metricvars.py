"""HPCADVISORVAR metric extraction.

Paper Sec. III-A: "any line containing 'HPCADVISOR variable=value' is saved
in the dataset file".  Run scripts print lines like::

    HPCADVISORVAR APPEXECTIME=173.4
    HPCADVISORVAR LAMMPSATOMS=864000000

and the data-collection phase parses them out of the task's stdout.
"""

from __future__ import annotations

import re
from typing import Dict

MARKER = "HPCADVISORVAR"

#: name=value with the name a shell-identifier and the value the line's rest.
_VAR_RE = re.compile(
    rf"^\s*{MARKER}\s+([A-Za-z_][A-Za-z0-9_]*)=(.*?)\s*$", re.MULTILINE
)


def format_var(name: str, value: object) -> str:
    """Render one HPCADVISORVAR line the way run scripts emit it."""
    if not re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", name):
        raise ValueError(f"invalid HPCADVISORVAR name: {name!r}")
    return f"{MARKER} {name}={value}"


def extract_vars(stdout: str) -> Dict[str, str]:
    """Extract all HPCADVISORVAR assignments from a task's stdout.

    Later occurrences of the same name win, matching the real tool's
    behaviour of overwriting as it scans.
    """
    return {m.group(1): m.group(2) for m in _VAR_RE.finditer(stdout)}
