"""WRF plugin: CONUS-style forecast driven by a RESOLUTION input (km)."""

from __future__ import annotations

from repro.appkit.context import AppRunContext
from repro.appkit.script import AppScript

NAMELIST = "namelist.input"
LOG_FILE = "rsl.out.0000"


def _setup(ctx: AppRunContext) -> int:
    if ctx.filesystem.isfile(ctx.shared_path("wrfinput_d01")):
        ctx.echo("WRF input data already staged")
        return 0
    ctx.sleep(120.0)  # boundary-condition download + geogrid
    ctx.filesystem.write_text(ctx.shared_path("wrfinput_d01"), "wrf input fields")
    ctx.echo("staged WRF input data")
    return 0


def _run(ctx: AppRunContext) -> int:
    resolution = ctx.getenv("RESOLUTION")
    hours = ctx.env.get("FORECAST_HOURS", "6")
    ctx.copy_from_shared("wrfinput_d01")
    ctx.write_file(
        NAMELIST,
        f"&domains\n dx = {float(resolution) * 1000:.0f},\n"
        f" run_hours = {hours},\n/\n",
    )
    nnodes = int(ctx.getenv("NNODES"))
    ppn = int(ctx.getenv("PPN"))
    result = ctx.mpirun(
        "wrf",
        {"resolution": resolution, "forecast_hours": hours},
        np=nnodes * ppn,
    )
    if not result.succeeded:
        ctx.echo("wrf.exe failed")
        ctx.echo(f"reason: {result.perf.failure_reason}")
        return 1
    ctx.write_file(
        LOG_FILE,
        f"Timing for main: {result.exec_time_s:.2f} elapsed seconds\n"
        "wrf: SUCCESS COMPLETE WRF\n",
    )
    if "SUCCESS COMPLETE WRF" not in ctx.read_file(LOG_FILE):
        return 1
    ctx.emit_var("APPEXECTIME", f"{result.exec_time_s:.6g}")
    for key, value in result.perf.app_vars.items():
        ctx.emit_var(key, value)
    return 0


def make_wrf_script() -> AppScript:
    return AppScript(
        appname="wrf",
        setup=_setup,
        run=_run,
        setup_seconds=120.0,
        description="WRF CONUS forecast at RESOLUTION km",
    )
