"""NAMD plugin: STMV-class MD driven by an ATOMS input."""

from __future__ import annotations

from repro.appkit.context import AppRunContext
from repro.appkit.script import AppScript

CONF_FILE = "stmv.namd"
LOG_FILE = "namd.log"


def _setup(ctx: AppRunContext) -> int:
    if ctx.filesystem.isfile(ctx.shared_path("stmv.psf")):
        ctx.echo("NAMD structure files already staged")
        return 0
    ctx.sleep(90.0)
    ctx.filesystem.write_text(ctx.shared_path("stmv.psf"), "protein structure file")
    ctx.filesystem.write_text(ctx.shared_path("stmv.pdb"), "coordinates")
    ctx.echo("staged STMV benchmark inputs")
    return 0


def _run(ctx: AppRunContext) -> int:
    atoms = ctx.getenv("ATOMS")
    steps = ctx.env.get("STEPS", "5000")
    ctx.copy_from_shared("stmv.psf")
    ctx.copy_from_shared("stmv.pdb")
    ctx.write_file(CONF_FILE, f"structure stmv.psf\nnumsteps {steps}\n")
    nnodes = int(ctx.getenv("NNODES"))
    ppn = int(ctx.getenv("PPN"))
    result = ctx.mpirun("namd", {"atoms": atoms, "steps": steps}, np=nnodes * ppn)
    if not result.succeeded:
        ctx.echo("namd2 failed")
        ctx.echo(f"reason: {result.perf.failure_reason}")
        return 1
    ctx.write_file(
        LOG_FILE,
        f"Info: Benchmark time: {result.exec_time_s:.4f} s\n"
        "End of program\n",
    )
    if "End of program" not in ctx.read_file(LOG_FILE):
        return 1
    ctx.emit_var("APPEXECTIME", f"{result.exec_time_s:.6g}")
    for key, value in result.perf.app_vars.items():
        ctx.emit_var(key, value)
    return 0


def make_namd_script() -> AppScript:
    return AppScript(
        appname="namd",
        setup=_setup,
        run=_run,
        setup_seconds=90.0,
        description="NAMD STMV-class benchmark, system size from ATOMS",
    )
