"""Built-in application plugins.

One per application the paper validates (LAMMPS, OpenFOAM, WRF, GROMACS,
NAMD) plus the matrix-multiplication quickstart app.  Each mirrors the
bash-script workflow of the paper's Listing 2: stage input data during
setup, rewrite input files from environment variables, mpirun, check the
application log for success, and emit HPCADVISORVAR metrics.
"""

from __future__ import annotations

from typing import Dict, List

from repro.appkit.script import AppScript
from repro.errors import AppScriptError

from repro.appkit.plugins.lammps import make_lammps_script
from repro.appkit.plugins.openfoam import make_openfoam_script
from repro.appkit.plugins.wrf import make_wrf_script
from repro.appkit.plugins.gromacs import make_gromacs_script
from repro.appkit.plugins.namd import make_namd_script
from repro.appkit.plugins.matrixmult import make_matrixmult_script

_FACTORIES = {
    "lammps": make_lammps_script,
    "openfoam": make_openfoam_script,
    "wrf": make_wrf_script,
    "gromacs": make_gromacs_script,
    "namd": make_namd_script,
    "matrixmult": make_matrixmult_script,
}


def get_plugin(appname: str) -> AppScript:
    """Instantiate the built-in plugin for ``appname``."""
    key = appname.lower()
    try:
        return _FACTORIES[key]()
    except KeyError:
        raise AppScriptError(
            f"no built-in plugin for application {appname!r} "
            f"(known: {', '.join(sorted(_FACTORIES))})"
        ) from None


def list_plugins() -> List[str]:
    return sorted(_FACTORIES)
