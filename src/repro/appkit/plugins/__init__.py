"""Built-in application plugins.

One per application the paper validates (LAMMPS, OpenFOAM, WRF, GROMACS,
NAMD) plus the matrix-multiplication quickstart app.  Each mirrors the
bash-script workflow of the paper's Listing 2: stage input data during
setup, rewrite input files from environment variables, mpirun, check the
application log for success, and emit HPCADVISORVAR metrics.

Plugins live in the unified capability registry
(:mod:`repro.api.registry`); third-party applications register with the
``@register_app("name")`` decorator.  :func:`get_plugin` and
:func:`list_plugins` are kept as the historical entry points.
"""

from __future__ import annotations

from typing import List

from repro.api.registry import apps, register_app
from repro.appkit.script import AppScript

from repro.appkit.plugins.lammps import make_lammps_script
from repro.appkit.plugins.openfoam import make_openfoam_script
from repro.appkit.plugins.wrf import make_wrf_script
from repro.appkit.plugins.gromacs import make_gromacs_script
from repro.appkit.plugins.namd import make_namd_script
from repro.appkit.plugins.matrixmult import make_matrixmult_script

for _name, _factory in (
    ("lammps", make_lammps_script),
    ("openfoam", make_openfoam_script),
    ("wrf", make_wrf_script),
    ("gromacs", make_gromacs_script),
    ("namd", make_namd_script),
    ("matrixmult", make_matrixmult_script),
):
    if _name not in apps:
        register_app(_name)(_factory)


def get_plugin(appname: str) -> AppScript:
    """Instantiate the plugin registered for ``appname``."""
    return apps.create(appname)


def list_plugins() -> List[str]:
    return apps.names()
