"""OpenFOAM plugin: the motorBike case driven by BLOCKMESH dimensions.

The paper's OpenFOAM example sets "BLOCKMESH DIMENSIONS" (e.g. "40 16 16"
for ~8 million cells) through the ``mesh`` application input.  The workflow:
stage the motorBike tutorial case, rewrite ``blockMeshDict`` from ``$MESH``,
decompose, run simpleFoam under mpirun, verify the solver log, and emit
cell count/iteration metrics.
"""

from __future__ import annotations

from repro.appkit.context import AppRunContext
from repro.appkit.script import AppScript

CASE_DIR_MARKER = "motorBike.tgz"
LOG_FILE = "log.simpleFoam"

BLOCKMESH_TEMPLATE = """\
FoamFile {{ version 2.0; format ascii; class dictionary; object blockMeshDict; }}

vertices ( /* motorBike bounding box */ );

blocks
(
    hex (0 1 2 3 4 5 6 7) ({bx} {by} {bz}) simpleGrading (1 1 1)
);
"""


def _setup(ctx: AppRunContext) -> int:
    if ctx.filesystem.isfile(ctx.shared_path(CASE_DIR_MARKER)):
        ctx.echo("motorBike case already staged")
        return 0
    ctx.sleep(45.0)  # clone tutorial + source OpenFOAM environment
    ctx.filesystem.write_text(ctx.shared_path(CASE_DIR_MARKER),
                              "motorBike tutorial case archive")
    ctx.echo("staged motorBike case")
    return 0


def _run(ctx: AppRunContext) -> int:
    mesh = ctx.getenv("MESH")
    parts = mesh.split()
    if len(parts) != 3:
        ctx.echo(f"invalid MESH specification: {mesh!r}")
        return 1
    bx, by, bz = parts

    ctx.copy_from_shared(CASE_DIR_MARKER)
    ctx.write_file(
        "system/blockMeshDict",
        BLOCKMESH_TEMPLATE.format(bx=bx, by=by, bz=bz),
    )
    ctx.echo(f"blockMesh dimensions set to {mesh}")

    nnodes = int(ctx.getenv("NNODES"))
    ppn = int(ctx.getenv("PPN"))
    result = ctx.mpirun("openfoam", {"mesh": mesh}, np=nnodes * ppn)

    if not result.succeeded:
        ctx.echo("simpleFoam did not converge / failed to run")
        ctx.echo(f"reason: {result.perf.failure_reason}")
        return 1

    exec_time = result.exec_time_s
    cells = result.perf.app_vars["OFCELLS"]
    iters = result.perf.app_vars["OFITERATIONS"]
    ctx.write_file(
        LOG_FILE,
        f"Create mesh: {cells} cells\n"
        f"ExecutionTime = {exec_time:.2f} s  ClockTime = {exec_time:.0f} s\n"
        "End\n",
    )
    log = ctx.read_file(LOG_FILE)
    if "End" not in log:
        ctx.echo("simpleFoam log incomplete")
        return 1
    exec_line = next(ln for ln in log.splitlines()
                     if ln.startswith("ExecutionTime"))
    ctx.emit_var("APPEXECTIME", exec_line.split()[2])
    ctx.emit_var("OFCELLS", cells)
    ctx.emit_var("OFITERATIONS", iters)
    return 0


def make_openfoam_script() -> AppScript:
    return AppScript(
        appname="openfoam",
        setup=_setup,
        run=_run,
        setup_seconds=45.0,
        description="OpenFOAM motorBike with blockMesh dimensions from MESH",
    )
