"""LAMMPS plugin — a faithful Python port of the paper's Listing 2.

The bash original: setup downloads ``in.lj.txt``; run loads LAMMPS from
EESSI, copies the input from the parent directory, rewrites the x/y/z box
multipliers with ``sed`` from ``$BOXFACTOR``, launches
``mpirun -np $NP --host "$HOSTLIST_PPN" lmp -i in.lj.txt``, then greps
``log.lammps`` for the ``Loop`` line to extract execution time, atom count
and step count, emitting them as HPCADVISORVAR values.

This port performs the same steps against the simulated filesystem and MPI
launcher, including writing and re-parsing a real-format LAMMPS log file.
"""

from __future__ import annotations

import re

from repro.appkit.context import AppRunContext
from repro.appkit.script import AppScript

INPUT_FILE = "in.lj.txt"
LOG_FILE = "log.lammps"

#: Stock in.lj content (abridged to the lines the workflow manipulates).
IN_LJ_TEMPLATE = """\
# 3d Lennard-Jones melt

variable        x index 1
variable        y index 1
variable        z index 1

variable        xx equal 20*$x
variable        yy equal 20*$y
variable        zz equal 20*$z

units           lj
atom_style      atomic

lattice         fcc 0.8442
region          box block 0 ${xx} 0 ${yy} 0 ${zz}
create_box      1 box
create_atoms    1 box

pair_style      lj/cut 2.5
pair_coeff      1 1 1.0 1.0 2.5

fix             1 all nve

run             100
"""

_VAR_LINE_RE = re.compile(
    r"^variable\s+([xyz])\s+index\s+\d+", re.MULTILINE
)


def _sed_boxfactor(text: str, boxfactor: str) -> str:
    """Apply the three sed substitutions from Listing 2 lines 21-23."""
    return _VAR_LINE_RE.sub(
        lambda m: f"variable        {m.group(1)} index {boxfactor}", text
    )


def _setup(ctx: AppRunContext) -> int:
    # if [[ -f in.lj.txt ]]; then echo "Data already exists"; return 0; fi
    if ctx.filesystem.isfile(ctx.shared_path(INPUT_FILE)):
        ctx.echo("Data already exists")
        return 0
    # wget https://www.lammps.org/inputs/in.lj.txt
    ctx.sleep(5.0)  # download
    ctx.filesystem.write_text(ctx.shared_path(INPUT_FILE), IN_LJ_TEMPLATE)
    ctx.echo(f"downloaded {INPUT_FILE}")
    return 0


def _run(ctx: AppRunContext) -> int:
    # source EESSI; module load LAMMPS  (application comes from EESSI)
    ctx.echo("EESSI environment initialised; module LAMMPS loaded")

    # cp ../$inputfile .
    ctx.copy_from_shared(INPUT_FILE)

    # sed the box multipliers from $BOXFACTOR
    boxfactor = ctx.getenv("BOXFACTOR")
    ctx.write_file(INPUT_FILE, _sed_boxfactor(ctx.read_file(INPUT_FILE), boxfactor))

    # NP=$(($NNODES * $PPN)); mpirun -np $NP --host "$HOSTLIST_PPN" lmp -i ...
    nnodes = int(ctx.getenv("NNODES"))
    ppn = int(ctx.getenv("PPN"))
    np = nnodes * ppn
    result = ctx.mpirun("lammps", {"BOXFACTOR": boxfactor}, np=np)

    if not result.succeeded:
        ctx.echo("Simulation did not complete successfully.")
        ctx.echo(f"reason: {result.perf.failure_reason}")
        return 1

    # Write a real-format log.lammps for the grep/awk stage to parse.
    exec_time = result.exec_time_s
    atoms = result.perf.app_vars["LAMMPSATOMS"]
    steps = result.perf.app_vars["LAMMPSSTEPS"]
    hours, rem = divmod(int(exec_time), 3600)
    mins, secs = divmod(rem, 60)
    ctx.write_file(
        LOG_FILE,
        f"LAMMPS (2 Aug 2023 - Update 1)\n"
        f"Loop time of {exec_time:.6g} on {np} procs for {steps} steps "
        f"with {atoms} atoms\n"
        f"Total wall time: {hours}:{mins:02d}:{secs:02d}\n",
    )

    # grep -q "Total wall time:" "$log_file"
    log = ctx.read_file(LOG_FILE)
    if "Total wall time:" not in log:
        ctx.echo("Simulation did not complete successfully.")
        return 1
    ctx.echo("Simulation completed successfully.")

    # awk field extraction from the Loop line (fields 4, 9 and 12).
    loop_line = next(ln for ln in log.splitlines() if ln.startswith("Loop"))
    fields = loop_line.split()
    ctx.emit_var("APPEXECTIME", fields[3])
    ctx.emit_var("LAMMPSSTEPS", fields[8])
    ctx.emit_var("LAMMPSATOMS", fields[11])
    return 0


#: Bash rendering kept verbatim-close to the paper's Listing 2.
LISTING2_BASH = """\
#!/usr/bin/env bash

hpcadvisor_setup() {

  if [[ -f in.lj.txt ]]; then
    echo "Data already exists"
    return 0
  fi

  wget https://www.lammps.org/inputs/in.lj.txt
}

hpcadvisor_run() {

  source /cvmfs/software.eessi.io/versions/2023.06/init/bash
  module load LAMMPS

  inputfile="in.lj.txt"
  cp ../$inputfile .

  sed -i "s/variable\\s\\+x\\s\\+index\\s\\+[0-9]\\+/variable x index $BOXFACTOR/" $inputfile
  sed -i "s/variable\\s\\+y\\s\\+index\\s\\+[0-9]\\+/variable y index $BOXFACTOR/" $inputfile
  sed -i "s/variable\\s\\+z\\s\\+index\\s\\+[0-9]\\+/variable z index $BOXFACTOR/" $inputfile

  NP=$(($NNODES * $PPN))
  export UCX_NET_DEVICES=mlx5_ib0:1
  APP=$(which lmp)
  mpirun -np $NP --host "$HOSTLIST_PPN" "$APP" -i $inputfile

  log_file="log.lammps"

  if grep -q "Total wall time:" "$log_file"; then
    echo "Simulation completed successfully."
    APPEXECTIME=$(cat log.lammps | grep Loop | awk '{print $4}')
    LAMMPSATOMS=$(cat log.lammps | grep Loop | awk '{print $12}')
    LAMMPSSTEPS=$(cat log.lammps | grep Loop | awk '{print $9}')
    echo "HPCADVISORVAR APPEXECTIME=$APPEXECTIME"
    echo "HPCADVISORVAR LAMMPSATOMS=$LAMMPSATOMS"
    echo "HPCADVISORVAR LAMMPSSTEPS=$LAMMPSSTEPS"
    return 0
  else
    echo "Simulation did not complete successfully."
    return 1
  fi
}
"""


def make_lammps_script() -> AppScript:
    return AppScript(
        appname="lammps",
        setup=_setup,
        run=_run,
        setup_seconds=30.0,  # EESSI module + input download
        bash_equivalent=LISTING2_BASH,
        description="LAMMPS Lennard-Jones benchmark scaled by BOXFACTOR",
    )
