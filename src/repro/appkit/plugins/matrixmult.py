"""Matrix-multiplication plugin: the paper's simplest example input.

Sec. III-A cites "matrix size for the matrix multiplication application" as
the canonical application input; this plugin backs the quickstart example.
"""

from __future__ import annotations

from repro.appkit.context import AppRunContext
from repro.appkit.script import AppScript

LOG_FILE = "mm.log"


def _setup(ctx: AppRunContext) -> int:
    ctx.sleep(10.0)  # compile the kernel
    ctx.filesystem.write_text(ctx.shared_path("mm.bin"), "compiled dgemm driver")
    ctx.echo("compiled matrix-multiplication kernel")
    return 0


def _run(ctx: AppRunContext) -> int:
    msize = ctx.getenv("MSIZE")
    nnodes = int(ctx.getenv("NNODES"))
    ppn = int(ctx.getenv("PPN"))
    result = ctx.mpirun("matrixmult", {"msize": msize}, np=nnodes * ppn)
    if not result.succeeded:
        ctx.echo("matrix multiplication failed")
        ctx.echo(f"reason: {result.perf.failure_reason}")
        return 1
    gflops = result.perf.app_vars.get("MMGFLOPS", "0")
    ctx.write_file(LOG_FILE, f"N={msize} GFLOPS={gflops}\ndone\n")
    ctx.emit_var("APPEXECTIME", f"{result.exec_time_s:.6g}")
    for key, value in result.perf.app_vars.items():
        ctx.emit_var(key, value)
    return 0


def make_matrixmult_script() -> AppScript:
    return AppScript(
        appname="matrixmult",
        setup=_setup,
        run=_run,
        setup_seconds=10.0,
        description="distributed dense matrix multiplication of order MSIZE",
    )
