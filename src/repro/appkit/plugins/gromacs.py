"""GROMACS plugin: water-box/protein MD driven by an ATOMS input."""

from __future__ import annotations

from repro.appkit.context import AppRunContext
from repro.appkit.script import AppScript

TPR_FILE = "topol.tpr"
LOG_FILE = "md.log"


def _setup(ctx: AppRunContext) -> int:
    if ctx.filesystem.isfile(ctx.shared_path(TPR_FILE)):
        ctx.echo("tpr already prepared")
        return 0
    ctx.sleep(60.0)  # pdb2gmx + solvate + grompp
    ctx.filesystem.write_text(ctx.shared_path(TPR_FILE), "portable binary run input")
    ctx.echo("prepared topol.tpr")
    return 0


def _run(ctx: AppRunContext) -> int:
    atoms = ctx.getenv("ATOMS")
    steps = ctx.env.get("STEPS", "10000")
    ctx.copy_from_shared(TPR_FILE)
    nnodes = int(ctx.getenv("NNODES"))
    ppn = int(ctx.getenv("PPN"))
    result = ctx.mpirun(
        "gromacs", {"atoms": atoms, "steps": steps}, np=nnodes * ppn
    )
    if not result.succeeded:
        ctx.echo("gmx mdrun failed")
        ctx.echo(f"reason: {result.perf.failure_reason}")
        return 1
    perf_line = result.perf.app_vars.get("GMXNSPERDAY", "0")
    ctx.write_file(
        LOG_FILE,
        f"Performance: {perf_line} ns/day\n"
        f"Finished mdrun: wall time {result.exec_time_s:.3f} s\n",
    )
    if "Finished mdrun" not in ctx.read_file(LOG_FILE):
        return 1
    ctx.emit_var("APPEXECTIME", f"{result.exec_time_s:.6g}")
    for key, value in result.perf.app_vars.items():
        ctx.emit_var(key, value)
    return 0


def make_gromacs_script() -> AppScript:
    return AppScript(
        appname="gromacs",
        setup=_setup,
        run=_run,
        setup_seconds=60.0,
        description="GROMACS MD with PME, system size from ATOMS",
    )
