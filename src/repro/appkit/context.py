"""Run context handed to application plugins.

Wraps the Batch task context with the conveniences the paper's bash scripts
get for free from the shell: a current working directory on the shared
filesystem, a parent directory where the setup phase staged input data,
stdout accumulation, environment lookup, and an ``mpirun`` that launches
the simulated application.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

from repro.appkit.metricvars import format_var
from repro.batch.task import TaskContext
from repro.cluster.filesystem import SharedFilesystem
from repro.cluster.host import Host
from repro.cluster.mpi import MpiLauncher, MpiRunResult
from repro.errors import AppScriptError

if False:  # pragma: no cover - typing only
    from repro.perf.noise import NoiseModel


@dataclass
class AppRunContext:
    """What a plugin's setup/run functions can do."""

    hosts: List[Host]
    filesystem: SharedFilesystem
    env: Dict[str, str]
    workdir: str
    shared_dir: str
    noise: Optional["NoiseModel"] = None
    _stdout: List[str] = field(default_factory=list)
    _extra_walltime_s: float = 0.0
    last_run: Optional[MpiRunResult] = None

    # -- shell-like helpers -------------------------------------------------------

    def echo(self, line: str) -> None:
        """Append a line to the task's stdout."""
        self._stdout.append(line)

    def emit_var(self, name: str, value: object) -> None:
        """Print an ``HPCADVISORVAR name=value`` line."""
        self.echo(format_var(name, value))

    def getenv(self, name: str, default: Optional[str] = None) -> str:
        value = self.env.get(name, default)
        if value is None:
            raise AppScriptError(
                f"required environment variable {name!r} is not set"
            )
        return value

    def sleep(self, seconds: float) -> None:
        """Model time spent outside mpirun (downloads, compilation)."""
        if seconds < 0:
            raise ValueError(f"negative sleep: {seconds}")
        self._extra_walltime_s += seconds

    # -- filesystem helpers -----------------------------------------------------------

    def path(self, name: str) -> str:
        return f"{self.workdir}/{name}"

    def shared_path(self, name: str) -> str:
        return f"{self.shared_dir}/{name}"

    def write_file(self, name: str, content: str) -> None:
        self.filesystem.write_text(self.path(name), content)

    def read_file(self, name: str) -> str:
        return self.filesystem.read_text(self.path(name))

    def file_exists(self, name: str) -> bool:
        return self.filesystem.isfile(self.path(name))

    def copy_from_shared(self, name: str) -> None:
        """``cp ../$inputfile .`` from the paper's Listing 2."""
        content = self.filesystem.read_text(self.shared_path(name))
        self.write_file(name, content)

    # -- process launch --------------------------------------------------------------

    def mpirun(
        self,
        app: str,
        inputs: Mapping[str, str],
        np: Optional[int] = None,
    ) -> MpiRunResult:
        """Launch the application across this task's hosts.

        ``ppn`` comes from the PPN environment variable (Table I), and the
        np cross-check mirrors ``NP=$(($NNODES * $PPN))``.
        """
        ppn = int(self.getenv("PPN"))
        launcher = MpiLauncher(hosts=self.hosts, noise=self.noise)
        result = launcher.run(app, inputs, ppn=ppn, np=np)
        self.last_run = result
        return result

    # -- results ----------------------------------------------------------------------

    @property
    def stdout(self) -> str:
        return "\n".join(self._stdout) + ("\n" if self._stdout else "")

    @property
    def wall_time_s(self) -> float:
        run_time = self.last_run.exec_time_s if (
            self.last_run and self.last_run.succeeded
        ) else 0.0
        return run_time + self._extra_walltime_s

    @classmethod
    def from_task_context(
        cls,
        task_ctx: TaskContext,
        shared_dir: str,
        noise: Optional["NoiseModel"] = None,
    ) -> "AppRunContext":
        return cls.from_task_context_like(
            hosts=task_ctx.hosts,
            filesystem=task_ctx.filesystem,
            env=dict(task_ctx.env),
            workdir=task_ctx.workdir,
            shared_dir=shared_dir,
            noise=noise,
        )

    @classmethod
    def from_task_context_like(
        cls,
        hosts: List[Host],
        filesystem: SharedFilesystem,
        env: Mapping[str, str],
        workdir: str,
        shared_dir: str,
        noise: Optional["NoiseModel"] = None,
    ) -> "AppRunContext":
        """Build a context from loose parts, creating the directories."""
        ctx = cls(
            hosts=list(hosts),
            filesystem=filesystem,
            env=dict(env),
            workdir=workdir,
            shared_dir=shared_dir,
            noise=noise,
        )
        filesystem.mkdir(workdir)
        filesystem.mkdir(shared_dir)
        return ctx
