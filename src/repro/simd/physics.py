"""Batched scenario physics: the pure part of a sweep, precomputable.

A scenario execution in the per-object path threads every run through a
``BatchTask`` / ``TaskContext`` / shared-filesystem / ``MpiLauncher``
tower, even though the *measurement* — execution time, application
variables, infrastructure metrics — is a pure function of
``(appname, sku, nnodes, ppn, appinputs)``.  This module evaluates that
function directly: one :class:`AppAdapter` per bundled plugin reproduces
the plugin's env handling and HPCADVISORVAR formatting byte for byte,
and :class:`ScenarioPhysics` caches every derived object (machine model,
network model, validated parameters, run shape) across the sweep so the
marginal cost per scenario is one ``simulate_shaped`` call.

Equivalence contract (enforced by ``tests/test_batched_kernel.py``):
for every scenario an adapter covers, :meth:`ScenarioPhysics.evaluate`
returns exactly the ``(succeeded, wall_time_s, app_vars, infra_metrics,
failure_reason)`` tuple that ``backends.common.execute_run`` would have
produced for the same scenario — including script-level failures
(missing required input, malformed MESH) and model-level failures
(out of memory).  Malformed *numeric* inputs raise the same
``ConfigError`` both paths raise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Tuple

from repro.cloud.skus import VmSku
from repro.cluster.network import NetworkModel, network_for_sku
from repro.core.scenarios import Scenario
from repro.perf.machine import MachineModel
from repro.perf.model import AppPerfModel, PerfResult, RunShape
from repro.perf.noise import NO_NOISE, NoiseModel
from repro.perf.registry import get_model

#: What AzureBatchBackend reports when a run script fails without printing
#: a ``reason:`` line (missing env var, malformed input string).
SCRIPT_FAILURE = "application script returned a non-zero exit code"

#: Table I environment variables; an appinput whose uppercased name
#: collides with one of these would change the plugin's NNODES/PPN view
#: in the per-object path, so such scenarios are not batch-eligible.
RESERVED_ENV = frozenset({
    "NNODES", "PPN", "SKU", "VMTYPE",
    "HOSTLIST_PPN", "HOSTFILE_PATH", "TASKRUN_DIR",
})


@dataclass(frozen=True)
class FastPhysics:
    """What one scenario execution measures, minus the substrate.

    Mirrors the fields the backend extracts from a task's output:
    ``wall_time_s`` is the *un-resumed* application wall time (the
    engine applies ``resumed_wall_s`` per attempt), ``app_vars`` is the
    HPCADVISORVAR dict in emission order, and ``failure_reason`` is the
    line ``_failure_line`` would have pulled from stdout (``None`` on
    success).
    """

    succeeded: bool
    wall_time_s: float
    app_vars: Dict[str, str]
    infra_metrics: Dict[str, float]
    failure_reason: Optional[str] = None


def _default_app_vars(perf: PerfResult) -> Dict[str, str]:
    """APPEXECTIME then the model's own vars — most plugins' emission."""
    out = {"APPEXECTIME": f"{perf.exec_time_s:.6g}"}
    out.update(perf.app_vars)
    return out


def _lammps_app_vars(perf: PerfResult) -> Dict[str, str]:
    # The plugin round-trips through log.lammps' Loop line: fields 4/9/12
    # are the .6g-formatted time, the step count, and the atom count.
    return {
        "APPEXECTIME": f"{perf.exec_time_s:.6g}",
        "LAMMPSSTEPS": perf.app_vars["LAMMPSSTEPS"],
        "LAMMPSATOMS": perf.app_vars["LAMMPSATOMS"],
    }


def _openfoam_app_vars(perf: PerfResult) -> Dict[str, str]:
    # "ExecutionTime = {t:.2f} s" → split()[2] gives the .2f rendering.
    return {
        "APPEXECTIME": f"{perf.exec_time_s:.2f}",
        "OFCELLS": perf.app_vars["OFCELLS"],
        "OFITERATIONS": perf.app_vars["OFITERATIONS"],
    }


def _openfoam_inputs(env: Mapping[str, str]) -> Optional[Dict[str, str]]:
    mesh = env["MESH"]
    if len(mesh.split()) != 3:
        return None  # plugin: "invalid MESH specification", exit 1
    return {"mesh": mesh}


@dataclass(frozen=True)
class AppAdapter:
    """How one plugin turns its environment into a model invocation."""

    appname: str
    #: Uppercased env names the run function getenv()s without default.
    required_env: Tuple[str, ...]
    #: env -> perf-model inputs; ``None`` signals a script-level failure
    #: before mpirun (exit 1, no metrics, default failure line).
    model_inputs: Callable[[Mapping[str, str]], Optional[Dict[str, str]]]
    #: PerfResult -> HPCADVISORVAR dict, in the plugin's emission order.
    app_vars: Callable[[PerfResult], Dict[str, str]]


ADAPTERS: Dict[str, AppAdapter] = {
    adapter.appname: adapter
    for adapter in (
        AppAdapter(
            appname="lammps",
            required_env=("BOXFACTOR",),
            model_inputs=lambda env: {"BOXFACTOR": env["BOXFACTOR"]},
            app_vars=_lammps_app_vars,
        ),
        AppAdapter(
            appname="openfoam",
            required_env=("MESH",),
            model_inputs=_openfoam_inputs,
            app_vars=_openfoam_app_vars,
        ),
        AppAdapter(
            appname="gromacs",
            required_env=("ATOMS",),
            model_inputs=lambda env: {
                "atoms": env["ATOMS"],
                "steps": env.get("STEPS", "10000"),
            },
            app_vars=_default_app_vars,
        ),
        AppAdapter(
            appname="namd",
            required_env=("ATOMS",),
            model_inputs=lambda env: {
                "atoms": env["ATOMS"],
                "steps": env.get("STEPS", "5000"),
            },
            app_vars=_default_app_vars,
        ),
        AppAdapter(
            appname="wrf",
            required_env=("RESOLUTION",),
            model_inputs=lambda env: {
                "resolution": env["RESOLUTION"],
                "forecast_hours": env.get("FORECAST_HOURS", "6"),
            },
            app_vars=_default_app_vars,
        ),
        AppAdapter(
            appname="matrixmult",
            required_env=("MSIZE",),
            model_inputs=lambda env: {"msize": env["MSIZE"]},
            app_vars=_default_app_vars,
        ),
    )
}


def supported_apps() -> Tuple[str, ...]:
    return tuple(sorted(ADAPTERS))


def covers(scenario: Scenario) -> bool:
    """True when the batched physics can reproduce this scenario exactly."""
    if scenario.appname not in ADAPTERS:
        return False
    return not any(
        str(key).upper() in RESERVED_ENV for key in scenario.appinputs
    )


#: A script-level failure: no mpirun happened, so no metrics, zero wall.
_SCRIPT_FAIL = FastPhysics(
    succeeded=False, wall_time_s=0.0, app_vars={}, infra_metrics={},
    failure_reason=SCRIPT_FAILURE,
)


@dataclass
class ScenarioPhysics:
    """Memoizing batch evaluator over the pure physics of scenarios.

    Stateless with respect to simulated time and the shared filesystem
    (the plugins' staged-input reads are guaranteed by the setup task the
    engine still runs for real), so results may be computed in any order
    — including ahead of the sweep — and reused across spot attempts and
    retries, which are deterministic re-executions in both paths.
    """

    noise: NoiseModel = NO_NOISE
    _models: Dict[str, AppPerfModel] = field(default_factory=dict)
    _machines: Dict[str, MachineModel] = field(default_factory=dict)
    _networks: Dict[str, NetworkModel] = field(default_factory=dict)
    _shapes: Dict[Tuple[str, int, int], RunShape] = field(default_factory=dict)
    _params: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], Dict[str, float]] = \
        field(default_factory=dict)
    _results: Dict[tuple, FastPhysics] = field(default_factory=dict)

    def evaluate(self, scenario: Scenario, sku: VmSku) -> FastPhysics:
        """The measurement ``execute_run`` would produce for ``scenario``."""
        key = (scenario.appname, sku.name, scenario.nnodes, scenario.ppn,
               tuple(sorted(scenario.appinputs.items())))
        hit = self._results.get(key)
        if hit is None:
            hit = self._evaluate(scenario, sku)
            self._results[key] = hit
        return hit

    def _evaluate(self, scenario: Scenario, sku: VmSku) -> FastPhysics:
        adapter = ADAPTERS[scenario.appname]
        env = {str(k).upper(): str(v)
               for k, v in scenario.appinputs.items()}
        # getenv() without default raises AppScriptError → "run error:"
        # stdout, exit 1, no reason: line.
        if any(name not in env for name in adapter.required_env):
            return _SCRIPT_FAIL
        model_inputs = adapter.model_inputs(env)
        if model_inputs is None:
            return _SCRIPT_FAIL
        # MpiLauncher refuses ppn outside [1, cores] (AppScriptError).
        if not 1 <= scenario.ppn <= sku.cores:
            return _SCRIPT_FAIL

        model = self._models.get(scenario.appname)
        if model is None:
            model = get_model(scenario.appname, self.noise)
            self._models[scenario.appname] = model
        machine = self._machines.get(sku.name)
        if machine is None:
            machine = MachineModel(sku)
            self._machines[sku.name] = machine
            self._networks[sku.name] = network_for_sku(sku)
        net = self._networks[sku.name]
        shape_key = (sku.name, scenario.nnodes, scenario.ppn)
        shape = self._shapes.get(shape_key)
        if shape is None:
            shape = RunShape(sku=sku, nodes=scenario.nnodes, ppn=scenario.ppn)
            self._shapes[shape_key] = shape
        params_key = (scenario.appname,
                      tuple(sorted(model_inputs.items())))
        params = self._params.get(params_key)
        if params is None:
            params = model.validate_inputs(model_inputs)
            self._params[params_key] = params

        perf = model.simulate_shaped(shape, params, machine, net,
                                     model_inputs)
        if not perf.succeeded:
            # Plugin echoes "reason: {perf.failure_reason}" and exits 1;
            # ctx.last_run is set, so the failure metrics survive.
            return FastPhysics(
                succeeded=False,
                wall_time_s=0.0,
                app_vars={},
                infra_metrics=perf.metrics.to_dict(),
                failure_reason=perf.failure_reason,
            )
        return FastPhysics(
            succeeded=True,
            wall_time_s=perf.exec_time_s,
            app_vars=adapter.app_vars(perf),
            infra_metrics=perf.metrics.to_dict(),
            failure_reason=None,
        )


_SHARED_TABLES: Dict[NoiseModel, ScenarioPhysics] = {}


def shared_physics(noise: NoiseModel = NO_NOISE) -> ScenarioPhysics:
    """The process-wide physics table for one noise configuration.

    The measurement is a pure function of ``(appname, sku, nnodes, ppn,
    appinputs)`` plus the (frozen, hashable) noise configuration — and
    notably *region-independent*: regions change prices, quotas, and
    boot latencies, never the application physics (``VmSku`` specs come
    from the global catalog).  Sharing the table across sweeps is what
    makes every-SKU, every-region advice interactive — the second
    region's sweep pays only the cache-hit cost per scenario.
    """
    table = _SHARED_TABLES.get(noise)
    if table is None:
        table = ScenarioPhysics(noise=noise)
        _SHARED_TABLES[noise] = table
    return table
