"""The batched execution engine: a flat sweep loop, no per-task objects.

:func:`run_batched_sweep` advances the whole ordered scenario array in one
tight loop over the *real* execution substrate — the wrapped
:class:`~repro.backends.azurebatch.AzureBatchBackend`'s
:class:`~repro.batch.service.BatchService`, its pools, boot-jitter draws,
billing meters, and the shared clock.  Everything stateful (pool creation
and resizes, quota, setup tasks staging input data on the shared
filesystem, spot preemptions, provisioning bookkeeping) happens on those
objects exactly as the per-object sequential walk would do it; only the
per-scenario ceremony is gone.  Instead of constructing a
``BatchTask``/``TaskContext``/``AsyncOp`` per task and running the plugin
against the simulated filesystem, the kernel looks the measurement up in
a memoized :class:`~repro.simd.physics.ScenarioPhysics` table and applies
the same clock advances, lease transitions, and accounting appends inline.

The loop body is a line-for-line transliteration of
``DataCollector._collect_sequential`` + ``_spot_execute`` +
``AzureBatchBackend``'s task finalize/interrupt closures — same clock
advances in the same order, same billing expressions (operand order
included), same task-id numbering, same eviction draws keyed per
(scenario, cumulative draw number) — so batched sweeps reproduce the
sequential walk
at parallelism 1 byte for byte.  The determinism goldens and the
Hypothesis equivalence suite in ``tests/test_batched_kernel.py`` pin this
down; anything the kernel cannot reproduce exactly is rejected up front
by :func:`batch_eligibility` and falls back to the per-object path.

Known (intentional) divergences from the per-object path, none of which
reach a DataPoint, TaskRecord, report field, or accounting entry:

* no ``BatchTask`` objects are added to the service's jobs for compute
  tasks (setup tasks still run for real);
* no per-task workdirs, hostfiles, or application log files are written
  to the shared filesystem;
* ``ScenarioRunResult.stdout`` is empty (stdout is never persisted);
* on-demand runs do not flip node states to RUNNING for the task's
  duration (spot runs do — preemption needs a running node).
"""

from __future__ import annotations

import math
import time
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.backends.azurebatch import AzureBatchBackend
from repro.backends.base import (ExecutionBackend, ScenarioRunResult,
                                 resumed_wall_s)
from repro.batch.service import TaskAccounting
from repro.core.dataset import DataPoint
from repro.core.scenarios import Scenario
from repro.core.taskdb import TaskStatus
from repro.perf.noise import NO_NOISE
from repro.simd.physics import (ADAPTERS, RESERVED_ENV, FastPhysics,
                                shared_physics, supported_apps)
from repro.simd.vector import prime_grid, prime_spot_draws

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.collector import CollectionReport, DataCollector

#: Engine names accepted by the collector / API / CLI.  ``auto`` resolves
#: to the per-object path today; ``batched`` opts into this module and
#: falls back per :func:`batch_eligibility`.
ENGINE_CHOICES = ("auto", "object", "batched")


def describe_engines() -> List[dict]:
    """Feature matrix for ``repro engines`` and the service's introspection."""
    return [
        {
            "engine": "object",
            "description": ("per-object event-driven scheduler "
                            "(BatchPool/BatchService task objects)"),
            "preemption": True,
            "concurrency": True,
            "batching": False,
            "coverage": "all backends, all apps, any max_parallel_pools",
        },
        {
            "engine": "batched",
            "description": ("batched sweep kernel (memoized physics table "
                            "over the real billing substrate)"),
            "preemption": True,
            "concurrency": False,
            "batching": True,
            "coverage": ("azurebatch backend, max_parallel_pools=1, "
                         f"apps: {', '.join(supported_apps())}"),
        },
    ]


def batch_eligibility(backend: ExecutionBackend, max_parallel_pools: int,
                      scenarios: List[Scenario]) -> Optional[str]:
    """``None`` when the batched engine covers this sweep, else why not.

    The checks are exact-equivalence guards, not capability guesses: any
    configuration the fast path cannot reproduce byte-for-byte falls
    back to the per-object scheduler.
    """
    if type(backend) is not AzureBatchBackend:
        return (f"backend {backend.name!r} is not the plain Azure Batch "
                "substrate")
    if max_parallel_pools != 1:
        return ("batched engine reproduces the sequential walk; "
                f"max_parallel_pools={max_parallel_pools} needs the "
                "per-object scheduler")
    # Inlined covers(): one adapter lookup + key scan per scenario, no
    # call frames — this gate runs over every scenario of a large grid.
    uncovered = set()
    for s in scenarios:
        if s.appname not in ADAPTERS:
            uncovered.add(s.appname)
            continue
        for key in s.appinputs:
            if str(key).upper() in RESERVED_ENV:
                uncovered.add(s.appname)
                break
    if uncovered:
        return ("no batched physics adapter for: "
                + ", ".join(sorted(uncovered)))
    return None


def run_batched_sweep(collector: "DataCollector",
                      ordered: List[Scenario]) -> "CollectionReport":
    """Drive one sweep through the batched kernel (module docstring).

    ``ordered`` is the collector's sorted scenario walk; eligibility
    (:func:`batch_eligibility`) must already have passed.  Returns the
    same :class:`~repro.core.collector.CollectionReport` the sequential
    walk would have produced; the collector stamps engine/fallback and
    infrastructure totals on it afterwards.
    """
    backend: AzureBatchBackend = collector.backend
    service = backend.service
    clock = service.clock
    accounting = service.accounting
    noise = backend.noise if backend.noise is not None else NO_NOISE
    physics = shared_physics(noise)
    evaluate = physics.evaluate
    taskdb = collector.taskdb
    get_record = taskdb.get
    script = collector.script
    sampler = collector.sampler
    capacity = backend.capacity
    spot = collector.capacity == "spot"
    eviction = collector.eviction if spot else None
    recovery = collector.recovery
    interval = collector.checkpoint_interval_s
    ckpt_overhead_s = collector.checkpoint_overhead_s
    max_preemptions = collector.max_preemptions
    retry_failed = collector.retry_failed
    pending = TaskStatus.PENDING

    report = collector._new_report(1)
    provisioning_before = backend.provisioning_overhead_s
    previous_vmtype: Optional[str] = None
    # Per-SKU handles, refreshed on each VM-type switch so the hot loop
    # never re-derives pool ids (string munging) or re-looks-up pools.
    pool = None
    pool_id = ""
    hourly = 0.0
    sku = None
    cur_nodes = 0

    records = taskdb._records  # populated by _register_scenarios
    on_progress = collector.on_progress
    notify = collector._notify
    dataset_append = collector.dataset.append
    deployment = collector.deployment_name
    mark_completed = taskdb.mark_completed
    mark_failed = taskdb.mark_failed
    stop_on_failure = collector.stop_on_failure

    # Still-runnable scenarios grouped by SKU: each group is primed
    # through the vectorized grid evaluator at pool-switch time, with the
    # *pool's* VmSku (never a catalog lookup), so even a backend carrying
    # a custom SKU keeps exact parity with the scalar path.
    pending_by_sku: Dict[str, List[Scenario]] = {}
    for s in ordered:
        r = records.get(s.scenario_id)
        if r is not None and r.status is pending and not r.skipped_by_sampler:
            pending_by_sku.setdefault(s.sku_name, []).append(s)
    primed: Dict[str, FastPhysics] = {}
    primed_get = primed.get

    # Spot eviction draws: keyed on the sweep-cumulative per-scenario
    # counter shared with the scalar walks (``DataCollector._spot_draws``),
    # so a retry_failed re-run continues the draw sequence instead of
    # replaying it.  ``draw_plans`` holds the vectorized walk's pre-drawn
    # times per scenario (``prime_spot_draws``), indexed by that same
    # counter; a plan that runs short falls back to the scalar draw,
    # which returns the identical value.
    spot_draws = collector._spot_draws
    spot_draws_get = spot_draws.get
    draw_plans: Dict[str, List[float]] = {}
    draw_plans_get = draw_plans.get

    def run_once(scenario: Scenario) -> ScenarioRunResult:
        """One spot scenario execution: ``_run_blocking`` transliterated.

        (On-demand executions are inlined in the main loop below.)

        DataCollector._spot_execute transliterated, with the backend's
        submit/finalize/interrupt closures inlined."""
        nnodes = scenario.nnodes
        preemptions = 0
        checkpointed = 0.0
        wasted_node_s = 0.0
        total_cost = 0.0
        first_started: Optional[float] = None
        attempt = 0
        while True:
            if attempt > 0:
                # The reclaimed node left the pool: grow back to the
                # scenario's size and wait out the replacement boot.
                if pool.current_nodes < nnodes:
                    ready_at = pool.begin_resize(nnodes)
                    backend._provisioning_s += ready_at - clock.now
                    if ready_at > clock.now:
                        clock.advance_to(ready_at)
                    pool.finish_resize()
            resume_overhead = ckpt_overhead_s if checkpointed > 0 else 0.0
            phys = primed_get(scenario.scenario_id)
            if phys is None:
                phys = evaluate(scenario, sku)
            backend._task_counter += 1
            task_id = f"compute-{backend._task_counter:05d}"
            wall = resumed_wall_s(phys.wall_time_s, checkpointed,
                                  resume_overhead)
            started = clock.now
            if first_started is None:
                first_started = started
            evict_after = None
            if eviction is not None:
                sid = scenario.scenario_id
                draw_no = spot_draws_get(sid, 0)
                spot_draws[sid] = draw_no + 1
                plan = draw_plans_get(sid)
                if plan is not None and draw_no < len(plan):
                    evict_after = plan[draw_no]
                else:
                    evict_after = eviction.time_to_eviction(
                        scenario.sku_name, sid, draw_no, nodes=nnodes,
                    )
            # Preemption needs RUNNING nodes; lease like start_task does.
            lease = pool.acquire_nodes(nnodes)

            if evict_after is None or evict_after >= wall:
                # The attempt outruns the reaper.
                if wall > 0.0:
                    clock.advance_to(started + wall)
                pool.release_nodes(lease)
                cost = nnodes * hourly * wall / 3600.0
                accounting.append(TaskAccounting(
                    task_id=task_id, pool_id=pool_id, nodes=nnodes,
                    wall_time_s=wall, cost_usd=cost,
                ))
                if preemptions == 0:
                    # Pristine: identical to the on-demand walk.
                    return ScenarioRunResult(
                        succeeded=phys.succeeded,
                        exec_time_s=wall,
                        cost_usd=cost,
                        stdout="",
                        app_vars=phys.app_vars,
                        infra_metrics=phys.infra_metrics,
                        failure_reason=phys.failure_reason,
                        started_at=started,
                        finished_at=clock.now,
                        capacity=capacity,
                    )
                total_cost += cost
                # The restore overhead bought no new work; the app time is
                # the checkpointed progress plus this attempt's remainder.
                wasted_node_s += resume_overhead * nnodes
                return ScenarioRunResult(
                    succeeded=phys.succeeded,
                    exec_time_s=checkpointed + wall - resume_overhead,
                    cost_usd=total_cost,
                    stdout="",
                    app_vars=phys.app_vars,
                    infra_metrics=phys.infra_metrics,
                    failure_reason=phys.failure_reason,
                    started_at=first_started,
                    finished_at=clock.now,
                    capacity=capacity,
                    preemptions=preemptions,
                    wasted_node_s=wasted_node_s,
                )

            # -- the platform wins the race: interruption mid-attempt ----
            clock.advance_to(started + evict_after)
            pool.preempt_node(lease[0])
            pool.release_nodes(lease[1:])
            elapsed = clock.now - started
            cost = nnodes * hourly * elapsed / 3600.0
            accounting.append(TaskAccounting(
                task_id=task_id, pool_id=pool_id, nodes=nnodes,
                wall_time_s=elapsed, cost_usd=cost,
            ))
            preemptions += 1
            total_cost += cost
            if recovery == "checkpoint_restart":
                progress = checkpointed + max(0.0, elapsed - resume_overhead)
                survived = math.floor(progress / interval) * interval
                wasted_node_s += (
                    (elapsed - (survived - checkpointed)) * nnodes
                )
                checkpointed = survived
            else:  # restart / fail: the whole attempt is lost
                wasted_node_s += elapsed * nnodes

            give_up: Optional[str] = None
            if recovery == "fail":
                give_up = ("spot capacity reclaimed "
                           "(recovery policy: fail)")
            elif preemptions >= max_preemptions:
                give_up = (f"gave up after {preemptions} spot "
                           "preemption(s)")
            if give_up is not None:
                return ScenarioRunResult(
                    succeeded=False,
                    exec_time_s=elapsed,
                    cost_usd=total_cost,
                    stdout="",
                    failure_reason=give_up,
                    started_at=first_started,
                    finished_at=clock.now,
                    capacity=capacity,
                    preempted=True,
                    preemptions=preemptions,
                    wasted_node_s=wasted_node_s,
                )
            attempt += 1

    # Coarse wall-time attribution (CollectionReport.profile): bare
    # float accumulators, two perf_counter calls per timed section, so
    # the ~µs-per-scenario hot loop keeps its interactive latency; the
    # totals feed the collector's SweepProfiler once at the end.
    perf = time.perf_counter
    prof_setup = 0.0
    prof_provision = 0.0
    prof_scenario = 0.0
    prof_persist = 0.0
    prof_recovery = 0.0

    for scenario in ordered:
        sid = scenario.scenario_id
        record = records.get(sid)
        if record is None:  # pragma: no cover - registration guarantees it
            record = get_record(sid)
        if record.status is not pending or record.skipped_by_sampler:
            continue  # resumed sweep: already handled
        if sampler is not None and not collector._should_run(scenario, report):
            continue

        # -- Algorithm 1 lines 3-7: pool lifecycle -----------------------
        sku_name = scenario.sku_name
        if previous_vmtype != sku_name:
            t0 = perf()
            if previous_vmtype is not None:
                backend.release_capacity(
                    previous_vmtype, delete=collector.delete_pool_on_switch
                )
            previous_vmtype = sku_name
            pool = None
            if not backend.run_setup(sku_name, script):
                prof_setup += perf() - t0
                collector._fail_setup_group(sku_name, ordered, report)
                continue
            pool_id = backend._pool_id(sku_name)
            pool = service.get_pool(pool_id)
            hourly = pool.hourly_price
            sku = pool.sku
            cur_nodes = pool.current_nodes
            primed.update(prime_grid(
                physics, pending_by_sku.get(sku_name, ()), lambda _n: sku
            ))
            prof_setup += perf() - t0
            if eviction is not None and sampler is None:
                # Vectorized spot renewal walk: pre-draw the group's
                # eviction schedule in one frontier sweep (credited to
                # the recovery stage, like the draws it replaces).  With
                # a sampler in play the executed subset is unknown, so
                # the walk keeps its scalar per-attempt draws.
                t0 = perf()
                rows = []
                for gs in pending_by_sku.get(sku_name, ()):
                    ph = primed_get(gs.scenario_id)
                    if ph is not None:
                        rows.append((gs.scenario_id, gs.nnodes,
                                     ph.wall_time_s, ph.succeeded))
                draw_plans.clear()
                draw_plans.update(prime_spot_draws(
                    eviction, sku_name, rows,
                    recovery=recovery, interval_s=interval,
                    overhead_s=ckpt_overhead_s,
                    max_preemptions=max_preemptions,
                    retries=retry_failed,
                ))
                prof_recovery += perf() - t0
        if pool is None:  # pragma: no cover - guarded by the FAILED marks
            continue
        nnodes = scenario.nnodes
        if spot:
            # Evictions inside run_once shrink the pool behind the
            # tracked count; re-read it before sizing.
            cur_nodes = pool.current_nodes
        if cur_nodes < nnodes:
            t0 = perf()
            ready_at = pool.begin_resize(nnodes)
            backend._provisioning_s += ready_at - clock.now
            if ready_at > clock.now:
                clock.advance_to(ready_at)
            pool.finish_resize()
            cur_nodes = nnodes
            prof_provision += perf() - t0

        # -- Algorithm 1 lines 8-11: execute and store --------------------
        if spot:
            t0 = perf()
            result = run_once(scenario)
            attempts = 0
            while not result.succeeded and attempts < retry_failed:
                attempts += 1
                # A losing spot attempt may have ended in an eviction
                # that reclaimed the node(s); grow the pool back before
                # retrying (mirrors the sequential walk exactly).
                backend.ensure_capacity(sku_name, nnodes)
                result = run_once(scenario)
            prof_recovery += perf() - t0
            collector._record_result(scenario, result, report)
            if not result.succeeded and stop_on_failure:
                break
            continue

        # On-demand fast path: run_scenario + retry loop + _record_result
        # with the intermediate ScenarioRunResult elided.  Field for field
        # identical to the pristine branch of run_once followed by
        # _record_result — preemptions and wasted_node_s stay zero on
        # on-demand capacity, so their `+= 0` folds are omitted as exact
        # identities.  Only the final attempt's window and cost are
        # recorded, exactly as the retry loop above keeps only the last
        # ``result``.
        phys = primed_get(sid)
        if phys is None:
            phys = evaluate(scenario, sku)
        attempts_left = retry_failed
        t0 = perf()
        while True:
            backend._task_counter += 1
            wall = phys.wall_time_s
            started = clock.now
            if wall > 0.0:
                clock.advance_to(started + wall)
            cost = nnodes * hourly * wall / 3600.0
            accounting.append(TaskAccounting(
                task_id=f"compute-{backend._task_counter:05d}",
                pool_id=pool_id, nodes=nnodes,
                wall_time_s=wall, cost_usd=cost,
            ))
            if phys.succeeded or attempts_left <= 0:
                break
            attempts_left -= 1
        finished = clock.now
        prof_scenario += perf() - t0
        # CollectionReport.note_execution, inlined.
        report.executed += 1
        if (report._first_started_at is None
                or started < report._first_started_at):
            report._first_started_at = started
        if (report._last_finished_at is None
                or finished > report._last_finished_at):
            report._last_finished_at = finished
        report.simulated_wall_s = (
            report._last_finished_at - report._first_started_at
        )
        t0 = perf()
        if phys.succeeded:
            point = DataPoint(
                appname=scenario.appname,
                sku=sku_name,
                nnodes=nnodes,
                ppn=scenario.ppn,
                exec_time_s=wall,
                cost_usd=cost,
                appinputs=dict(scenario.appinputs),
                app_vars=dict(phys.app_vars),
                infra_metrics=dict(phys.infra_metrics),
                tags=dict(scenario.tags),
                deployment=deployment,
                timestamp=finished,
                predicted=False,
                capacity=capacity,
                preemptions=0,
                wasted_node_s=0.0,
                makespan_s=max(0.0, finished - started),
            )
            dataset_append(point)
            if sampler is not None:
                sampler.observe(point)
            mark_completed(
                sid,
                exec_time_s=wall,
                cost_usd=cost,
                app_vars=phys.app_vars,
                infra_metrics=phys.infra_metrics,
                started_at=started,
                finished_at=finished,
                preemptions=0,
            )
            report.completed += 1
            report.task_cost_usd += cost
        else:
            reason = phys.failure_reason or "unknown failure"
            mark_failed(
                sid, reason,
                started_at=started,
                finished_at=finished,
                preemptions=0,
            )
            report.failed += 1
            report.failures.append(f"{sid}: {reason}")
        prof_persist += perf() - t0
        if on_progress is not None:
            notify(report)
        if not phys.succeeded and stop_on_failure:
            break

    # -- Algorithm 1 lines 13-14: final pool cleanup ----------------------
    if previous_vmtype is not None:
        t0 = perf()
        backend.release_capacity(
            previous_vmtype, delete=collector.delete_pool_on_switch
        )
        prof_provision += perf() - t0
    report.makespan_s = report.simulated_wall_s + (
        backend.provisioning_overhead_s - provisioning_before
    )
    profiler = collector._profiler
    profiler.add("setup", prof_setup)
    profiler.add("provision", prof_provision)
    profiler.add("scenario", prof_scenario)
    profiler.add("persist", prof_persist)
    profiler.add("recovery", prof_recovery)
    return report
