"""Vectorized physics priming: one pass evaluates a whole scenario grid.

:func:`prime_grid` is the "vectorized" half of the batched sweep kernel.
The scalar :meth:`~repro.simd.physics.ScenarioPhysics.evaluate` walks the
full ``simulate_shaped`` assembly once per scenario — re-deriving group
constants (throughput scale, imbalance factor, collective latencies) and
re-building small dicts tens of thousands of times per sweep.  This module
groups the grid by ``(appname, sku, nnodes, ppn)``, hoists everything that
is constant within a group, and evaluates the per-scenario remainder —
cache pressure, compute time, halo/PME/reduction communication, the five
infrastructure utilisations — as NumPy column operations over the group's
parameter axis.

Exact-equivalence contract
--------------------------

Every :class:`~repro.simd.physics.FastPhysics` this module stores is
**bit-identical** to what the scalar path would have produced, including
every float and every formatted HPCADVISORVAR string.  Three rules keep it
that way:

* each NumPy expression mirrors the scalar expression tree *operand for
  operand* — IEEE-754 binary ops (``+ - * /``, comparisons, ``minimum``)
  on float64 columns are bitwise-equal to the same CPython float ops;
* ``**`` is **never** evaluated through NumPy (its SIMD ``pow`` differs
  from libm by ULPs); fractional powers run through a CPython listcomp,
  and derived *parameters* (``bf**3``, ``n**2``...) come from the models'
  own scalar ``validate_inputs``/``working_set_bytes``/``total_work``;
* group-constant subexpressions (``allreduce_time``, ``bcast_time``'s
  tree depth, ``imbalance_factor``, ``compute_scale``) are computed by
  calling the *real* model/network methods once per group.

Anything the vector path cannot reproduce exactly — an app without a
kernel below, a noise model with ``sigma > 0`` (per-scenario RNG draws),
inputs the model rejects — is simply left un-primed; the scalar path
evaluates (or raises) for those scenarios at the usual point in the walk.
``tests/test_batched_kernel.py`` pins the bit-equivalence down per app
with grid goldens and Hypothesis-generated random grids.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence

try:  # the supported toolchain bakes numpy in; degrade gracefully without
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by gating tests
    _np = None  # type: ignore[assignment]

from repro.cloud.skus import VmSku
from repro.cluster.network import NetworkModel, network_for_sku
from repro.core.scenarios import Scenario
from repro.errors import ConfigError
from repro.perf.apps import gromacs as _gromacs
from repro.perf.apps import lammps as _lammps
from repro.perf.apps import namd as _namd
from repro.perf.apps import openfoam as _openfoam
from repro.perf.cache import cache_profile_for
from repro.perf.comm import imbalance_factor, solver_reduction_time_per_iter
from repro.perf.machine import MachineModel
from repro.perf.registry import get_model
from repro.simd.physics import (ADAPTERS, FastPhysics, ScenarioPhysics,
                                _SCRIPT_FAIL)

_TWO_THIRDS = 2.0 / 3.0

#: Prep-memo sentinels: the scenario's inputs fail before the model runs
#: (script failure for every shape) / raise ConfigError in the scalar walk.
_PREP_SCRIPT_FAIL = ("script-fail",)
_PREP_CONFIG_ERROR = ("config-error",)


def vector_ready() -> bool:
    """Whether the vectorized prime path is available (NumPy importable)."""
    return _np is not None


def _surface(col: List[float]):
    """``v ** (2/3)`` per element, via CPython pow (see module docstring)."""
    return _np.array([v ** _TWO_THIRDS for v in col])


# -- per-app communication kernels ------------------------------------------------
#
# Each mirrors the corresponding model's ``comm_time`` for nodes > 1; the
# caller substitutes a zero column for single-node groups, exactly like the
# scalar early-returns.  ``rows`` is the group's list of params dicts.

def _halo(net: NetworkModel, units: List[float], bytes_per_unit: float,
          neighbors: int):
    """``halo_time_per_step`` columnwise: one NIC, 3-D surface term."""
    nbytes = 6.0 * _surface(units) * bytes_per_unit
    return (neighbors / 2.0 * net.effective_latency
            + nbytes / net.effective_bandwidth)


def _comm_lammps(net: NetworkModel, nodes: int, rows: List[dict]):
    atoms = [p["atoms"] for p in rows]
    steps = _np.array([p["steps"] for p in rows])
    per_step = _halo(net, [a / nodes for a in atoms],
                     _lammps.HALO_BYTES_PER_ATOM, 6)
    per_step = per_step + net.allreduce_time(64.0, nodes)
    return per_step * steps


def _pme(net: NetworkModel, nodes: int, grid_bytes):
    """``pme_alltoall_time_per_step`` columnwise."""
    per_node = grid_bytes / nodes
    return ((nodes - 1) * net.effective_latency
            + 2.0 * per_node / net.effective_bandwidth)


def _comm_gromacs(net: NetworkModel, nodes: int, rows: List[dict]):
    atoms = [p["atoms"] for p in rows]
    steps = _np.array([p["steps"] for p in rows])
    halo = _halo(net, [a / nodes for a in atoms], 96.0, 6)
    grid = _np.array(atoms) * _gromacs.PME_GRID_BYTES_PER_ATOM
    return steps * (halo + _pme(net, nodes, grid))


def _comm_namd(net: NetworkModel, nodes: int, rows: List[dict]):
    atoms = [p["atoms"] for p in rows]
    steps = _np.array([p["steps"] for p in rows])
    halo = _halo(net, [a / nodes for a in atoms], 120.0, 6)
    grid = _np.array(atoms) * _namd.PME_GRID_BYTES_PER_ATOM
    return steps * (halo + _pme(net, nodes, grid)) * 0.67


def _comm_wrf(net: NetworkModel, nodes: int, rows: List[dict]):
    points = [p["points"] for p in rows]
    steps = _np.array([p["steps"] for p in rows])
    per_step = _halo(net, [v / nodes for v in points], 64.0, 4)
    return per_step * steps


def _comm_openfoam(net: NetworkModel, nodes: int, rows: List[dict]):
    cells = [p["cells"] for p in rows]
    iters = _np.array([p["iters"] for p in rows])
    reduction = solver_reduction_time_per_iter(
        net, nodes, _openfoam.REDUCTIONS_PER_ITER,
        software_alpha_s=_openfoam.GAMG_SOFTWARE_ALPHA_S,
    )
    halo = _halo(net, [c / nodes for c in cells], 200.0, 6)
    return iters * (reduction + halo)


def _comm_matrixmult(net: NetworkModel, nodes: int, rows: List[dict]):
    n = _np.array([p["n"] for p in rows])
    panels = _np.maximum(1.0, n / 512)
    block = 8.0 * n * 512 / nodes
    depth = math.ceil(math.log2(nodes))
    bcast = depth * (net.effective_latency + block / net.effective_bandwidth)
    return panels * 2.0 * bcast


# -- per-app HPCADVISORVAR row formatters ----------------------------------------
#
# Each reproduces ``AppAdapter.app_vars(model.app_metrics(...))`` for one
# row: same key order, same ``str``/format renderings, same operand order
# in the derived-rate arithmetic.

def _vars_lammps(p: dict, work: float, t: float) -> Dict[str, str]:
    return {"APPEXECTIME": f"{t:.6g}",
            "LAMMPSSTEPS": str(int(p["steps"])),
            "LAMMPSATOMS": str(int(p["atoms"]))}


def _vars_openfoam(p: dict, work: float, t: float) -> Dict[str, str]:
    return {"APPEXECTIME": f"{t:.2f}",
            "OFCELLS": str(int(p["cells"])),
            "OFITERATIONS": str(int(p["iters"]))}


def _vars_gromacs(p: dict, work: float, t: float) -> Dict[str, str]:
    ns = p["steps"] * 2e-6
    ns_per_day = ns / max(t, 1e-9) * 86_400.0
    return {"APPEXECTIME": f"{t:.6g}",
            "GMXATOMS": str(int(p["atoms"])),
            "GMXSTEPS": str(int(p["steps"])),
            "GMXNSPERDAY": f"{ns_per_day:.2f}"}


def _vars_namd(p: dict, work: float, t: float) -> Dict[str, str]:
    days_per_ns = t / 86_400.0 / max(p["steps"] * 2e-6, 1e-12)
    return {"APPEXECTIME": f"{t:.6g}",
            "NAMDATOMS": str(int(p["atoms"])),
            "NAMDSTEPS": str(int(p["steps"])),
            "NAMDDAYSPERNS": f"{days_per_ns:.4f}"}


def _vars_wrf(p: dict, work: float, t: float) -> Dict[str, str]:
    return {"APPEXECTIME": f"{t:.6g}",
            "WRFRESOLUTIONKM": f"{p['resolution_km']:g}",
            "WRFGRIDPOINTS": str(int(p["points"])),
            "WRFSTEPS": str(int(p["steps"]))}


def _vars_matrixmult(p: dict, work: float, t: float) -> Dict[str, str]:
    gflops = work / max(t, 1e-12) / 1e9
    return {"APPEXECTIME": f"{t:.6g}",
            "MMSIZE": str(int(p["n"])),
            "MMGFLOPS": f"{gflops:.1f}"}


_COMM: Dict[str, Callable] = {
    "lammps": _comm_lammps,
    "openfoam": _comm_openfoam,
    "gromacs": _comm_gromacs,
    "namd": _comm_namd,
    "wrf": _comm_wrf,
    "matrixmult": _comm_matrixmult,
}

_VARS: Dict[str, Callable[[dict, float, float], Dict[str, str]]] = {
    "lammps": _vars_lammps,
    "openfoam": _vars_openfoam,
    "gromacs": _vars_gromacs,
    "namd": _vars_namd,
    "wrf": _vars_wrf,
    "matrixmult": _vars_matrixmult,
}


def _model_for(physics: ScenarioPhysics, appname: str):
    model = physics._models.get(appname)
    if model is None:
        model = get_model(appname, physics.noise)
        physics._models[appname] = model
    return model


def _machine_for(physics: ScenarioPhysics, sku: VmSku) -> MachineModel:
    machine = physics._machines.get(sku.name)
    if machine is None:
        machine = MachineModel(sku)
        physics._machines[sku.name] = machine
        physics._networks[sku.name] = network_for_sku(sku)
    return machine


def prime_grid(physics: ScenarioPhysics, scenarios: Sequence[Scenario],
               sku_for: Callable[[str], Optional[VmSku]],
               ) -> Dict[str, FastPhysics]:
    """Evaluate every coverable scenario in one vectorized pass.

    Returns ``{scenario_id: FastPhysics}`` for O(1) engine lookups and
    fills the physics table's memo, so later scalar ``evaluate`` calls
    (and warm cross-region sweeps) hit.  Scenarios that cannot be primed
    exactly are omitted — never approximated.
    """
    primed: Dict[str, FastPhysics] = {}
    if _np is None or physics.noise.sigma > 0.0 or not scenarios:
        return primed
    results = physics._results
    params_memo = physics._params
    groups: Dict[tuple, tuple] = {}
    # Env handling and parameter validation depend only on (app, inputs) —
    # one prep per distinct appinputs, shared across the SKU × nnodes grid.
    prep: Dict[tuple, tuple] = {}
    prep_get = prep.get
    for s in scenarios:
        appname = s.appname
        adapter = ADAPTERS.get(appname)
        if adapter is None or appname not in _COMM:
            continue
        sku = sku_for(s.sku_name)
        if sku is None:
            continue
        ikey = tuple(sorted(s.appinputs.items()))
        rkey = (appname, sku.name, s.nnodes, s.ppn, ikey)
        hit = results.get(rkey)
        if hit is not None:
            primed[s.scenario_id] = hit
            continue
        got = prep_get((appname, ikey))
        if got is None:
            # The scalar _evaluate's pre-model short circuits, in order.
            env = {str(k).upper(): str(v) for k, v in s.appinputs.items()}
            if any(name not in env for name in adapter.required_env):
                got = _PREP_SCRIPT_FAIL
            else:
                model_inputs = adapter.model_inputs(env)
                if model_inputs is None:
                    got = _PREP_SCRIPT_FAIL
                else:
                    pkey = (appname, tuple(sorted(model_inputs.items())))
                    params = params_memo.get(pkey)
                    if params is None:
                        try:
                            params = _model_for(physics, appname) \
                                .validate_inputs(model_inputs)
                        except ConfigError:
                            # The scalar walk raises this at the scenario's
                            # position; leaving such scenarios un-primed
                            # preserves that behaviour exactly.
                            got = _PREP_CONFIG_ERROR
                        else:
                            params_memo[pkey] = params
                    if got is None:
                        got = (pkey, params)
            prep[(appname, ikey)] = got
        if got is _PREP_CONFIG_ERROR:
            continue
        if got is _PREP_SCRIPT_FAIL or not 1 <= s.ppn <= sku.cores:
            results[rkey] = primed[s.scenario_id] = _SCRIPT_FAIL
            continue
        pkey, params = got
        key = (appname, sku.name, s.nnodes, s.ppn)
        bucket = groups.get(key)
        if bucket is None:
            bucket = groups[key] = (sku, [])
        bucket[1].append((rkey, s.scenario_id, pkey, params))
    ws_work: Dict[tuple, tuple] = {}
    for (appname, _sku_name, nodes, ppn), (sku, rows) in groups.items():
        _prime_group(physics, appname, sku, nodes, ppn, rows, ws_work,
                     primed)
    return primed


def _prime_group(physics: ScenarioPhysics, appname: str, sku: VmSku,
                 nodes: int, ppn: int, rows: list, ws_work: Dict[tuple, tuple],
                 primed: Dict[str, FastPhysics]) -> None:
    """`simulate_shaped` columnwise for one (app, sku, nodes, ppn) group."""
    model = _model_for(physics, appname)
    machine = _machine_for(physics, sku)
    net = physics._networks[sku.name]
    ws_col: List[float] = []
    work_col: List[float] = []
    for _rkey, _sid, pkey, params in rows:
        cached = ws_work.get(pkey)
        if cached is None:
            cached = ws_work[pkey] = (model.working_set_bytes(params),
                                      model.total_work(params))
        ws_col.append(cached[0])
        work_col.append(cached[1])

    # Group constants, via the real model objects (scalar parity is free).
    params0 = rows[0][3]
    throughput = (model.node_throughput(machine, params0)
                  * machine.compute_scale(ppn, model.cpu_fraction))
    imb = imbalance_factor(nodes * ppn, model.imbalance_coeff)
    cpu_fraction = model.cpu_fraction
    serial = model.serial_overhead_s
    ram = machine.ram_bytes
    mm_sat = min(1.0, ppn / max(1.0, 0.5 * machine.cores))

    ws_node = _np.array(ws_col) / nodes
    fits = ws_node * 1.6 <= ram  # MachineModel.fits_in_memory, default safety

    profile = cache_profile_for(sku)
    ws_ref = profile.ws_ref_l3_multiple * sku.l3_bytes
    pressure = ws_node / ws_ref
    if profile.form == "power":
        if profile.gamma == 1.0:
            pg = pressure  # x ** 1.0 is exactly x on both paths
        else:
            pg = _np.array([v ** profile.gamma for v in pressure.tolist()])
        slow = 1.0 + profile.amp * pg
    else:
        slow = 1.0 + profile.amp * pressure / (pressure + profile.knee)

    t_comp = _np.array(work_col) * slow * imb / (nodes * throughput)
    if nodes > 1:
        t_comm = _COMM[appname](net, nodes, [r[3] for r in rows])
    else:
        t_comm = _np.zeros(len(rows))
    t_total = serial + t_comp + t_comm
    # All bundled models carry a positive serial overhead, so t_total > 0
    # and the metric ratios below match the scalar guards; if a model ever
    # breaks that assumption, leave the group to the scalar path.
    if not (t_total > 0.0).all():  # pragma: no cover - defensive
        return

    comm_fraction = t_comm / t_total
    busy = t_comp / t_total
    cpu_util = _np.minimum(1.0, cpu_fraction * busy / slow)
    mem_bw_util = _np.minimum(1.0, (1.0 - cpu_fraction) * busy * mm_sat)
    if nodes > 1:
        net_util = _np.minimum(1.0, 0.6 * comm_fraction)
    else:
        net_util = _np.zeros(len(rows))
    mem_used = _np.minimum(1.0, ws_node / ram)

    results = physics._results
    app_vars = _VARS[appname]
    sku_name = sku.name
    # tolist() materializes python floats in one C pass — bit-identical to
    # per-element float(), without 10 np.float64 boxings per row.
    fits_l = fits.tolist()
    total_l = t_total.tolist()
    cpu_l = cpu_util.tolist()
    bw_l = mem_bw_util.tolist()
    net_l = net_util.tolist()
    cf_l = comm_fraction.tolist()
    mu_l = mem_used.tolist()
    ws_l = ws_node.tolist()
    for i, (rkey, sid, _pkey, params) in enumerate(rows):
        if fits_l[i]:
            t = total_l[i]
            fp = FastPhysics(
                succeeded=True,
                wall_time_s=t,
                app_vars=app_vars(params, work_col[i], t),
                infra_metrics={
                    "cpu_util": cpu_l[i],
                    "mem_bw_util": bw_l[i],
                    "net_util": net_l[i],
                    "comm_fraction": cf_l[i],
                    "mem_used_fraction": mu_l[i],
                },
                failure_reason=None,
            )
        else:
            fp = FastPhysics(
                succeeded=False,
                wall_time_s=0.0,
                app_vars={},
                infra_metrics={
                    "cpu_util": 0.0, "mem_bw_util": 0.0, "net_util": 0.0,
                    "comm_fraction": 0.0, "mem_used_fraction": 1.0,
                },
                failure_reason=(
                    f"out of memory: working set {ws_l[i] / 1e9:.1f}"
                    f" GB/node exceeds {sku_name} capacity"
                ),
            )
        results[rkey] = fp
        primed[sid] = fp


# -- vectorized spot renewal walk --------------------------------------------------

def prime_spot_draws(eviction, sku_name: str, rows: Sequence[tuple], *,
                     recovery: str, interval_s: float, overhead_s: float,
                     max_preemptions: int,
                     retries: int) -> Dict[str, List[float]]:
    """Pre-draw one SKU group's eviction times via the renewal recurrence.

    ``rows`` is ``[(scenario_id, nnodes, wall_time_s, succeeded), ...]``
    for the group's primed scenarios.  The spot walk is a renewal
    process per scenario — attempt, maybe eviction, checkpoint salvage,
    next attempt — whose *draw schedule* (how many eviction draws each
    scenario consumes, at which cumulative draw numbers) depends only on
    the physics wall time, the recovery policy geometry, and the draws
    themselves.  This function replays that recurrence as NumPy column
    operations, iterating only over the still-alive frontier per attempt
    round, and returns ``{scenario_id: [draw0, draw1, ...]}`` where the
    k-th element is bit-for-bit the scalar walk's
    ``time_to_eviction(sku, sid, k, nodes=nnodes)``
    (:meth:`~repro.cloud.eviction.EvictionModel.times_to_eviction`
    guarantees the equality per draw).

    The engine's apply loop still performs every substrate interaction
    (clock advances, node leases, billing windows) scalar and in order —
    byte-identity entangles the checkpoint arithmetic with absolute
    simulated timestamps the recurrence cannot know — so the recurrence
    predicts the *schedule*, not the outcome.  A predicted list that
    turns out too short (a survival/eviction race within one ULP of the
    scalar timeline) simply makes the walk fall back to scalar draws
    keyed on the same cumulative counter, which yields the identical
    value; prediction accuracy is a throughput concern, never a
    correctness one.  Returns ``{}`` when the rate is zero or NumPy is
    unavailable.
    """
    if _np is None or not rows or eviction is None:
        return {}
    sids = [r[0] for r in rows]
    nnodes = [int(r[1]) for r in rows]
    full = _np.array([r[2] for r in rows], dtype=_np.float64)
    succeeded = _np.array([bool(r[3]) for r in rows])
    n = len(rows)
    draws: List[List[float]] = [[] for _ in range(n)]
    checkpointed = _np.zeros(n)
    preempts = _np.zeros(n, dtype=_np.int64)
    runs_left = _np.full(n, int(retries), dtype=_np.int64)
    alive = _np.ones(n, dtype=bool)
    ckpt = recovery == "checkpoint_restart"
    give_up_always = recovery == "fail"
    # Every round either finishes a run (bounded by retries) or absorbs a
    # preemption (bounded by max_preemptions per run); anything beyond
    # this cap means the prediction lost the race somewhere — leave the
    # rest to the walk's scalar fallback.
    round_cap = (int(max_preemptions) + 2) * (int(retries) + 1) + 2
    for _ in range(round_cap):
        idx = _np.flatnonzero(alive)
        if idx.size == 0:
            break
        c = checkpointed[idx]
        overhead = _np.where(c > 0.0, overhead_s, 0.0)
        # resumed_wall_s, columnwise: a fresh run (c == 0, overhead 0)
        # takes the full wall; a resume replays max(0, full - c) plus
        # the restore overhead.
        wall = _np.where(c > 0.0,
                         _np.maximum(0.0, full[idx] - c) + overhead,
                         full[idx])
        drawn = eviction.times_to_eviction(
            sku_name,
            [sids[i] for i in idx],
            [len(draws[i]) for i in idx],
            [nnodes[i] for i in idx],
        )
        if drawn is None:  # rate is zero: the walk never draws
            return {}
        for j, i in enumerate(idx):
            draws[i].append(float(drawn[j]))
        evicted = drawn < wall
        # Survivors complete this run; failed physics retries afresh.
        done = idx[~evicted]
        retry = done[~succeeded[done] & (runs_left[done] > 0)]
        alive[done] = False
        alive[retry] = True
        runs_left[retry] -= 1
        checkpointed[retry] = 0.0
        preempts[retry] = 0
        # Evicted attempts salvage checkpointed progress and either
        # continue the run, or give up and burn a retry_failed re-run.
        hit = idx[evicted]
        if hit.size:
            preempts[hit] += 1
            if ckpt:
                elapsed = drawn[evicted]
                progress = checkpointed[hit] + _np.maximum(
                    0.0, elapsed - overhead[evicted]
                )
                checkpointed[hit] = _np.floor(
                    progress / interval_s
                ) * interval_s
            if give_up_always:
                gave_up = hit
            else:
                gave_up = hit[preempts[hit] >= max_preemptions]
            if gave_up.size:
                rerun = gave_up[runs_left[gave_up] > 0]
                alive[gave_up] = False
                alive[rerun] = True
                runs_left[rerun] -= 1
                checkpointed[rerun] = 0.0
                preempts[rerun] = 0
    return {sid: seq for sid, seq in zip(sids, draws)}
