"""Batched sweep kernel: scenario physics evaluated as a table, not tasks.

See :mod:`repro.simd.physics` for the pure measurement function and
:mod:`repro.simd.engine` for the flat sweep loop that drives the real
billing substrate around it.
"""

from repro.simd.engine import (ENGINE_CHOICES, batch_eligibility,
                               describe_engines, run_batched_sweep)
from repro.simd.physics import (ADAPTERS, FastPhysics, ScenarioPhysics,
                                covers, shared_physics, supported_apps)
from repro.simd.vector import prime_grid, vector_ready

__all__ = [
    "ADAPTERS",
    "ENGINE_CHOICES",
    "FastPhysics",
    "ScenarioPhysics",
    "batch_eligibility",
    "covers",
    "describe_engines",
    "prime_grid",
    "run_batched_sweep",
    "shared_physics",
    "supported_apps",
    "vector_ready",
]
