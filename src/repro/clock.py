"""Simulated wall clock.

Every stateful substrate (cloud provider, Batch service, Slurm scheduler)
shares one :class:`SimClock`.  Time only moves when something explicitly
advances it — node boots, task executions, resize waits — so a full
parameter sweep that would take hours of real cluster time completes in
milliseconds while still producing faithful timestamps and billing windows.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Tuple


@dataclass
class SimClock:
    """A monotonically non-decreasing simulated clock.

    Parameters
    ----------
    now:
        Initial simulated time in seconds since the epoch of the simulation
        (zero by default; absolute origin is irrelevant, only deltas matter).
    """

    now: float = 0.0
    _observers: List[Callable[[float, float], None]] = field(
        default_factory=list, repr=False
    )

    def advance(self, seconds: float) -> float:
        """Move the clock forward by ``seconds`` (must be non-negative)."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative time: {seconds}")
        old = self.now
        self.now += seconds
        for observer in self._observers:
            observer(old, self.now)
        return self.now

    def advance_to(self, timestamp: float) -> float:
        """Move the clock forward to an absolute simulated timestamp.

        Sets ``now`` to ``timestamp`` exactly (no ``now + delta`` rounding),
        so an event-driven caller that schedules at ``now + s`` observes the
        same timestamps as a blocking caller that runs ``advance(s)``.
        """
        if timestamp < self.now:
            raise ValueError(
                f"cannot move clock backwards: now={self.now}, target={timestamp}"
            )
        old = self.now
        self.now = timestamp
        for observer in self._observers:
            observer(old, self.now)
        return self.now

    def subscribe(self, observer: Callable[[float, float], None]) -> None:
        """Register ``observer(old_now, new_now)`` called on every advance.

        Used by billing meters to accrue node-seconds over time windows.
        """
        self._observers.append(observer)

    def stopwatch(self) -> "Stopwatch":
        return Stopwatch(self)


class Stopwatch:
    """Measures simulated elapsed time between two points."""

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._start = clock.now

    @property
    def elapsed(self) -> float:
        return self._clock.now - self._start

    def restart(self) -> None:
        self._start = self._clock.now


class EventQueue:
    """A discrete-event engine on top of one :class:`SimClock`.

    Callbacks are scheduled at absolute simulated timestamps and executed in
    ``(time, insertion order)`` order, advancing the shared clock to each
    event's timestamp before firing it.  This lets independent timelines —
    e.g. several Batch pools provisioning and running tasks at once —
    interleave on one clock instead of serializing their waits.

    Determinism: ties on the timestamp are broken by insertion order (FIFO),
    so a run is fully reproducible for a given schedule of operations.
    """

    def __init__(self, clock: SimClock) -> None:
        self.clock = clock
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def schedule_at(self, timestamp: float,
                    callback: Callable[[], None]) -> None:
        """Run ``callback`` when the clock reaches ``timestamp``.

        Timestamps in the past are clamped to ``now`` (the event fires on
        the next run, after events already queued for ``now``).
        """
        self._seq += 1
        heapq.heappush(
            self._heap, (max(timestamp, self.clock.now), self._seq, callback)
        )

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError(f"cannot schedule in negative time: {delay}")
        self.schedule_at(self.clock.now + delay, callback)

    def spawn(self, process: Iterator[float],
              on_done: Optional[Callable[[], None]] = None) -> None:
        """Drive a generator-style process on this engine.

        ``process`` yields absolute simulated timestamps; the engine resumes
        it each time the clock reaches the yielded time.  The first segment
        (up to the first ``yield``) runs immediately.  ``on_done`` fires when
        the generator returns.
        """
        self._step(process, on_done)

    def _step(self, process: Iterator[float],
              on_done: Optional[Callable[[], None]]) -> None:
        try:
            wake_at = next(process)
        except StopIteration:
            if on_done is not None:
                on_done()
            return
        self.schedule_at(wake_at, lambda: self._step(process, on_done))

    def run_next(self) -> bool:
        """Advance to and fire the next event; False when none are queued."""
        if not self._heap:
            return False
        timestamp, _, callback = heapq.heappop(self._heap)
        if timestamp > self.clock.now:
            self.clock.advance_to(timestamp)
        callback()
        return True

    def run_until(self, timestamp: float) -> float:
        """Process every event due up to ``timestamp``, then land there."""
        while self._heap and self._heap[0][0] <= timestamp:
            self.run_next()
        if timestamp > self.clock.now:
            self.clock.advance_to(timestamp)
        return self.clock.now

    def run_until_idle(self) -> float:
        """Process events until the queue drains; returns the final time."""
        while self.run_next():
            pass
        return self.clock.now


@dataclass
class BillingMeter:
    """Accrues cost over simulated time for a varying number of nodes.

    The meter integrates ``active_nodes * hourly_price`` over the clock.  It
    is driven by :meth:`SimClock.subscribe`, so any clock advance while nodes
    are allocated accrues cost — including node boot time and idle time,
    which is exactly how a real cloud bills.
    """

    clock: SimClock
    hourly_price: float
    active_nodes: int = 0
    accrued_usd: float = 0.0
    accrued_node_seconds: float = 0.0
    _windows: List[Tuple[float, float, int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.clock.subscribe(self._on_advance)

    def _on_advance(self, old: float, new: float) -> None:
        if self.active_nodes > 0 and new > old:
            dt = new - old
            self.accrued_node_seconds += self.active_nodes * dt
            self.accrued_usd += self.active_nodes * dt / 3600.0 * self.hourly_price
            self._windows.append((old, new, self.active_nodes))

    def set_nodes(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"negative node count: {n}")
        self.active_nodes = n

    @property
    def windows(self) -> List[Tuple[float, float, int]]:
        """Billing windows as ``(start, end, nodes)`` tuples."""
        return list(self._windows)
