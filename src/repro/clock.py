"""Simulated wall clock.

Every stateful substrate (cloud provider, Batch service, Slurm scheduler)
shares one :class:`SimClock`.  Time only moves when something explicitly
advances it — node boots, task executions, resize waits — so a full
parameter sweep that would take hours of real cluster time completes in
milliseconds while still producing faithful timestamps and billing windows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Tuple


@dataclass
class SimClock:
    """A monotonically non-decreasing simulated clock.

    Parameters
    ----------
    now:
        Initial simulated time in seconds since the epoch of the simulation
        (zero by default; absolute origin is irrelevant, only deltas matter).
    """

    now: float = 0.0
    _observers: List[Callable[[float, float], None]] = field(
        default_factory=list, repr=False
    )

    def advance(self, seconds: float) -> float:
        """Move the clock forward by ``seconds`` (must be non-negative)."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative time: {seconds}")
        old = self.now
        self.now += seconds
        for observer in self._observers:
            observer(old, self.now)
        return self.now

    def advance_to(self, timestamp: float) -> float:
        """Move the clock forward to an absolute simulated timestamp."""
        if timestamp < self.now:
            raise ValueError(
                f"cannot move clock backwards: now={self.now}, target={timestamp}"
            )
        return self.advance(timestamp - self.now)

    def subscribe(self, observer: Callable[[float, float], None]) -> None:
        """Register ``observer(old_now, new_now)`` called on every advance.

        Used by billing meters to accrue node-seconds over time windows.
        """
        self._observers.append(observer)

    def stopwatch(self) -> "Stopwatch":
        return Stopwatch(self)


class Stopwatch:
    """Measures simulated elapsed time between two points."""

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._start = clock.now

    @property
    def elapsed(self) -> float:
        return self._clock.now - self._start

    def restart(self) -> None:
        self._start = self._clock.now


@dataclass
class BillingMeter:
    """Accrues cost over simulated time for a varying number of nodes.

    The meter integrates ``active_nodes * hourly_price`` over the clock.  It
    is driven by :meth:`SimClock.subscribe`, so any clock advance while nodes
    are allocated accrues cost — including node boot time and idle time,
    which is exactly how a real cloud bills.
    """

    clock: SimClock
    hourly_price: float
    active_nodes: int = 0
    accrued_usd: float = 0.0
    accrued_node_seconds: float = 0.0
    _windows: List[Tuple[float, float, int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.clock.subscribe(self._on_advance)

    def _on_advance(self, old: float, new: float) -> None:
        if self.active_nodes > 0 and new > old:
            dt = new - old
            self.accrued_node_seconds += self.active_nodes * dt
            self.accrued_usd += self.active_nodes * dt / 3600.0 * self.hourly_price
            self._windows.append((old, new, self.active_nodes))

    def set_nodes(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"negative node count: {n}")
        self.active_nodes = n

    @property
    def windows(self) -> List[Tuple[float, float, int]]:
        """Billing windows as ``(start, end, nodes)`` tuples."""
        return list(self._windows)
