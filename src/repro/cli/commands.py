"""Implementations of the CLI commands.

Every command is a thin presenter over :class:`repro.api.AdvisorSession`:
the session owns deployment, state, backend, dataset, and task-DB
lifecycle; this module only parses arguments into typed requests and
prints the typed results (as text, or as JSON with ``--json``).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.api import (
    AdviseRequest,
    AdvisorSession,
    CollectRequest,
    PlotRequest,
    PredictRequest,
)
from repro.core.statefiles import resolve_state_dir
from repro.errors import ReproError
from repro.units import fmt_duration, fmt_usd


def _session(state_dir: Optional[str]) -> AdvisorSession:
    """The CLI always persists state (default dir when none is given)."""
    return AdvisorSession(state_dir=resolve_state_dir(state_dir))


# -- deploy ------------------------------------------------------------------------


def deploy_create(state_dir: Optional[str], config_path: str) -> int:
    session = _session(state_dir)
    info = session.deploy(config_path)
    print(f"created deployment {info.name} in {info.region}")
    print(f"  resource group:  {info.name}")
    print(f"  vnet:            {info.vnet}")
    print(f"  storage account: {info.storage_account}")
    print(f"  batch account:   {info.batch_account}")
    if info.jumpbox:
        print(f"  jumpbox:         {info.jumpbox}")
    print(f"  scenarios:       {info.scenario_count}")
    for path in info.archived_data:
        print(f"  note: archived data of a previous deployment "
              f"named {info.name}: {path}")
    return 0


def deploy_list(state_dir: Optional[str], limit: Optional[int] = None,
                offset: int = 0, as_json: bool = False) -> int:
    import json

    session = _session(state_dir)
    total = session.count_deployments()
    infos = session.list_deployments(limit=limit, offset=offset)
    if as_json:
        print(json.dumps(
            {"deployments": [info.to_dict() for info in infos],
             "total": total, "limit": limit, "offset": offset}, indent=1
        ))
        return 0
    if not infos:
        print("(no deployments)")
        return 0
    print(f"{'NAME':<28} {'REGION':<16} {'APP':<12} SCENARIOS")
    for info in infos:
        scenarios = str(info.scenario_count) if info.scenario_count else "-"
        print(f"{info.name:<28} {info.region:<16} "
              f"{info.appname or '-':<12} {scenarios}")
    if len(infos) < total:
        print(f"({len(infos)} of {total} deployment(s); "
              "use --limit/--offset to page)")
    return 0


def deploy_shutdown(state_dir: Optional[str], name: str,
                    purge_data: bool = False) -> int:
    _session(state_dir).shutdown(name, purge_data=purge_data)
    # Simulated resources live in-process; removing the record is the
    # persistent part.  Report the same wording as the real tool.
    print(f"deployment {name} shut down; all resources deleted")
    if purge_data:
        print(f"collected data of {name} purged")
    return 0


# -- collect -------------------------------------------------------------------------


def collect(
    state_dir: Optional[str],
    name: str,
    backend: str = "azurebatch",
    smart_sampling: bool = False,
    delete_pools: bool = False,
    noise: Optional[float] = None,
    seed: Optional[int] = None,
    budget: Optional[float] = None,
    retry_failed: int = 0,
    parallel_pools: int = 1,
    capacity: str = "ondemand",
    recovery: str = "restart",
    eviction_rate: Optional[float] = None,
    eviction_seed: int = 0,
    checkpoint_interval: float = 600.0,
    checkpoint_overhead: float = 60.0,
    engine: str = "auto",
    show_report: bool = False,
    as_json: bool = False,
) -> int:
    if as_json and show_report:
        raise ReproError("--json cannot be combined with --report")
    session = _session(state_dir)
    result = session.collect(CollectRequest(
        deployment=name,
        backend=backend,
        smart_sampling=smart_sampling,
        delete_pools=delete_pools,
        noise=noise,
        seed=seed,
        budget_usd=budget,
        retry_failed=retry_failed,
        max_parallel_pools=parallel_pools,
        capacity=capacity,
        recovery=recovery,
        eviction_rate=eviction_rate,
        eviction_seed=eviction_seed,
        checkpoint_interval_s=checkpoint_interval,
        checkpoint_overhead_s=checkpoint_overhead,
        engine=engine,
    ))
    if as_json:
        print(result.to_json(indent=1))
        return 0 if result.ok else 1
    print(f"collection finished on {result.backend}:")
    print(f"  executed:  {result.executed} "
          f"(completed {result.completed}, failed {result.failed})")
    if result.skipped or result.predicted:
        print(f"  skipped:   {result.skipped} (smart sampling)")
        print(f"  predicted: {result.predicted} (smart sampling)")
    print(f"  task cost:           ${fmt_usd(result.task_cost_usd)}")
    print(f"  infrastructure cost: "
          f"${fmt_usd(result.infrastructure_cost_usd)}")
    print(f"  provisioning time:   "
          f"{fmt_duration(result.provisioning_overhead_s)}")
    print(f"  sweep makespan:      {fmt_duration(result.makespan_s)} "
          f"({result.max_parallel_pools} parallel pool(s))")
    if result.engine != "object" or result.engine_fallback:
        line = f"  engine:              {result.engine}"
        if result.engine_fallback:
            line += f" (fell back: {result.engine_fallback})"
        print(line)
    if result.capacity == "spot":
        print(f"  spot capacity:       {result.preemptions} preemption(s), "
              f"{fmt_duration(result.wasted_node_s)} node-time wasted "
              f"(recovery: {result.recovery})")
    print(f"  dataset:             {result.dataset_path} "
          f"({result.dataset_points} points)")
    for failure in result.failures:
        print(f"  FAILED: {failure}")
    if show_report:
        from repro.core.report import render_report

        print()
        print(render_report(result, session.dataset(name),
                            taskdb=session.taskdb(name),
                            title=f"Sweep report for {name}"), end="")
    return 0 if result.ok else 1


# -- plot ---------------------------------------------------------------------------


def plot(
    state_dir: Optional[str],
    name: str,
    output: Optional[str] = None,
    filters: Optional[Dict[str, str]] = None,
    sku: Optional[str] = None,
    subtitle: Optional[str] = None,
    as_json: bool = False,
) -> int:
    session = _session(state_dir)
    result = session.plot(PlotRequest(
        deployment=name,
        output_dir=output,
        filters=filters or {},
        sku=sku,
        subtitle=subtitle,
    ))
    if as_json:
        print(result.to_json(indent=1))
        return 0
    for path in result.paths:
        print(f"wrote {path}")
    return 0


# -- advice --------------------------------------------------------------------------


def advice(
    state_dir: Optional[str],
    name: str,
    sort_by: str = "time",
    filters: Optional[Dict[str, str]] = None,
    max_rows: Optional[int] = None,
    recipes: bool = False,
    spot: bool = False,
    capacity: Optional[str] = None,
    recovery: str = "checkpoint_restart",
    eviction_rate: Optional[float] = None,
    checkpoint_interval: float = 600.0,
    checkpoint_overhead: float = 60.0,
    engine: str = "auto",
    as_json: bool = False,
) -> int:
    if as_json and (recipes or spot):
        raise ReproError(
            "--json cannot be combined with --recipes or --spot"
        )
    session = _session(state_dir)
    result = session.advise(AdviseRequest(
        deployment=name,
        filters=filters or {},
        sort_by=sort_by,
        max_rows=max_rows,
        capacity=capacity or "",
        recovery=recovery,
        eviction_rate=eviction_rate,
        checkpoint_interval_s=checkpoint_interval,
        checkpoint_overhead_s=checkpoint_overhead,
        engine=engine,
    ))
    if as_json:
        print(result.to_json(indent=1))
        return 0
    print(result.render_table(), end="")
    if spot:
        from repro.cloud.eviction import EvictionModel
        from repro.core.cost import spot_savings_summary
        from repro.core.query import Query

        # Same region and price catalog as the advice table above, so the
        # summary and a `--capacity spot` table never disagree about the
        # same configuration.  The filter is pushed down to the store.
        region = str(session.record(name).get("region") or "") or None
        eviction = (EvictionModel.flat(eviction_rate, region=region)
                    if eviction_rate is not None else None)
        print("\n--- What-if: spot capacity (risk-adjusted) ---")
        print(spot_savings_summary(
            session.query_dataset(name, Query(appinputs=filters or {})),
            session.deployment(name).provider.prices,
            region=region,
            eviction=eviction,
            recovery=recovery,
            checkpoint_interval_s=checkpoint_interval,
            checkpoint_overhead_s=checkpoint_overhead,
        ), end="")
    if recipes and result.rows:
        recipe = session.recipe_for(result.rows[0], deployment=name,
                                    appname=result.appname)
        print("\n--- Slurm recipe for the top advice row ---")
        print(recipe.slurm_script)
        print("--- Cluster recipe ---")
        print(recipe.cluster_recipe)
    return 0


# -- predict (extension) ----------------------------------------------------------


def predict(
    state_dir: Optional[str],
    name: str,
    inputs: Dict[str, str],
    nnodes: Optional[list] = None,
    backend: str = "ridge",
    as_json: bool = False,
) -> int:
    """Predicted advice for new inputs, trained on the deployment's data."""
    session = _session(state_dir)
    result = session.predict(PredictRequest(
        deployment=name,
        inputs=inputs or {},
        nnodes=tuple(nnodes or ()),
        model=backend,
    ))
    if as_json:
        print(result.to_json(indent=1))
        return 0
    inputs_label = ", ".join(
        f"{k}={v}" for k, v in sorted(result.inputs.items())
    )
    print(f"predicted advice for {result.appname} ({inputs_label}) — "
          f"0 executions, trained on {result.trained_on} points"
          + (f", CV MAPE {result.cv_mape:.1%}" if result.cv_mape else ""))
    print(result.render_table(), end="")
    return 0


# -- data (extension: paginated point listings) ----------------------------------


def data(
    state_dir: Optional[str],
    name: str,
    appname: Optional[str] = None,
    sku: Optional[str] = None,
    nnodes: Optional[list] = None,
    capacity: Optional[str] = None,
    filters: Optional[Dict[str, str]] = None,
    tags: Optional[Dict[str, str]] = None,
    measured_only: bool = False,
    limit: Optional[int] = 50,
    offset: int = 0,
    as_json: bool = False,
) -> int:
    """Paginated listing of a deployment's stored points.

    The filter runs inside the storage engine (SQL pushdown on the
    SQLite backend), so paging a huge corpus never loads it whole.
    """
    from repro.core.query import Query

    session = _session(state_dir)
    result = session.datapoints(name, Query(
        appname=appname,
        sku=sku,
        nnodes=tuple(nnodes or ()),
        capacity=capacity,
        appinputs=filters or {},
        tags=tags or {},
        include_predicted=not measured_only,
        limit=limit,
        offset=offset,
    ))
    if as_json:
        print(result.to_json(indent=1))
        return 0
    if not result.total:
        print("(no matching data points)")
        return 0
    print(f"{'APP':<10} {'SKU':<22} {'NODES':>5} {'PPN':>4} "
          f"{'TIME(S)':>9} {'COST($)':>9}  CAP")
    for p in result.points:
        marker = " *" if p.predicted else ""
        print(f"{p.appname:<10} {p.sku:<22} {p.nnodes:>5} {p.ppn:>4} "
              f"{p.exec_time_s:>9.1f} {p.cost_usd:>9.4f}  "
              f"{p.capacity}{marker}")
    shown = len(result.points)
    print(f"({shown} of {result.total} matching point(s), offset "
          f"{result.offset}, store: {result.store_backend or 'memory'})")
    return 0


# -- compare (extension) ---------------------------------------------------------


def compare(state_dir: Optional[str], name_a: str, name_b: str,
            as_json: bool = False) -> int:
    """Matched-scenario comparison of two deployments' datasets."""
    from repro.core.compare import render_comparison

    session = _session(state_dir)
    comparison = session.compare(name_a, name_b)
    regressions = comparison.regressions()
    if as_json:
        from repro.api.results import CompareResult

        print(CompareResult.from_comparison(
            comparison, deployment_a=name_a, deployment_b=name_b,
        ).to_json(indent=1))
        return 1 if regressions else 0
    print(render_comparison(comparison, label_a=name_a, label_b=name_b),
          end="")
    if regressions:
        print(f"\n{len(regressions)} scenario(s) regressed by more than 5%")
        return 1
    return 0


# -- engines ---------------------------------------------------------------------


def engines(state_dir: Optional[str] = None, as_json: bool = False) -> int:
    """List the collect and advice read engines and what each covers."""
    from repro.core.columnar import describe_advice_engines
    from repro.simd import describe_engines
    from repro.simd.vector import vector_ready

    matrix = describe_engines()
    advice_matrix = describe_advice_engines()
    snapshots = _snapshot_statuses(state_dir)
    if as_json:
        import json

        print(json.dumps(
            {"engines": matrix, "vectorized_physics": vector_ready(),
             "advice_engines": advice_matrix, "snapshots": snapshots},
            indent=1,
        ))
        return 0
    for entry in matrix:
        print(f"{entry['engine']}: {entry['description']}")
        print(f"  preemption:  {'yes' if entry['preemption'] else 'no'}")
        print(f"  concurrency: {'yes' if entry['concurrency'] else 'no'}")
        print(f"  batching:    {'yes' if entry['batching'] else 'no'}")
        print(f"  coverage:    {entry['coverage']}")
    print("vectorized physics: "
          + ("available (numpy)" if vector_ready()
             else "unavailable (numpy missing; scalar table only)"))
    print()
    print("advice read engines:")
    for entry in advice_matrix:
        print(f"{entry['engine']}: {entry['description']}")
        print(f"  data access: {entry['data_access']}")
        print(f"  risk math:   {entry['risk_math']}")
        print(f"  coverage:    {entry['coverage']}")
    if snapshots:
        print()
        print("columnar snapshots:")
        for status in snapshots:
            state = ("fresh" if status["fresh"]
                     else "stale" if status["cached"] else "cold")
            rows = (f", {status['rows']} rows"
                    if status["rows"] is not None else "")
            fetch = "sql" if status["column_fetch"] else "objects"
            print(f"  {status['deployment']}: {state} "
                  f"({status['backend']}, column fetch: {fetch}{rows})")
    return 0


def _snapshot_statuses(state_dir: Optional[str]) -> list:
    """Per-deployment snapshot eligibility/staleness for ``engines``."""
    from repro.store.snapshot import snapshot_status

    session = _session(state_dir)
    if session.store is None:
        return []
    out = []
    for info in session.list_deployments():
        # Never-collected deployments are skipped: probing them would
        # create empty stores as a side effect.
        if not session.store.data_files(info.name):
            continue
        status = snapshot_status(session.data_store(info.name))
        status["deployment"] = info.name
        out.append(status)
    return out


# -- gui ------------------------------------------------------------------------------


def gui(state_dir: Optional[str], host: str = "127.0.0.1", port: int = 8040,
        once: bool = False) -> int:
    from repro.gui.server import serve

    return serve(_session(state_dir), host=host, port=port, once=once)


# -- service (extension: advisor-as-a-service) --------------------------------


def serve(state_dir: Optional[str], host: str = "127.0.0.1",
          port: int = 8050, workers: int = 4, once: bool = False) -> int:
    from repro.service.app import serve as serve_service

    return serve_service(resolve_state_dir(state_dir), host=host, port=port,
                         workers=workers, once=once)


def fleet_serve(state_dir: Optional[str], host: str = "127.0.0.1",
                port: int = 8050, workers: int = 2,
                job_workers: int = 4) -> int:
    from repro.fleet.supervisor import serve_fleet

    return serve_fleet(resolve_state_dir(state_dir), host=host, port=port,
                       workers=workers, job_workers=job_workers)


def trace(state_dir: Optional[str], name: str, show_all: bool = False,
          as_json: bool = False) -> int:
    """Print a deployment's recorded span tree(s) with timings."""
    import json

    from repro import telemetry
    from repro.core.statefiles import StateStore

    store = StateStore(root=resolve_state_dir(state_dir))
    events = telemetry.read_events(store.traces_path(name))
    if not events:
        print(f"(no traces recorded for {name})")
        return 1
    if as_json:
        print(json.dumps({"deployment": name, "events": events}, indent=1))
        return 0
    if show_all:
        blocks = [
            telemetry.render_tree(trace_events)
            for trace_events in telemetry.group_traces(events).values()
        ]
        print("\n\n".join(blocks))
        return 0
    latest = telemetry.latest_trace(events)
    print(telemetry.render_tree(latest[1]))
    return 0


def _print_job(record, as_json: bool) -> None:
    if as_json:
        print(record.to_json(indent=1))
        return
    print(f"job {record.id}: {record.state} "
          f"({record.kind} on {record.deployment})")
    if record.progress:
        total = record.progress.get("total", 0)
        done = (record.progress.get("completed", 0)
                + record.progress.get("failed", 0)
                + record.progress.get("skipped", 0)
                + record.progress.get("predicted", 0))
        print(f"  progress: {done}/{total} scenario(s)")
    if record.error:
        print(f"  error: {record.error}")


def submit(
    url: str,
    name: str,
    backend: str = "azurebatch",
    smart_sampling: bool = False,
    sampling_policy: Optional[str] = None,
    delete_pools: bool = False,
    noise: Optional[float] = None,
    seed: Optional[int] = None,
    budget: Optional[float] = None,
    retry_failed: int = 0,
    parallel_pools: int = 1,
    capacity: str = "ondemand",
    recovery: str = "restart",
    eviction_rate: Optional[float] = None,
    eviction_seed: int = 0,
    checkpoint_interval: float = 600.0,
    checkpoint_overhead: float = 60.0,
    engine: str = "auto",
    wait: bool = False,
    timeout: float = 600.0,
    as_json: bool = False,
    state_dir: Optional[str] = None,
    trace: bool = False,
) -> int:
    """Submit an async collect job to a running service.

    With ``trace``, the client opens its own span in the deployment's
    trace ring under ``state_dir`` and propagates the trace id to the
    service, so ``repro trace <deployment>`` afterwards shows one linked
    tree from this submit down to the worker's sweep stages.
    """
    from repro.client import RemoteSession

    remote = RemoteSession(
        url, trace_dir=resolve_state_dir(state_dir) if trace else None
    )
    job = remote.collect(CollectRequest(
        deployment=name,
        backend=backend,
        smart_sampling=smart_sampling,
        sampling_policy=sampling_policy,
        delete_pools=delete_pools,
        noise=noise,
        seed=seed,
        budget_usd=budget,
        retry_failed=retry_failed,
        max_parallel_pools=parallel_pools,
        capacity=capacity,
        recovery=recovery,
        eviction_rate=eviction_rate,
        eviction_seed=eviction_seed,
        checkpoint_interval_s=checkpoint_interval,
        checkpoint_overhead_s=checkpoint_overhead,
        engine=engine,
    ))
    if wait:
        job.wait(timeout=timeout, raise_on_failure=False)
    _print_job(job.record, as_json)
    # Any terminal state other than done is a failure for scripting.
    if job.record.finished and job.record.state != "done":
        return 1
    return 0


def status(url: str, job_id: Optional[str] = None,
           limit: Optional[int] = None, offset: int = 0,
           as_json: bool = False) -> int:
    """Show one job, or a (paginated) job listing, of a running service."""
    import json

    from repro.client import RemoteSession

    remote = RemoteSession(url)
    if job_id:
        _print_job(remote.job(job_id), as_json)
        return 0
    records = remote.jobs(limit=limit, offset=offset)
    if as_json:
        print(json.dumps({"jobs": [r.to_dict() for r in records]}, indent=1))
        return 0
    if not records:
        print("(no jobs)")
        return 0
    print(f"{'JOB':<18} {'STATE':<10} {'KIND':<8} DEPLOYMENT")
    for record in records:
        print(f"{record.id:<18} {record.state:<10} {record.kind:<8} "
              f"{record.deployment}")
    return 0


def result(url: str, job_id: str, timeout: float = 600.0,
           as_json: bool = False) -> int:
    """Wait for a job and print its typed result."""
    from repro.client import JobHandle, RemoteSession

    remote = RemoteSession(url)
    job = JobHandle(remote, remote.job(job_id))
    record = job.wait(timeout=timeout, raise_on_failure=False)
    if record.state != "done":
        _print_job(record, as_json)
        return 1
    payload = job.result()
    if as_json:
        print(payload.to_json(indent=1))
        return 0
    if record.kind == "collect":
        print(f"collection finished on {payload.backend}:")
        print(f"  executed:  {payload.executed} "
              f"(completed {payload.completed}, failed {payload.failed})")
        print(f"  task cost:           ${fmt_usd(payload.task_cost_usd)}")
        print(f"  sweep makespan:      {fmt_duration(payload.makespan_s)}")
        print(f"  dataset:             {payload.dataset_path} "
              f"({payload.dataset_points} points)")
        return 0 if payload.ok else 1
    print(payload.render_table(), end="")
    return 0
