"""Implementations of the CLI commands."""

from __future__ import annotations

import os
from typing import Dict, Optional

from repro.appkit.plugins import get_plugin
from repro.backends.azurebatch import AzureBatchBackend
from repro.backends.slurm import SlurmBackend
from repro.core.advisor import Advisor
from repro.core.collector import DataCollector
from repro.core.config import MainConfig
from repro.core.dataset import Dataset
from repro.core.deployer import Deployer, Deployment
from repro.core.plots import generate_plots
from repro.core.recipes import cluster_recipe, slurm_script
from repro.core.scenarios import generate_scenarios
from repro.core.statefiles import StateStore, resolve_state_dir
from repro.core.taskdb import TaskDB
from repro.errors import ReproError
from repro.perf.noise import NoiseModel
from repro.sampling.planner import SmartSampler
from repro.slurmsim.cluster import SlurmCluster
from repro.units import fmt_duration, fmt_usd


def _store(state_dir: Optional[str]) -> StateStore:
    return StateStore(root=resolve_state_dir(state_dir))


# -- deploy ------------------------------------------------------------------------


def deploy_create(state_dir: Optional[str], config_path: str) -> int:
    store = _store(state_dir)
    config = MainConfig.from_file(config_path)
    deployment = Deployer().deploy(config)
    store.save_deployment(deployment)
    print(f"created deployment {deployment.name} in {deployment.region}")
    print(f"  resource group:  {deployment.name}")
    print(f"  vnet:            {deployment.vnet_name}")
    print(f"  storage account: {deployment.storage_account}")
    print(f"  batch account:   {deployment.batch.account_name}")
    if deployment.jumpbox_name:
        print(f"  jumpbox:         {deployment.jumpbox_name}")
    print(f"  scenarios:       {config.scenario_count}")
    return 0


def deploy_list(state_dir: Optional[str]) -> int:
    store = _store(state_dir)
    records = store.list_deployments()
    if not records:
        print("(no deployments)")
        return 0
    print(f"{'NAME':<28} {'REGION':<16} {'APP':<12} SCENARIOS")
    for record in records:
        config = record.get("config") or {}
        appname = config.get("appname", "-")
        scenarios = "-"
        if config:
            try:
                scenarios = str(MainConfig.from_dict(config).scenario_count)
            except ReproError:
                pass
        print(f"{record['name']:<28} {record['region']:<16} "
              f"{appname:<12} {scenarios}")
    return 0


def deploy_shutdown(state_dir: Optional[str], name: str) -> int:
    store = _store(state_dir)
    store.get_deployment_record(name)  # raises if unknown
    store.remove_deployment(name)
    # Simulated resources live in-process; removing the record is the
    # persistent part.  Report the same wording as the real tool.
    print(f"deployment {name} shut down; all resources deleted")
    return 0


# -- collect -------------------------------------------------------------------------


def _attach(store: StateStore, name: str) -> Deployment:
    return store.attach(name)


def collect(
    state_dir: Optional[str],
    name: str,
    backend: str = "azurebatch",
    smart_sampling: bool = False,
    delete_pools: bool = False,
    noise: float = 0.0,
    seed: int = 0,
    budget: Optional[float] = None,
    retry_failed: int = 0,
    show_report: bool = False,
) -> int:
    store = _store(state_dir)
    deployment = _attach(store, name)
    config = deployment.config
    assert config is not None
    scenarios = generate_scenarios(config)
    noise_model = NoiseModel(sigma=noise, seed=seed)

    if backend == "azurebatch":
        exec_backend = AzureBatchBackend(service=deployment.batch,
                                         noise=noise_model)
    else:
        cluster = SlurmCluster(
            provider=deployment.provider,
            subscription=deployment.provider.get_subscription(
                config.subscription
            ),
            region=config.region,
        )
        exec_backend = SlurmBackend(cluster=cluster, noise=noise_model)

    dataset_path = store.dataset_path(name)
    dataset = (Dataset.load(dataset_path) if os.path.exists(dataset_path)
               else Dataset(path=dataset_path))
    dataset.path = dataset_path
    taskdb_path = store.taskdb_path(name)
    taskdb = (TaskDB.load(taskdb_path) if os.path.exists(taskdb_path)
              else TaskDB(path=taskdb_path))

    sampler = None
    if smart_sampling or budget is not None:
        prices = {
            s.sku_name: deployment.provider.prices.hourly_price(
                s.sku_name, config.region
            )
            for s in scenarios
        }
        smart = SmartSampler.for_scenarios(scenarios, prices)
        if budget is not None:
            from repro.sampling.budget import BudgetedSampler

            sampler = BudgetedSampler(inner=smart, budget_usd=budget)
        else:
            sampler = smart

    collector = DataCollector(
        backend=exec_backend,
        script=get_plugin(config.appname),
        dataset=dataset,
        taskdb=taskdb,
        deployment_name=name,
        delete_pool_on_switch=delete_pools,
        sampler=sampler,
        retry_failed=retry_failed,
    )
    report = collector.collect(scenarios)
    print(f"collection finished on {exec_backend.name}:")
    print(f"  executed:  {report.executed} "
          f"(completed {report.completed}, failed {report.failed})")
    if report.skipped or report.predicted:
        print(f"  skipped:   {report.skipped} (smart sampling)")
        print(f"  predicted: {report.predicted} (smart sampling)")
    print(f"  task cost:           ${fmt_usd(report.task_cost_usd)}")
    print(f"  infrastructure cost: ${fmt_usd(report.infrastructure_cost_usd)}")
    print(f"  provisioning time:   {fmt_duration(report.provisioning_overhead_s)}")
    print(f"  dataset:             {dataset_path} ({len(dataset)} points)")
    for failure in report.failures:
        print(f"  FAILED: {failure}")
    if show_report:
        from repro.core.report import render_report

        print()
        print(render_report(report, dataset, taskdb=taskdb,
                            title=f"Sweep report for {name}"), end="")
    return 0 if report.failed == 0 else 1


# -- plot ---------------------------------------------------------------------------


def plot(
    state_dir: Optional[str],
    name: str,
    output: Optional[str] = None,
    filters: Optional[Dict[str, str]] = None,
    sku: Optional[str] = None,
    subtitle: Optional[str] = None,
) -> int:
    store = _store(state_dir)
    dataset_path = store.dataset_path(name)
    if not os.path.exists(dataset_path):
        raise ReproError(
            f"no dataset for deployment {name!r}; run collect first"
        )
    dataset = Dataset.load(dataset_path).filter(
        appinputs=filters or None, sku=sku
    )
    out_dir = output or store.plots_dir(name)
    generated = generate_plots(dataset, out_dir, subtitle=subtitle)
    for item in generated:
        print(f"wrote {item.path}")
    return 0


# -- advice --------------------------------------------------------------------------


def advice(
    state_dir: Optional[str],
    name: str,
    sort_by: str = "time",
    filters: Optional[Dict[str, str]] = None,
    max_rows: Optional[int] = None,
    recipes: bool = False,
    spot: bool = False,
) -> int:
    store = _store(state_dir)
    dataset_path = store.dataset_path(name)
    if not os.path.exists(dataset_path):
        raise ReproError(
            f"no dataset for deployment {name!r}; run collect first"
        )
    dataset = Dataset.load(dataset_path)
    advisor = Advisor(dataset)
    rows = advisor.advise(
        appinputs=filters or None, sort_by=sort_by, max_rows=max_rows
    )
    print(advisor.render_table(rows), end="")
    if spot:
        from repro.cloud.pricing import PriceCatalog
        from repro.core.cost import spot_savings_summary

        print("\n--- What-if: spot pricing ---")
        print(spot_savings_summary(
            dataset.filter(appinputs=filters or None), PriceCatalog()
        ), end="")
    if recipes and rows:
        appname = dataset.points()[0].appname if len(dataset) else "app"
        print("\n--- Slurm recipe for the top advice row ---")
        print(slurm_script(rows[0], appname))
        print("--- Cluster recipe ---")
        print(cluster_recipe(rows[0]))
    return 0


# -- predict (extension) ----------------------------------------------------------


def predict(
    state_dir: Optional[str],
    name: str,
    inputs: Dict[str, str],
    nnodes: Optional[list] = None,
    backend: str = "ridge",
) -> int:
    """Predicted advice for new inputs, trained on the deployment's data."""
    from repro.core.scenarios import Scenario, ppn_for
    from repro.predict import PerformancePredictor

    store = _store(state_dir)
    dataset_path = store.dataset_path(name)
    if not os.path.exists(dataset_path):
        raise ReproError(
            f"no dataset for deployment {name!r}; run collect first"
        )
    dataset = Dataset.load(dataset_path)
    measured = [p for p in dataset if not p.predicted]
    if not measured:
        raise ReproError("dataset has no measured points to train on")
    appname = measured[0].appname
    predictor = PerformancePredictor(backend=backend).fit(
        dataset, cv_folds=min(5, len(measured))
    )
    skus = sorted({p.sku for p in measured})
    node_counts = nnodes or sorted({p.nnodes for p in measured})
    appinputs = dict(inputs) if inputs else dict(measured[0].appinputs)
    candidates = [
        Scenario(
            scenario_id=f"q{i:04d}",
            sku_name=sku,
            nnodes=n,
            ppn=ppn_for(sku, 100),
            appname=appname,
            appinputs=appinputs,
        )
        for i, (sku, n) in enumerate(
            (sku, n) for sku in skus for n in node_counts
        )
    ]
    rows = predictor.predicted_front(candidates)
    inputs_label = ", ".join(f"{k}={v}" for k, v in sorted(appinputs.items()))
    print(f"predicted advice for {appname} ({inputs_label}) — "
          f"0 executions, trained on {len(measured)} points"
          + (f", CV MAPE {predictor.cv_mape:.1%}" if predictor.cv_mape
             else ""))
    print(Advisor(Dataset()).render_table(rows), end="")
    return 0


# -- compare (extension) ---------------------------------------------------------


def compare(state_dir: Optional[str], name_a: str, name_b: str) -> int:
    """Matched-scenario comparison of two deployments' datasets."""
    from repro.core.compare import compare_datasets, render_comparison

    store = _store(state_dir)
    datasets = {}
    for name in (name_a, name_b):
        path = store.dataset_path(name)
        if not os.path.exists(path):
            raise ReproError(
                f"no dataset for deployment {name!r}; run collect first"
            )
        datasets[name] = Dataset.load(path)
    comparison = compare_datasets(datasets[name_a], datasets[name_b])
    print(render_comparison(comparison, label_a=name_a, label_b=name_b),
          end="")
    regressions = comparison.regressions()
    if regressions:
        print(f"\n{len(regressions)} scenario(s) regressed by more than 5%")
        return 1
    return 0


# -- gui ------------------------------------------------------------------------------


def gui(state_dir: Optional[str], host: str = "127.0.0.1", port: int = 8040,
        once: bool = False) -> int:
    from repro.gui.server import serve

    store = _store(state_dir)
    return serve(store, host=host, port=port, once=once)
