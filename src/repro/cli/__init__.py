"""Command-line interface (paper Table II).

Commands: ``deploy create|list|shutdown``, ``collect``, ``plot``,
``advice``, ``gui`` — the same surface as the real tool's CLI execution
mode, driving the simulated cloud.
"""

from repro.cli.main import build_parser, main

__all__ = ["build_parser", "main"]
