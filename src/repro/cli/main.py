"""hpcadvisor-sim: CLI entry point.

Reproduces the paper's Table II::

    deploy create     Creates a cloud deployment
    deploy list       Lists all previous and current cloud deployments.
    deploy shutdown   Shuts down a given cloud deployment, deleting all its
                      resources.
    collect           Collects data, i.e. runs all scenarios on a given
                      deployment.
    plot              Generates plots using a given data filter.
    advice            Generates advice (i.e. Pareto front) using a given
                      data filter.
    gui               Starts the GUI mode.

Extensions beyond Table II: ``predict``, ``compare``, and the service
commands — ``serve`` (JSON HTTP API with async collect jobs) plus the
remote-client trio ``submit`` / ``status`` / ``result``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Sequence

from repro.errors import ReproError


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="hpcadvisor-sim",
        description=(
            "HPCAdvisor (reproduction): assist HPC users in selecting cloud "
            "resources, over a simulated Azure back-end."
        ),
    )
    parser.add_argument(
        "--state-dir",
        help="state directory (default: $HPCADVISOR_STATE_DIR or ~/.hpcadvisor-sim)",
    )
    parser.add_argument(
        "--store", choices=["jsonl", "sqlite"],
        help="persistence engine for collected data (default: "
             "$REPRO_STORE or sqlite; existing state is auto-detected)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # deploy ------------------------------------------------------------------
    deploy = sub.add_parser("deploy", help="manage cloud deployments")
    deploy_sub = deploy.add_subparsers(dest="deploy_command", required=True)

    deploy_create = deploy_sub.add_parser("create", help="create a deployment")
    deploy_create.add_argument("-c", "--config", required=True,
                               help="main YAML configuration file")

    deploy_list = deploy_sub.add_parser("list", help="list deployments")
    deploy_list.add_argument("--limit", type=int,
                             help="page size (default: all)")
    deploy_list.add_argument("--offset", type=int, default=0,
                             help="skip the first N deployments")
    deploy_list.add_argument("--json", action="store_true", dest="as_json",
                             help="emit the deployment list as JSON")

    deploy_shutdown = deploy_sub.add_parser(
        "shutdown", help="delete a deployment and all its resources"
    )
    deploy_shutdown.add_argument("-n", "--name", required=True)
    deploy_shutdown.add_argument(
        "--purge-data", action="store_true",
        help="also delete the deployment's collected data "
             "(dataset/task-DB/store files, locks, plots)",
    )

    # collect ------------------------------------------------------------------
    collect = sub.add_parser("collect", help="run all scenarios on a deployment")
    collect.add_argument("-n", "--name", required=True, help="deployment name")
    collect.add_argument(
        "--backend", default="azurebatch",
        help="execution back-end from the registry (built-in: azurebatch, "
             "slurm; default: azurebatch, as in the paper)",
    )
    collect.add_argument(
        "--smart-sampling", action="store_true",
        help="enable the Sec. III-F sampling optimizations",
    )
    collect.add_argument(
        "--delete-pools", action="store_true",
        help="delete pools on VM-type switch instead of resizing to zero",
    )
    collect.add_argument("--noise", type=float,
                         help="run-to-run noise sigma (default 0: deterministic)")
    collect.add_argument("--seed", type=int, help="noise seed")
    collect.add_argument("--budget", type=float,
                         help="hard USD budget for measured task spend")
    collect.add_argument("--retry-failed", type=int, default=0,
                         help="immediate retries for failed scenarios")
    collect.add_argument(
        "--parallel-pools", type=int, default=1, metavar="N",
        help="run up to N VM-type pools concurrently in simulated time "
             "(default 1: the paper's sequential Algorithm 1)",
    )
    _add_spot_arguments(collect, default_recovery="restart")
    collect.add_argument("--eviction-seed", type=int, default=0,
                         help="seed for the spot interruption draws "
                              "(same seed, same evictions)")
    _add_engine_argument(collect)
    collect.add_argument("--report", action="store_true",
                         help="print the full sweep report afterwards")
    collect.add_argument("--json", action="store_true", dest="as_json",
                         help="emit the collection result as JSON")

    # plot ----------------------------------------------------------------------
    plot = sub.add_parser("plot", help="generate plots using a data filter")
    plot.add_argument("-n", "--name", required=True, help="deployment name")
    plot.add_argument("-o", "--output", help="output directory for SVGs")
    plot.add_argument("--filter", action="append", default=[],
                      metavar="KEY=VALUE",
                      help="appinput filter, repeatable (e.g. --filter mesh='40 16 16')")
    plot.add_argument("--sku", help="restrict to one VM type")
    plot.add_argument("--subtitle", help="override the plot subtitle")
    plot.add_argument("--json", action="store_true", dest="as_json",
                      help="emit the plot result (paths, kinds) as JSON")

    # advice ---------------------------------------------------------------------
    advice = sub.add_parser("advice", help="generate Pareto-front advice")
    advice.add_argument("-n", "--name", required=True, help="deployment name")
    advice.add_argument("--sort", choices=["time", "cost"], default="time")
    advice.add_argument("--filter", action="append", default=[],
                        metavar="KEY=VALUE")
    advice.add_argument("--max-rows", type=int)
    advice.add_argument("--recipes", action="store_true",
                        help="emit Slurm + cluster recipes for the top row")
    advice.add_argument("--spot", action="store_true",
                        help="also show the risk-adjusted spot comparison "
                             "table")
    advice.add_argument(
        "--capacity", choices=["ondemand", "spot"],
        help="what-if tier for the advice itself: 'spot' risk-adjusts "
             "every configuration (expected cost, expected/P95 makespan) "
             "under the eviction model; 'ondemand' strips spot dynamics",
    )
    advice.add_argument("--recovery",
                        choices=["restart", "checkpoint_restart"],
                        default="checkpoint_restart",
                        help="recovery policy assumed by --capacity spot")
    advice.add_argument("--eviction-rate", type=float, metavar="PER_HOUR",
                        help="flat eviction-rate override "
                             "(interruptions per node-hour)")
    advice.add_argument("--checkpoint-interval", type=float, default=600.0,
                        metavar="S", help="checkpoint interval in work "
                                          "seconds (default 600)")
    advice.add_argument("--checkpoint-overhead", type=float, default=60.0,
                        metavar="S", help="restore overhead per resume "
                                          "(default 60)")
    advice.add_argument(
        "--engine", choices=["auto", "objects", "columnar"], default="auto",
        help="advice read engine: 'columnar' serves from the NumPy "
             "snapshot cache with vectorized risk math (byte-identical "
             "results); 'objects' forces the legacy per-point pipeline; "
             "see `repro engines`",
    )
    advice.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the advice result as JSON")

    # predict (extension: the paper's zero-execution advice vision) ----------
    predict = sub.add_parser(
        "predict",
        help="predict advice for new inputs from collected data (extension)",
    )
    predict.add_argument("-n", "--name", required=True,
                         help="deployment whose dataset trains the model")
    predict.add_argument("--input", action="append", default=[],
                         metavar="KEY=VALUE", required=False,
                         help="application input(s) to predict for")
    predict.add_argument("--nnodes", type=int, nargs="+",
                         help="candidate node counts "
                              "(default: those in the dataset)")
    predict.add_argument("--backend", choices=["ridge", "knn"],
                         default="ridge")
    predict.add_argument("--json", action="store_true", dest="as_json",
                         help="emit the prediction result as JSON")

    # data (extension: paginated, store-pushed point listings) -----------------
    data = sub.add_parser(
        "data",
        help="list a deployment's stored data points with filters and "
             "pagination (extension)",
    )
    data.add_argument("-n", "--name", required=True, help="deployment name")
    data.add_argument("--appname", help="restrict to one application")
    data.add_argument("--sku", help="restrict to one VM type")
    data.add_argument("--nnodes", type=int, nargs="+",
                      help="restrict to these node counts")
    data.add_argument("--capacity", choices=["ondemand", "spot"],
                      help="restrict to one capacity tier")
    data.add_argument("--filter", action="append", default=[],
                      metavar="KEY=VALUE",
                      help="appinput filter, repeatable")
    data.add_argument("--tag", action="append", default=[],
                      metavar="KEY=VALUE", help="tag filter, repeatable")
    data.add_argument("--measured-only", action="store_true",
                      help="exclude sampler-predicted points")
    data.add_argument("--limit", type=int, default=50,
                      help="page size (default 50; 0 counts only)")
    data.add_argument("--offset", type=int, default=0,
                      help="skip the first N matching points")
    data.add_argument("--json", action="store_true", dest="as_json",
                      help="emit the page as JSON")

    # compare (extension: before/after sweeps via tags) ------------------------
    engines = sub.add_parser(
        "engines",
        help="list execution and advice read engines and their "
             "feature coverage",
    )
    engines.add_argument("--json", action="store_true", dest="as_json",
                         help="emit the engine matrix as JSON")

    compare = sub.add_parser(
        "compare",
        help="compare two deployments' datasets scenario by scenario "
             "(extension)",
    )
    compare.add_argument("-a", required=True, metavar="NAME",
                         help="baseline deployment")
    compare.add_argument("-b", required=True, metavar="NAME",
                         help="candidate deployment")
    compare.add_argument("--json", action="store_true", dest="as_json",
                         help="emit the comparison as JSON")

    # gui -------------------------------------------------------------------------
    trace = sub.add_parser(
        "trace", help="print a deployment's telemetry span tree"
    )
    trace.add_argument("-n", "--name", required=True, help="deployment name")
    trace.add_argument("--all", action="store_true", dest="show_all",
                       help="print every recorded trace, not just the "
                            "most recent one")
    trace.add_argument("--json", action="store_true", dest="as_json",
                       help="emit the raw span events as JSON")

    gui = sub.add_parser("gui", help="start the browser GUI")
    gui.add_argument("--port", type=int, default=8040)
    gui.add_argument("--host", default="127.0.0.1")
    gui.add_argument("--once", action="store_true",
                     help=argparse.SUPPRESS)  # test hook: handle one request

    # serve (extension: the advisor as a JSON HTTP service) --------------------
    serve = sub.add_parser(
        "serve",
        help="start the JSON HTTP API service with async collect jobs "
             "(extension)",
    )
    serve.add_argument("--port", type=int, default=8050)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--workers", type=int, default=4,
                       help="job worker threads (default 4)")
    serve.add_argument("--once", action="store_true",
                       help=argparse.SUPPRESS)  # test hook: handle one request

    # fleet (extension: multi-process serving over one state dir) --------------
    fleet = sub.add_parser(
        "fleet",
        help="multi-worker service tier over one state directory "
             "(extension)",
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)
    fleet_serve = fleet_sub.add_parser(
        "serve",
        help="pre-fork N HTTP server workers sharing one port and one "
             "job queue; crashed workers are restarted and their jobs "
             "re-claimed",
    )
    fleet_serve.add_argument("--port", type=int, default=8050)
    fleet_serve.add_argument("--host", default="127.0.0.1")
    fleet_serve.add_argument("--workers", type=int, default=2,
                             help="server processes (default 2)")
    fleet_serve.add_argument("--job-workers", type=int, default=4,
                             help="job worker threads per process "
                                  "(default 4)")

    # remote-client subcommands: submit / status / result ----------------------
    submit = sub.add_parser(
        "submit", help="submit an async collect job to a running service"
    )
    submit.add_argument("--url", required=True,
                        help="service base URL, e.g. http://127.0.0.1:8050")
    submit.add_argument("-n", "--name", required=True, help="deployment name")
    submit.add_argument("--backend", default="azurebatch")
    submit.add_argument("--smart-sampling", action="store_true")
    submit.add_argument("--sampling-policy",
                        help="named preset (implies smart sampling)")
    submit.add_argument("--delete-pools", action="store_true")
    submit.add_argument("--noise", type=float)
    submit.add_argument("--seed", type=int)
    submit.add_argument("--budget", type=float)
    submit.add_argument("--retry-failed", type=int, default=0)
    submit.add_argument("--parallel-pools", type=int, default=1, metavar="N")
    _add_spot_arguments(submit, default_recovery="restart")
    submit.add_argument("--eviction-seed", type=int, default=0)
    _add_engine_argument(submit)
    submit.add_argument("--trace", action="store_true",
                        help="open a client-side span for the submit in the "
                             "deployment's trace ring under --state-dir "
                             "(links client and server spans; see "
                             "`trace`)")
    submit.add_argument("--wait", action="store_true",
                        help="block until the job finishes")
    submit.add_argument("--timeout", type=float, default=600.0,
                        help="wait budget in seconds (with --wait)")
    submit.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the job record as JSON")

    status = sub.add_parser(
        "status", help="show one job (or all jobs) of a running service"
    )
    status.add_argument("--url", required=True)
    status.add_argument("job_id", nargs="?",
                        help="job id; omit to list all jobs")
    status.add_argument("--limit", type=int,
                        help="page size for the job listing (default: all)")
    status.add_argument("--offset", type=int, default=0,
                        help="skip the first N jobs (newest first)")
    status.add_argument("--json", action="store_true", dest="as_json")

    result = sub.add_parser(
        "result", help="wait for a job and print its result"
    )
    result.add_argument("--url", required=True)
    result.add_argument("job_id")
    result.add_argument("--timeout", type=float, default=600.0)
    result.add_argument("--json", action="store_true", dest="as_json")

    return parser


def _add_engine_argument(parser: argparse.ArgumentParser) -> None:
    """The execution-engine flag shared by ``collect`` and ``submit``."""
    parser.add_argument(
        "--engine", choices=["auto", "object", "batched"], default="auto",
        help="execution engine: 'batched' runs the vectorized sweep kernel "
             "(byte-identical results, falls back to the per-object "
             "scheduler when ineligible); see `repro engines`",
    )


def _add_spot_arguments(parser: argparse.ArgumentParser,
                        default_recovery: str) -> None:
    """The spot-capacity flag group shared by ``collect`` and ``submit``."""
    parser.add_argument(
        "--capacity", choices=["ondemand", "spot"], default="ondemand",
        help="capacity tier: 'spot' is ~70%% cheaper but interruptible — "
             "evictions are simulated and tasks recover per --recovery",
    )
    parser.add_argument(
        "--recovery", choices=["restart", "checkpoint_restart", "fail"],
        default=default_recovery,
        help="what happens to a task when its spot node is reclaimed "
             f"(default: {default_recovery})",
    )
    parser.add_argument("--eviction-rate", type=float, metavar="PER_HOUR",
                        help="flat eviction-rate override in interruptions "
                             "per node-hour (default: per-SKU/region curve)")
    parser.add_argument("--checkpoint-interval", type=float, default=600.0,
                        metavar="S",
                        help="work seconds between checkpoints "
                             "(checkpoint_restart; default 600)")
    parser.add_argument("--checkpoint-overhead", type=float, default=60.0,
                        metavar="S",
                        help="restore overhead per resume (default 60)")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _dispatch(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if getattr(args, "store", None):
            # The --store override is per-invocation; in-process callers
            # (tests, embedders) must not inherit it.
            from repro import store as repro_store

            repro_store.set_default_backend(None)


def _dispatch(args: argparse.Namespace) -> int:
    # Imports are local so `--help` stays fast.
    from repro.cli import commands

    if getattr(args, "store", None):
        # Process-wide so every session this invocation opens (including
        # job workers under `serve`) uses the requested engine.
        from repro import store as repro_store

        repro_store.set_default_backend(args.store)
    if args.command == "deploy":
        if args.deploy_command == "create":
            return commands.deploy_create(args.state_dir, args.config)
        if args.deploy_command == "list":
            return commands.deploy_list(args.state_dir,
                                        limit=args.limit,
                                        offset=args.offset,
                                        as_json=args.as_json)
        return commands.deploy_shutdown(args.state_dir, args.name,
                                        purge_data=args.purge_data)
    if args.command == "collect":
        return commands.collect(
            args.state_dir, args.name,
            backend=args.backend,
            smart_sampling=args.smart_sampling,
            delete_pools=args.delete_pools,
            noise=args.noise,
            seed=args.seed,
            budget=args.budget,
            retry_failed=args.retry_failed,
            parallel_pools=args.parallel_pools,
            capacity=args.capacity,
            recovery=args.recovery,
            eviction_rate=args.eviction_rate,
            eviction_seed=args.eviction_seed,
            checkpoint_interval=args.checkpoint_interval,
            checkpoint_overhead=args.checkpoint_overhead,
            engine=args.engine,
            show_report=args.report,
            as_json=args.as_json,
        )
    if args.command == "plot":
        return commands.plot(
            args.state_dir, args.name,
            output=args.output,
            filters=parse_filters(args.filter),
            sku=args.sku,
            subtitle=args.subtitle,
            as_json=args.as_json,
        )
    if args.command == "advice":
        return commands.advice(
            args.state_dir, args.name,
            sort_by=args.sort,
            filters=parse_filters(args.filter),
            max_rows=args.max_rows,
            recipes=args.recipes,
            spot=args.spot,
            capacity=args.capacity,
            recovery=args.recovery,
            eviction_rate=args.eviction_rate,
            checkpoint_interval=args.checkpoint_interval,
            checkpoint_overhead=args.checkpoint_overhead,
            engine=args.engine,
            as_json=args.as_json,
        )
    if args.command == "predict":
        return commands.predict(
            args.state_dir, args.name,
            inputs=parse_filters(args.input),
            nnodes=args.nnodes,
            backend=args.backend,
            as_json=args.as_json,
        )
    if args.command == "data":
        return commands.data(
            args.state_dir, args.name,
            appname=args.appname,
            sku=args.sku,
            nnodes=args.nnodes,
            capacity=args.capacity,
            filters=parse_filters(args.filter),
            tags=parse_filters(args.tag),
            measured_only=args.measured_only,
            limit=args.limit,
            offset=args.offset,
            as_json=args.as_json,
        )
    if args.command == "compare":
        return commands.compare(args.state_dir, args.a, args.b,
                                as_json=args.as_json)
    if args.command == "engines":
        return commands.engines(args.state_dir, as_json=args.as_json)
    if args.command == "trace":
        return commands.trace(args.state_dir, args.name,
                              show_all=args.show_all,
                              as_json=args.as_json)
    if args.command == "gui":
        return commands.gui(args.state_dir, host=args.host, port=args.port,
                            once=args.once)
    if args.command == "serve":
        return commands.serve(args.state_dir, host=args.host, port=args.port,
                              workers=args.workers, once=args.once)
    if args.command == "fleet":
        return commands.fleet_serve(
            args.state_dir, host=args.host, port=args.port,
            workers=args.workers, job_workers=args.job_workers)
    if args.command == "submit":
        return commands.submit(
            args.url, args.name,
            backend=args.backend,
            smart_sampling=args.smart_sampling,
            sampling_policy=args.sampling_policy,
            delete_pools=args.delete_pools,
            noise=args.noise,
            seed=args.seed,
            budget=args.budget,
            retry_failed=args.retry_failed,
            parallel_pools=args.parallel_pools,
            capacity=args.capacity,
            recovery=args.recovery,
            eviction_rate=args.eviction_rate,
            eviction_seed=args.eviction_seed,
            checkpoint_interval=args.checkpoint_interval,
            checkpoint_overhead=args.checkpoint_overhead,
            engine=args.engine,
            wait=args.wait,
            timeout=args.timeout,
            as_json=args.as_json,
            state_dir=args.state_dir,
            trace=args.trace,
        )
    if args.command == "status":
        return commands.status(args.url, args.job_id,
                               limit=args.limit, offset=args.offset,
                               as_json=args.as_json)
    if args.command == "result":
        return commands.result(args.url, args.job_id, timeout=args.timeout,
                               as_json=args.as_json)
    raise AssertionError(f"unhandled command {args.command!r}")


def parse_filters(items: List[str]) -> Dict[str, str]:
    """Parse repeated KEY=VALUE filter arguments."""
    from repro.api.serde import parse_key_values

    return parse_key_values(items)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
