"""Unit helpers: byte sizes, bandwidths, durations and money.

The simulator keeps every quantity in SI base units internally (bytes,
bytes/second, seconds, US dollars) and converts only at the formatting
boundary.  These helpers make calibration constants readable at the point of
definition, e.g. ``mem_bw=GBps(350)`` instead of ``350e9``.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Byte sizes (decimal and binary)
# ---------------------------------------------------------------------------

KB = 1_000
MB = 1_000_000
GB = 1_000_000_000
TB = 1_000_000_000_000

KiB = 1024
MiB = 1024**2
GiB = 1024**3
TiB = 1024**4


def kib(n: float) -> float:
    return n * KiB


def mib(n: float) -> float:
    return n * MiB


def gib(n: float) -> float:
    return n * GiB


# ---------------------------------------------------------------------------
# Bandwidths
# ---------------------------------------------------------------------------


def GBps(n: float) -> float:
    """Gigabytes per second -> bytes per second."""
    return n * GB


def Gbps(n: float) -> float:
    """Gigabits per second -> bytes per second."""
    return n * GB / 8.0


def MBps(n: float) -> float:
    """Megabytes per second -> bytes per second."""
    return n * MB


# ---------------------------------------------------------------------------
# Durations
# ---------------------------------------------------------------------------

SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0


def us(n: float) -> float:
    """Microseconds -> seconds."""
    return n * 1e-6


def ms(n: float) -> float:
    """Milliseconds -> seconds."""
    return n * 1e-3


def minutes(n: float) -> float:
    return n * MINUTE


def hours(n: float) -> float:
    return n * HOUR


# ---------------------------------------------------------------------------
# Formatting
# ---------------------------------------------------------------------------


def fmt_bytes(n: float) -> str:
    """Human-readable byte count using binary multiples."""
    value = float(n)
    for suffix in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or suffix == "TiB":
            return f"{value:.4g} {suffix}"
        value /= 1024.0
    raise AssertionError("unreachable")


def fmt_duration(seconds: float) -> str:
    """Human-readable duration, e.g. ``1h 02m 03s``."""
    if seconds < 0:
        return "-" + fmt_duration(-seconds)
    total = int(round(seconds))
    h, rem = divmod(total, 3600)
    m, s = divmod(rem, 60)
    if h:
        return f"{h}h {m:02d}m {s:02d}s"
    if m:
        return f"{m}m {s:02d}s"
    if seconds < 1 and seconds > 0:
        return f"{seconds:.3g}s"
    return f"{s}s"


def fmt_usd(amount: float) -> str:
    """Format a dollar amount the way the paper's advice tables do."""
    return f"{amount:.4f}"
