"""CLI tests: the Table II command surface end to end."""

import os

import pytest

from repro.cli.main import build_parser, main, parse_filters
from repro.errors import ReproError

CONFIG_YAML = """
subscription: clitest
skus:
  - Standard_HB120rs_v3
rgprefix: clirg
appsetupurl: https://example.org/lammps.sh
nnodes: [1, 2]
appname: lammps
region: southcentralus
ppr: 100
appinputs:
  BOXFACTOR: ["6"]
"""


@pytest.fixture
def state_dir(tmp_path):
    return str(tmp_path / "state")


@pytest.fixture
def config_file(tmp_path):
    path = tmp_path / "config.yaml"
    path.write_text(CONFIG_YAML)
    return str(path)


def run(state_dir, *argv):
    return main(["--state-dir", state_dir, *argv])


class TestParser:
    def test_table2_commands_present(self):
        """Paper Table II: deploy create/list/shutdown, collect, plot,
        advice, gui."""
        parser = build_parser()
        for argv in (
            ["deploy", "create", "-c", "x.yaml"],
            ["deploy", "list"],
            ["deploy", "shutdown", "-n", "x"],
            ["collect", "-n", "x"],
            ["plot", "-n", "x"],
            ["advice", "-n", "x"],
            ["gui"],
        ):
            parser.parse_args(argv)  # must not raise

    def test_missing_command_fails(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_parse_filters(self):
        assert parse_filters(["mesh=40 16 16", "a=b"]) == {
            "mesh": "40 16 16", "a": "b"
        }
        with pytest.raises(ReproError):
            parse_filters(["noequals"])
        with pytest.raises(ReproError):
            parse_filters(["=value"])


class TestDeployCommands:
    def test_create_then_list(self, state_dir, config_file, capsys):
        assert run(state_dir, "deploy", "create", "-c", config_file) == 0
        out = capsys.readouterr().out
        assert "created deployment clirg-000" in out
        assert run(state_dir, "deploy", "list") == 0
        out = capsys.readouterr().out
        assert "clirg-000" in out
        assert "lammps" in out

    def test_list_empty(self, state_dir, capsys):
        assert run(state_dir, "deploy", "list") == 0
        assert "no deployments" in capsys.readouterr().out

    def test_shutdown(self, state_dir, config_file, capsys):
        run(state_dir, "deploy", "create", "-c", config_file)
        capsys.readouterr()
        assert run(state_dir, "deploy", "shutdown", "-n", "clirg-000") == 0
        assert "shut down" in capsys.readouterr().out
        run(state_dir, "deploy", "list")
        assert "clirg-000" not in capsys.readouterr().out

    def test_shutdown_unknown_is_error(self, state_dir, capsys):
        assert run(state_dir, "deploy", "shutdown", "-n", "ghost") == 2
        assert "error:" in capsys.readouterr().err

    def test_create_bad_config(self, state_dir, tmp_path, capsys):
        bad = tmp_path / "bad.yaml"
        bad.write_text("subscription: only\n")
        assert run(state_dir, "deploy", "create", "-c", str(bad)) == 2


class TestCollectPlotAdvice:
    @pytest.fixture
    def collected(self, state_dir, config_file, capsys):
        run(state_dir, "deploy", "create", "-c", config_file)
        assert run(state_dir, "collect", "-n", "clirg-000") == 0
        capsys.readouterr()
        return state_dir

    def test_collect_reports(self, state_dir, config_file, capsys):
        run(state_dir, "deploy", "create", "-c", config_file)
        assert run(state_dir, "collect", "-n", "clirg-000") == 0
        out = capsys.readouterr().out
        assert "executed:  2" in out
        assert "task cost" in out

    def test_collect_on_slurm_backend(self, state_dir, config_file, capsys):
        run(state_dir, "deploy", "create", "-c", config_file)
        assert run(state_dir, "collect", "-n", "clirg-000",
                   "--backend", "slurm") == 0
        assert "slurm" in capsys.readouterr().out

    def test_advice_output(self, collected, capsys):
        assert run(collected, "advice", "-n", "clirg-000") == 0
        out = capsys.readouterr().out
        assert "Exectime(s)" in out
        assert "hb120rs_v3" in out

    def test_advice_with_recipes(self, collected, capsys):
        assert run(collected, "advice", "-n", "clirg-000", "--recipes") == 0
        out = capsys.readouterr().out
        assert "#SBATCH --nodes=" in out
        assert "vm_type: Standard_HB120rs_v3" in out

    def test_advice_before_collect_is_error(self, state_dir, config_file,
                                            capsys):
        run(state_dir, "deploy", "create", "-c", config_file)
        capsys.readouterr()
        assert run(state_dir, "advice", "-n", "clirg-000") == 2
        assert "run collect first" in capsys.readouterr().err

    def test_plot_writes_svgs(self, collected, tmp_path, capsys):
        out_dir = str(tmp_path / "plots")
        assert run(collected, "plot", "-n", "clirg-000", "-o", out_dir) == 0
        files = sorted(os.listdir(out_dir))
        assert files == [
            "plot_cost.svg", "plot_efficiency.svg", "plot_exectime.svg",
            "plot_pareto.svg", "plot_speedup.svg",
        ]

    def test_plot_with_filter(self, collected, tmp_path, capsys):
        out_dir = str(tmp_path / "plots")
        assert run(collected, "plot", "-n", "clirg-000", "-o", out_dir,
                   "--filter", "BOXFACTOR=6") == 0

    def test_collect_with_smart_sampling_flag(self, state_dir, config_file,
                                              capsys):
        run(state_dir, "deploy", "create", "-c", config_file)
        assert run(state_dir, "collect", "-n", "clirg-000",
                   "--smart-sampling") == 0

    def test_collect_with_noise(self, state_dir, config_file, capsys):
        run(state_dir, "deploy", "create", "-c", config_file)
        assert run(state_dir, "collect", "-n", "clirg-000",
                   "--noise", "0.05", "--seed", "3") == 0


class TestJsonOutput:
    """The --json flag on collect and advice (typed-result serialization)."""

    def test_collect_json(self, state_dir, config_file, capsys):
        import json

        from repro.api import CollectResult

        run(state_dir, "deploy", "create", "-c", config_file)
        capsys.readouterr()
        assert run(state_dir, "collect", "-n", "clirg-000", "--json") == 0
        result = CollectResult.from_dict(
            json.loads(capsys.readouterr().out)
        )
        assert result.deployment == "clirg-000"
        assert result.executed == 2
        assert result.dataset_points == 2

    def test_advice_json(self, state_dir, config_file, capsys):
        import json

        from repro.api import AdviceResult

        run(state_dir, "deploy", "create", "-c", config_file)
        run(state_dir, "collect", "-n", "clirg-000")
        capsys.readouterr()
        assert run(state_dir, "advice", "-n", "clirg-000", "--json") == 0
        result = AdviceResult.from_dict(
            json.loads(capsys.readouterr().out)
        )
        assert result.rows
        assert result.rows[0].sku == "Standard_HB120rs_v3"

    def test_json_conflicts_with_text_sections(self, state_dir, config_file,
                                               capsys):
        run(state_dir, "deploy", "create", "-c", config_file)
        run(state_dir, "collect", "-n", "clirg-000")
        capsys.readouterr()
        assert run(state_dir, "advice", "-n", "clirg-000",
                   "--json", "--recipes") == 2
        assert "cannot be combined" in capsys.readouterr().err
        assert run(state_dir, "collect", "-n", "clirg-000",
                   "--json", "--report") == 2
        assert "cannot be combined" in capsys.readouterr().err
