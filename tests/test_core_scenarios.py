"""Scenario generation tests."""

import pytest

from repro.core.scenarios import (
    Scenario,
    generate_scenarios,
    iter_input_combinations,
    ppn_for,
)
from repro.errors import ConfigError
from tests.conftest import make_config


class TestPpn:
    def test_full_ppr(self):
        assert ppn_for("Standard_HB120rs_v3", 100) == 120
        assert ppn_for("Standard_HC44rs", 100) == 44

    def test_half_ppr(self):
        assert ppn_for("Standard_HB120rs_v3", 50) == 60

    def test_tiny_ppr_floors_at_one(self):
        assert ppn_for("Standard_HC44rs", 1) == 1

    def test_invalid_ppr(self):
        with pytest.raises(ConfigError):
            ppn_for("Standard_HC44rs", 0)


class TestInputCombinations:
    def test_empty_yields_single_empty(self):
        assert list(iter_input_combinations({})) == [{}]

    def test_product(self):
        combos = list(iter_input_combinations(
            {"a": ["1", "2"], "b": ["x", "y"]}
        ))
        assert len(combos) == 4
        assert {"a": "1", "b": "y"} in combos

    def test_key_order_stable(self):
        combos1 = list(iter_input_combinations({"b": ["1"], "a": ["2"]}))
        combos2 = list(iter_input_combinations({"a": ["2"], "b": ["1"]}))
        assert combos1 == combos2


class TestGeneration:
    def test_listing1_count(self):
        config = make_config(
            skus=["Standard_HC44rs", "Standard_HB120rs_v2",
                  "Standard_HB120rs_v3"],
            nnodes=[1, 2, 3, 4, 8, 16],
            appname="openfoam",
            appinputs={"mesh": ["80 24 24", "60 16 16"]},
        )
        scenarios = generate_scenarios(config)
        assert len(scenarios) == 36 == config.scenario_count

    def test_ids_unique_and_ordered(self):
        scenarios = generate_scenarios(make_config(nnodes=[1, 2, 4]))
        ids = [s.scenario_id for s in scenarios]
        assert len(set(ids)) == len(ids)
        assert ids == sorted(ids)

    def test_grouped_by_sku(self):
        """Algorithm 1 relies on SKU-grouped ordering for pool recycling."""
        config = make_config(
            skus=["Standard_HB120rs_v3", "Standard_HC44rs"], nnodes=[1, 2]
        )
        scenarios = generate_scenarios(config)
        sku_sequence = [s.sku_name for s in scenarios]
        # Each SKU appears as one contiguous block.
        blocks = []
        for sku in sku_sequence:
            if not blocks or blocks[-1] != sku:
                blocks.append(sku)
        assert len(blocks) == 2

    def test_ppn_derived_per_sku(self):
        config = make_config(
            skus=["Standard_HB120rs_v3", "Standard_HC44rs"], ppr=100
        )
        by_sku = {s.sku_name: s.ppn for s in generate_scenarios(config)}
        assert by_sku["Standard_HB120rs_v3"] == 120
        assert by_sku["Standard_HC44rs"] == 44

    def test_tags_propagate(self):
        scenarios = generate_scenarios(make_config(tags={"version": "v1"}))
        assert all(s.tags == {"version": "v1"} for s in scenarios)

    def test_unknown_sku_fails_early(self):
        config = make_config(skus=["Standard_Bogus"])
        with pytest.raises(Exception):
            generate_scenarios(config)


class TestScenarioObject:
    def test_total_ranks(self):
        s = Scenario(scenario_id="t", sku_name="Standard_HB120rs_v3",
                     nnodes=16, ppn=120, appname="lammps")
        assert s.total_ranks == 1920  # the paper's headline core count

    def test_inputs_key_canonical(self):
        a = Scenario(scenario_id="t", sku_name="x", nnodes=1, ppn=1,
                     appname="a", appinputs={"b": "2", "a": "1"})
        b = Scenario(scenario_id="u", sku_name="x", nnodes=1, ppn=1,
                     appname="a", appinputs={"a": "1", "b": "2"})
        assert a.inputs_key() == b.inputs_key() == "a=1,b=2"

    def test_dict_roundtrip(self):
        s = Scenario(scenario_id="t1", sku_name="Standard_HC44rs",
                     nnodes=4, ppn=44, appname="wrf",
                     appinputs={"resolution": "12"}, tags={"v": "1"})
        assert Scenario.from_dict(s.to_dict()) == s

    def test_validation(self):
        with pytest.raises(ConfigError):
            Scenario(scenario_id="t", sku_name="x", nnodes=0, ppn=1,
                     appname="a")
        with pytest.raises(ConfigError):
            Scenario(scenario_id="t", sku_name="x", nnodes=1, ppn=0,
                     appname="a")
