"""Deployment-sequence tests (paper Sec. III-B)."""

import pytest

from repro.core.deployer import Deployer, storage_account_name
from repro.errors import SkuNotAvailable
from tests.conftest import make_config


class TestStorageAccountName:
    def test_sanitised(self):
        name = storage_account_name("HPC-Advisor_Test-001")
        assert name.islower()
        assert name.isalnum()
        assert 3 <= len(name) <= 24

    def test_empty_prefix_fallback(self):
        assert storage_account_name("---") == "hpcadvisorsa"


class TestDeploySequence:
    def test_landing_zone_created(self, small_config):
        deployment = Deployer().deploy(small_config)
        rg = deployment.resource_group
        assert rg.region == "southcentralus"
        assert "hpcadvisor-vnet" in rg.vnets
        subnets = rg.vnets["hpcadvisor-vnet"].subnets
        assert set(subnets) == {"compute", "infra"}

    def test_storage_account_with_nfs(self, small_config):
        deployment = Deployer().deploy(small_config)
        account = deployment.resource_group.storage_accounts[
            deployment.storage_account
        ]
        assert "nfs" in account.shares

    def test_batch_service_starts_empty(self, small_config):
        """Step 4: 'create a batch service with no resources.'"""
        deployment = Deployer().deploy(small_config)
        assert deployment.batch.list_pools() == []

    def test_tags_propagate_to_rg(self, small_config):
        deployment = Deployer().deploy(small_config)
        assert deployment.resource_group.tags == {"version": "test"}

    def test_no_jumpbox_by_default(self, small_config):
        deployment = Deployer().deploy(small_config)
        assert deployment.jumpbox_name is None

    def test_jumpbox_when_requested(self):
        deployment = Deployer().deploy(make_config(createjumpbox=True))
        assert deployment.jumpbox_name == "jumpbox"
        assert "jumpbox" in deployment.resource_group.jumpboxes

    def test_invalid_sku_region_fails_before_any_resource(self):
        deployer = Deployer()
        config = make_config(skus=["Standard_HB120rs_v3"], region="japaneast")
        with pytest.raises(SkuNotAvailable):
            deployer.deploy(config)
        assert deployer.list_deployments() == []

    def test_names_increment(self):
        deployer = Deployer()
        a = deployer.deploy(make_config())
        b = deployer.deploy(make_config())
        assert a.name == "testrg-000"
        assert b.name == "testrg-001"

    def test_explicit_suffix(self):
        deployment = Deployer().deploy(make_config(), suffix="-custom")
        assert deployment.name == "testrg-custom"

    def test_clock_advances_during_deploy(self, small_config):
        deployer = Deployer()
        deployment = deployer.deploy(small_config)
        assert deployment.provider.clock.now > 0
        assert deployment.created_at == deployment.provider.clock.now


class TestVpnPeering:
    def test_peering_applied(self):
        deployer = Deployer()
        # Pre-existing VPN landing zone, as the paper describes.
        deployer.provider.create_resource_group("vpn-rg", "southcentralus")
        deployer.provider.create_vnet("vpn-rg", "vpn-vnet", "10.100.0.0/16")
        config = make_config(peervpn=True, vpnrg="vpn-rg", vpnvnet="vpn-vnet")
        deployment = deployer.deploy(config)
        assert deployment.peered_vnets == ["vpn-rg/vpn-vnet"]
        vnet = deployment.resource_group.vnets["hpcadvisor-vnet"]
        assert "vpn-vnet" in vnet.peered_with


class TestListShutdown:
    def test_list_by_prefix(self):
        deployer = Deployer()
        deployer.deploy(make_config())
        deployer.deploy(make_config(rgprefix="otherprefix"))
        names = [rg.name for rg in deployer.list_deployments("testrg")]
        assert names == ["testrg-000"]

    def test_shutdown_deletes_rg_and_pools(self, small_config):
        deployer = Deployer()
        deployment = deployer.deploy(small_config)
        deployment.batch.create_pool("p", "Standard_HB120rs_v3", 2)
        deployer.shutdown(deployment)
        assert deployer.list_deployments() == []
        assert deployment.batch.list_pools() == []

    def test_record_serialisable(self, small_config):
        deployment = Deployer().deploy(small_config)
        record = deployment.to_record()
        import json

        json.dumps(record)  # must be serialisable
        assert record["name"] == deployment.name
        assert record["config"]["appname"] == "lammps"
