"""FleetJobManager: the store-backed executor behind each fleet worker.

Covers the JobManager-compatible surface over the shared queue: multiple
managers draining one store, cooperative cancel through the store flag,
and the lease-loss path (a zombie abandons instead of clobbering the
winner's record).
"""

import threading
import time
from types import SimpleNamespace

import pytest

from repro.api.results import CollectResult, PredictResult
from repro.errors import ConfigError, JobStateError, LeaseLost
from repro.fleet.jobstore import FleetJobStore
from repro.fleet.manager import FleetJobManager


def report(executed=1, total=2):
    return SimpleNamespace(executed=executed, completed=executed,
                           failed=0, skipped=0, predicted=0,
                           preemptions=0, simulated_wall_s=1.0)


class FakeSession:
    """Deterministic stand-in for AdvisorSession inside job workers."""

    def __init__(self, steps=3, step_gate=None, started=None):
        self.steps = steps
        self.step_gate = step_gate      # optional Event paced per step
        self.started = started          # optional Event set on entry

    def collect(self, request, progress=None):
        if self.started is not None:
            self.started.set()
        for step in range(1, self.steps + 1):
            if self.step_gate is not None:
                self.step_gate.wait(timeout=30)
            if progress is not None:
                progress(report(executed=step), self.steps)
        return CollectResult(deployment=request.deployment,
                             completed=self.steps)

    def predict(self, request):
        return PredictResult(deployment=request.deployment)


@pytest.fixture
def store(tmp_path):
    handle = FleetJobStore(str(tmp_path / "fleet.sqlite"), lease_s=5.0)
    yield handle
    handle.close()


def make_manager(store, session=None, **kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("poll_s", 0.02)
    return FleetJobManager(
        store, session_factory=lambda: session or FakeSession(), **kwargs
    )


class TestSurface:
    def test_submit_runs_to_done(self, store):
        manager = make_manager(store)
        try:
            record = manager.submit("collect", {"deployment": "dep-000"})
            assert record.state == "queued"
            final = manager.wait(record.id, timeout=10)
            assert final.state == "done", final.error
            assert final.worker_id == manager.worker_id
            assert final.attempts == 1
            assert final.result["completed"] == 3
        finally:
            manager.close()

    def test_predict_job(self, store):
        manager = make_manager(store)
        try:
            record = manager.submit("predict", {"deployment": "dep-000"})
            final = manager.wait(record.id, timeout=10)
            assert final.state == "done", final.error
        finally:
            manager.close()

    def test_submit_validates(self, store):
        manager = make_manager(store)
        try:
            with pytest.raises(ConfigError):
                manager.submit("mine", {"deployment": "d"})
            with pytest.raises(ConfigError):
                manager.submit("collect", {})
        finally:
            manager.close()

    def test_counts_and_list(self, store):
        manager = make_manager(store)
        try:
            record = manager.submit("collect", {"deployment": "dep-000"})
            manager.wait(record.id, timeout=10)
            assert manager.counts()["done"] == 1
            assert [r.id for r in manager.list(deployment="dep-000")] \
                == [record.id]
        finally:
            manager.close()

    def test_wait_times_out(self, store):
        gate = threading.Event()
        manager = make_manager(store, session=FakeSession(step_gate=gate))
        try:
            record = manager.submit("collect", {"deployment": "dep-000"})
            with pytest.raises(JobStateError):
                manager.wait(record.id, timeout=0.2)
        finally:
            gate.set()
            manager.close()

    def test_failed_session_marks_failed(self, store):
        class Exploding:
            def collect(self, request, progress=None):
                raise RuntimeError("boom")

        manager = make_manager(store, session=Exploding())
        try:
            record = manager.submit("collect", {"deployment": "dep-000"})
            final = manager.wait(record.id, timeout=10)
            assert final.state == "failed"
            assert "boom" in final.error
        finally:
            manager.close()

    def test_fleet_health_shape(self, store):
        manager = make_manager(store)
        try:
            health = manager.fleet_health()
            assert health["worker_id"] == manager.worker_id
            assert health["queue_depth"] == 0
            assert health["lease_s"] == store.lease_s
            assert any(w["worker_id"] == manager.worker_id
                       for w in health["workers"])
        finally:
            manager.close()
        assert all(w["worker_id"] != manager.worker_id
                   for w in store.live_workers())


class TestSharedQueue:
    def test_two_managers_drain_one_queue(self, tmp_path, store):
        """Jobs submitted through one manager can be executed by either;
        every record lands `done` exactly once."""
        other_store = FleetJobStore(str(tmp_path / "fleet.sqlite"),
                                    lease_s=5.0)
        a = make_manager(store, worker_id="mgr-a")
        b = make_manager(other_store, worker_id="mgr-b")
        try:
            records = [a.submit("collect", {"deployment": f"dep-{i}"})
                       for i in range(6)]
            finals = [a.wait(r.id, timeout=30) for r in records]
            assert {f.state for f in finals} == {"done"}
            owners = {f.worker_id for f in finals}
            assert owners <= {"mgr-a", "mgr-b"}
        finally:
            a.close()
            b.close()
            other_store.close()

    def test_same_deployment_serialized(self, store):
        """Two jobs on one deployment never run concurrently."""
        running = []
        overlap = []
        lock = threading.Lock()

        class Tracking:
            def collect(self, request, progress=None):
                with lock:
                    overlap.append(len(running) > 0)
                    running.append(1)
                time.sleep(0.1)
                with lock:
                    running.pop()
                return CollectResult(deployment=request.deployment)

        manager = FleetJobManager(
            store, session_factory=Tracking, workers=2, poll_s=0.02)
        try:
            first = manager.submit("collect", {"deployment": "dep-x"})
            second = manager.submit("collect", {"deployment": "dep-x"})
            manager.wait(first.id, timeout=10)
            final = manager.wait(second.id, timeout=10)
            assert final.state == "done"
            assert overlap == [False, False]
        finally:
            manager.close()


class TestCancel:
    def test_cancel_running_job(self, store):
        gate = threading.Event()
        started = threading.Event()
        manager = make_manager(
            store, session=FakeSession(steps=50, step_gate=gate,
                                       started=started))
        try:
            record = manager.submit("collect", {"deployment": "dep-000"})
            assert started.wait(timeout=10)
            manager.cancel(record.id)
            gate.set()
            final = manager.wait(record.id, timeout=10)
            assert final.state == "cancelled"
        finally:
            gate.set()
            manager.close()

    def test_cancel_queued_is_immediate(self, store):
        gate = threading.Event()
        started = threading.Event()
        manager = make_manager(
            store, session=FakeSession(steps=50, step_gate=gate,
                                       started=started),
            workers=1)
        try:
            blocker = manager.submit("collect", {"deployment": "dep-a"})
            assert started.wait(timeout=10)
            queued = manager.submit("collect", {"deployment": "dep-b"})
            cancelled = manager.cancel(queued.id)
            assert cancelled.state == "cancelled"
            gate.set()
            manager.wait(blocker.id, timeout=30)
        finally:
            gate.set()
            manager.close()


class TestLeaseLoss:
    def test_zombie_abandons_without_clobbering(self, tmp_path):
        """A worker that loses its lease mid-job must not write over the
        record the new owner now holds."""
        db = str(tmp_path / "fleet.sqlite")
        store = FleetJobStore(db, lease_s=0.2)
        thief = FleetJobStore(db, lease_s=3600.0)
        started = threading.Event()
        gate = threading.Event()
        manager = make_manager(
            store, session=FakeSession(steps=2, step_gate=gate,
                                       started=started),
            workers=1)
        try:
            record = manager.submit("collect", {"deployment": "dep-000"})
            assert started.wait(timeout=10)
            # Steal the job: claim far in the future so the running
            # lease looks expired, then finish as the new owner.
            stolen = None
            deadline = time.monotonic() + 10
            while stolen is None and time.monotonic() < deadline:
                stolen = thief.claim("thief", now=time.time() + 3600)
                time.sleep(0.02)
            assert stolen is not None and stolen.id == record.id
            final = thief.finish(record.id, "thief", "done",
                                 result={"stolen": True})
            # Let the zombie run on; its writes must all be fenced.
            gate.set()
            time.sleep(0.5)
            after = store.get(record.id)
            assert after.state == "done"
            assert after.worker_id == "thief"
            assert after.result == {"stolen": True}
            assert after.finished_at == final.finished_at
        finally:
            gate.set()
            manager.close()
            thief.close()
            store.close()

    def test_direct_lease_lost_progress(self, store):
        """update_progress through the manager's store raises LeaseLost
        for a non-owner (sanity: the fence the manager relies on)."""
        manager = make_manager(store)
        try:
            record = manager.submit("collect", {"deployment": "dep-keep"})
            manager.wait(record.id, timeout=10)
            with pytest.raises((LeaseLost, JobStateError)):
                store.update_progress(record.id, "nobody", {})
        finally:
            manager.close()


class TestValidation:
    def test_bad_workers(self, store):
        with pytest.raises(ConfigError):
            FleetJobManager(store, session_factory=FakeSession, workers=0)

    def test_bad_retention(self, store):
        with pytest.raises(ConfigError):
            FleetJobManager(store, session_factory=FakeSession,
                            retention=0)

    def test_scenario_delay_env(self, store, monkeypatch):
        monkeypatch.setenv("REPRO_FLEET_SCENARIO_DELAY_S", "0.125")
        manager = make_manager(store)
        try:
            assert manager.scenario_delay_s == 0.125
        finally:
            manager.close()