"""Property-based tests for the spot-capacity preemption invariants.

For *any* eviction trace (rate, seed, checkpoint geometry):

* total billed node-seconds >= useful node-seconds, with the exact
  decomposition ``billed == useful + wasted`` in the noise-free model;
* ``checkpoint_restart`` never loses more than one checkpoint interval
  (plus the restore it was in) per eviction;
* the recorded application time equals the uninterrupted run's time —
  evictions cost money and wall-clock, never physics;
* eviction rate 0.0 reproduces the non-spot run byte-identically;
* a fixed ``eviction_seed`` replays the sweep identically.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.appkit.plugins import get_plugin
from repro.backends.azurebatch import AzureBatchBackend
from repro.cloud.eviction import EvictionModel
from repro.core.collector import DataCollector
from repro.core.dataset import Dataset
from repro.core.deployer import Deployer
from repro.core.scenarios import generate_scenarios
from repro.core.taskdb import TaskDB
from tests.conftest import make_config

#: One small scenario (1 SKU x 1 node count) keeps each example fast;
#: the strategies vary everything that matters for the invariants.
SKU = "Standard_HB120rs_v3"

rates = st.sampled_from([0.0, 20.0, 120.0, 600.0, 3000.0])
seeds = st.integers(min_value=0, max_value=2**31)
intervals = st.sampled_from([3.0, 10.0, 45.0, 600.0])
overheads = st.sampled_from([0.0, 1.0, 8.0])
recoveries = st.sampled_from(["restart", "checkpoint_restart"])


def run_spot(rate, seed, recovery, interval, overhead, nnodes=2,
             capacity="spot"):
    config = make_config(skus=[SKU], nnodes=[nnodes],
                         appinputs={"BOXFACTOR": ["16"]})
    deployment = Deployer().deploy(config)
    collector = DataCollector(
        backend=AzureBatchBackend(service=deployment.batch,
                                  capacity=capacity),
        script=get_plugin(config.appname),
        dataset=Dataset(),
        taskdb=TaskDB(),
        capacity=capacity,
        recovery=recovery,
        checkpoint_interval_s=interval,
        checkpoint_overhead_s=overhead,
        eviction=(EvictionModel.flat(rate, seed=seed)
                  if capacity == "spot" else None),
        max_preemptions=400,
    )
    report = collector.collect(generate_scenarios(config))
    return report, collector, deployment


@given(rate=rates, seed=seeds, recovery=recoveries, interval=intervals,
       overhead=overheads)
@settings(max_examples=25, deadline=None)
def test_billed_never_below_useful_and_decomposes(rate, seed, recovery,
                                                  interval, overhead):
    """billed node-seconds == useful + wasted, so billed >= useful."""
    report, collector, deployment = run_spot(rate, seed, recovery,
                                             interval, overhead)
    price = deployment.provider.prices.hourly_price(
        SKU, "southcentralus", spot=True
    )
    for point in collector.dataset:
        useful_node_s = point.exec_time_s * point.nnodes
        billed_node_s = point.cost_usd / price * 3600.0
        assert billed_node_s >= useful_node_s - 1e-6
        assert billed_node_s == pytest.approx(
            useful_node_s + point.wasted_node_s, rel=1e-9, abs=1e-6
        )
        assert point.wasted_node_s >= 0.0
        assert (point.preemptions == 0) == (point.wasted_node_s == 0.0)


@given(rate=rates, seed=seeds, interval=intervals, overhead=overheads)
@settings(max_examples=25, deadline=None)
def test_checkpoint_loses_at_most_one_interval_per_eviction(
        rate, seed, interval, overhead):
    """Each eviction wastes < one interval of work + the restore it was
    in; the final resume adds one more overhead."""
    _, collector, _ = run_spot(rate, seed, "checkpoint_restart",
                               interval, overhead)
    for point in collector.dataset:
        bound = (point.preemptions * (interval + overhead) + overhead) \
            * point.nnodes
        assert point.wasted_node_s <= bound + 1e-6


@given(rate=rates, seed=seeds, recovery=recoveries, interval=intervals,
       overhead=overheads)
@settings(max_examples=25, deadline=None)
def test_evictions_never_change_the_physics(rate, seed, recovery,
                                            interval, overhead):
    """The recorded app execution time is eviction-independent: spot
    buys the same computation, just later and with more billing."""
    report, collector, _ = run_spot(rate, seed, recovery, interval,
                                    overhead)
    _, baseline, _ = run_spot(0.0, 0, recovery, interval, overhead)
    if report.completed:
        spot_execs = sorted(p.exec_time_s for p in collector.dataset)
        base_execs = sorted(p.exec_time_s for p in baseline.dataset)
        for got, want in zip(spot_execs, base_execs):
            assert got == pytest.approx(want, rel=1e-12)
        for point in collector.dataset:
            assert point.makespan_s >= point.exec_time_s - 1e-9


@given(seed=seeds, recovery=recoveries, interval=intervals,
       overhead=overheads, nnodes=st.sampled_from([1, 2, 4]))
@settings(max_examples=15, deadline=None)
def test_rate_zero_is_byte_identical_to_ondemand(seed, recovery, interval,
                                                 overhead, nnodes):
    """The zero-rate spot walk is the on-demand walk, byte for byte
    (tier label aside), once the discount is normalized away."""
    _, spot, spot_dep = run_spot(0.0, seed, recovery, interval, overhead,
                                 nnodes=nnodes)
    _, ondemand, _ = run_spot(0.0, seed, recovery, interval, overhead,
                              nnodes=nnodes, capacity="ondemand")
    discount_factor = 1.0 - spot_dep.provider.prices.spot_discount

    def normalized(collector, drop_capacity=True):
        rows = []
        for p in collector.dataset:
            d = p.to_dict()
            d.pop("capacity")
            d.pop("cost_usd")
            rows.append(str(sorted(d.items())))
        return sorted(rows)

    assert normalized(spot) == normalized(ondemand)
    for spot_point, od_point in zip(spot.dataset, ondemand.dataset):
        assert spot_point.cost_usd == pytest.approx(
            od_point.cost_usd * discount_factor, rel=1e-12
        )
        assert spot_point.preemptions == 0


@given(rate=st.sampled_from([120.0, 600.0]), seed=seeds,
       recovery=recoveries)
@settings(max_examples=10, deadline=None)
def test_fixed_seed_replays_identically(rate, seed, recovery):
    report_a, collector_a, _ = run_spot(rate, seed, recovery, 10.0, 1.0)
    report_b, collector_b, _ = run_spot(rate, seed, recovery, 10.0, 1.0)
    assert [p.to_dict() for p in collector_a.dataset] \
        == [p.to_dict() for p in collector_b.dataset]
    assert report_a.preemptions == report_b.preemptions
    assert report_a.wasted_node_s == report_b.wasted_node_s
    assert report_a.makespan_s == report_b.makespan_s


@given(rate=rates, seed=seeds, interval=intervals, overhead=overheads)
@settings(max_examples=15, deadline=None)
def test_report_aggregates_match_points(rate, seed, interval, overhead):
    report, collector, _ = run_spot(rate, seed, "checkpoint_restart",
                                    interval, overhead)
    records = collector.taskdb.all()
    assert report.preemptions == sum(r.preemptions for r in records)
    completed_wasted = sum(
        p.wasted_node_s for p in collector.dataset
    )
    if report.failed == 0:
        assert report.wasted_node_s == pytest.approx(
            completed_wasted, rel=1e-9, abs=1e-9
        )
    else:
        assert report.wasted_node_s >= completed_wasted - 1e-9


@given(rate=st.sampled_from([600.0, 3000.0]), seed=seeds)
@settings(max_examples=10, deadline=None)
def test_fail_policy_fails_after_exactly_one_eviction(rate, seed):
    report, collector, _ = run_spot(rate, seed, "fail", 10.0, 1.0)
    for record in collector.taskdb.all():
        assert record.preemptions in (0, 1)
    assert report.preemptions == report.failed
