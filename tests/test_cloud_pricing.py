"""Price catalog tests, anchored on the paper's implied prices."""

import pytest

from repro.cloud.pricing import DEFAULT_PRICES, PriceCatalog
from repro.errors import CloudError


class TestPaperPrices:
    """The advice tables imply both HB SKUs bill at exactly $3.60/hour."""

    def test_hb_prices(self):
        catalog = PriceCatalog()
        assert catalog.hourly_price("Standard_HB120rs_v2") == 3.60
        assert catalog.hourly_price("Standard_HB120rs_v3") == 3.60

    @pytest.mark.parametrize(
        "nodes,time_s,expected",
        [
            (16, 36, 0.576),   # Listing 4 row 1
            (8, 69, 0.552),    # Listing 4 row 2
            (4, 132, 0.528),   # Listing 4 row 3
            (3, 173, 0.519),   # Listing 4 row 4
            (16, 34, 0.544),   # Listing 3 row 1
            (4, 48, 0.192),    # Listing 3 row 3
            (3, 59, 0.177),    # Listing 3 row 4
        ],
    )
    def test_listing_cost_rows(self, nodes, time_s, expected):
        catalog = PriceCatalog()
        cost = catalog.task_cost("Standard_HB120rs_v3", nodes, time_s)
        assert cost == pytest.approx(expected, abs=0.0005)

    def test_listing3_v2_row(self):
        # Listing 3 row 2: 8 nodes hb120rs_v2, 38 s -> $0.304.
        catalog = PriceCatalog()
        cost = catalog.task_cost("Standard_HB120rs_v2", 8, 38)
        assert cost == pytest.approx(0.304, abs=0.0005)


class TestCatalogBehaviour:
    def test_all_defaults_positive(self):
        assert all(p > 0 for p in DEFAULT_PRICES.values())

    def test_short_name_lookup(self):
        catalog = PriceCatalog()
        assert catalog.hourly_price("hb120rs_v3") == 3.60

    def test_unknown_sku_raises(self):
        with pytest.raises(CloudError, match="no price"):
            PriceCatalog().hourly_price("Standard_Mystery")

    def test_region_factor(self):
        catalog = PriceCatalog()
        base = catalog.hourly_price("Standard_HB120rs_v3", "southcentralus")
        eu = catalog.hourly_price("Standard_HB120rs_v3", "westeurope")
        assert eu > base

    def test_unknown_region_uses_base(self):
        catalog = PriceCatalog()
        assert catalog.hourly_price("Standard_HB120rs_v3", "mars") == 3.60

    def test_spot_discount(self):
        catalog = PriceCatalog()
        spot = catalog.hourly_price("Standard_HB120rs_v3", spot=True)
        assert spot == pytest.approx(3.60 * 0.30)

    def test_set_price(self):
        catalog = PriceCatalog()
        catalog.set_price("Standard_HB120rs_v3", 4.0)
        assert catalog.hourly_price("Standard_HB120rs_v3") == 4.0

    def test_set_negative_price_rejected(self):
        with pytest.raises(ValueError):
            PriceCatalog().set_price("Standard_HB120rs_v3", -1.0)

    def test_task_cost_validation(self):
        catalog = PriceCatalog()
        with pytest.raises(ValueError):
            catalog.task_cost("Standard_HB120rs_v3", -1, 10)
        with pytest.raises(ValueError):
            catalog.task_cost("Standard_HB120rs_v3", 1, -10)

    def test_task_cost_zero_time_is_free(self):
        assert PriceCatalog().task_cost("Standard_HB120rs_v3", 16, 0) == 0.0

    def test_cheapest(self):
        catalog = PriceCatalog()
        name, price = catalog.cheapest(
            ["Standard_HC44rs", "Standard_HB120rs_v3"]
        )
        assert name == "Standard_HC44rs"
        assert price == pytest.approx(3.168)

    def test_cheapest_empty_raises(self):
        with pytest.raises(CloudError):
            PriceCatalog().cheapest([])

    def test_from_mapping(self):
        catalog = PriceCatalog.from_mapping({"X": 1.0})
        assert catalog.hourly_price("X") == 1.0
