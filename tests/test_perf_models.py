"""Application-model behaviour tests (all six apps)."""

import pytest

from repro.cloud.skus import get_sku
from repro.errors import ConfigError
from repro.perf.registry import get_model, list_models, register_model

V3 = get_sku("Standard_HB120rs_v3")

#: Valid inputs per app for generic behaviour tests.
APP_INPUTS = {
    "lammps": {"BOXFACTOR": "10"},
    "openfoam": {"mesh": "40 16 16"},
    "wrf": {"resolution": "12"},
    "gromacs": {"atoms": "3000000"},
    "namd": {"atoms": "1060000"},
    "matrixmult": {"msize": "60000"},
}


class TestRegistry:
    def test_all_paper_apps_registered(self):
        """Paper Sec. V: WRF, OpenFOAM, GROMACS, LAMMPS, NAMD."""
        for name in ("wrf", "openfoam", "gromacs", "lammps", "namd"):
            assert name in list_models()

    def test_lookup_case_insensitive(self):
        assert get_model("LAMMPS").name == "lammps"

    def test_unknown_model(self):
        with pytest.raises(ConfigError, match="no performance model"):
            get_model("fortnite")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigError, match="already registered"):
            register_model("lammps", lambda noise: None)


@pytest.mark.parametrize("appname", sorted(APP_INPUTS))
class TestGenericModelProperties:
    """Invariants every application model must satisfy."""

    def test_simulation_succeeds(self, appname):
        result = get_model(appname).simulate(V3, 2, 120, APP_INPUTS[appname])
        assert result.succeeded
        assert result.exec_time_s > 0

    def test_more_nodes_not_slower_at_small_scale(self, appname):
        """From 1 to 2 nodes every modelled app must gain."""
        model = get_model(appname)
        t1 = model.simulate(V3, 1, 120, APP_INPUTS[appname]).exec_time_s
        t2 = model.simulate(V3, 2, 120, APP_INPUTS[appname]).exec_time_s
        assert t2 < t1

    def test_breakdown_sums_to_total(self, appname):
        result = get_model(appname).simulate(V3, 4, 120, APP_INPUTS[appname])
        b = result.breakdown
        reconstructed = (b["compute_s"] + b["comm_s"] + b["serial_s"]) \
            * b["noise_factor"]
        assert reconstructed == pytest.approx(result.exec_time_s, rel=1e-9)

    def test_metrics_in_bounds(self, appname):
        result = get_model(appname).simulate(V3, 4, 120, APP_INPUTS[appname])
        metrics = result.metrics.to_dict()
        assert all(0.0 <= v <= 1.0 for v in metrics.values())

    def test_app_vars_are_strings(self, appname):
        result = get_model(appname).simulate(V3, 2, 120, APP_INPUTS[appname])
        assert all(isinstance(v, str) for v in result.app_vars.values())

    def test_missing_inputs_raise_config_error(self, appname):
        with pytest.raises(ConfigError):
            get_model(appname).validate_inputs({})

    def test_fewer_ranks_per_node_not_faster(self, appname):
        model = get_model(appname)
        full = model.simulate(V3, 2, 120, APP_INPUTS[appname]).exec_time_s
        quarter = model.simulate(V3, 2, 30, APP_INPUTS[appname]).exec_time_s
        assert quarter >= full * 0.999


class TestInputValidation:
    def test_lammps_bad_boxfactor(self):
        with pytest.raises(ConfigError, match="invalid BOXFACTOR"):
            get_model("lammps").validate_inputs({"BOXFACTOR": "abc"})

    def test_lammps_negative_boxfactor(self):
        with pytest.raises(ConfigError, match="positive"):
            get_model("lammps").validate_inputs({"BOXFACTOR": "-3"})

    def test_openfoam_mesh_shape(self):
        with pytest.raises(ConfigError, match="three integers"):
            get_model("openfoam").validate_inputs({"mesh": "40 16"})

    def test_openfoam_mesh_nonint(self):
        with pytest.raises(ConfigError, match="non-integer"):
            get_model("openfoam").validate_inputs({"mesh": "a b c"})

    def test_wrf_resolution(self):
        params = get_model("wrf").validate_inputs({"resolution": "12"})
        assert params["points"] > 0
        assert params["steps"] > 0

    def test_wrf_finer_resolution_more_work(self):
        model = get_model("wrf")
        coarse = model.validate_inputs({"resolution": "12"})
        fine = model.validate_inputs({"resolution": "3"})
        # 4x finer: 16x the points and 4x the steps.
        assert fine["points"] == pytest.approx(16 * coarse["points"])
        assert fine["steps"] == pytest.approx(4 * coarse["steps"])

    def test_gromacs_atoms(self):
        with pytest.raises(ConfigError):
            get_model("gromacs").validate_inputs({"atoms": "zero"})

    def test_matrixmult_size(self):
        with pytest.raises(ConfigError):
            get_model("matrixmult").validate_inputs({"msize": "0.5"})


class TestOutOfMemory:
    def test_oom_reported_not_raised(self):
        result = get_model("lammps").simulate(V3, 1, 120, {"BOXFACTOR": "60"})
        assert not result.succeeded
        assert "out of memory" in result.failure_reason
        assert result.metrics.mem_used_fraction == 1.0

    def test_same_problem_fits_on_more_nodes(self):
        result = get_model("lammps").simulate(V3, 16, 120, {"BOXFACTOR": "60"})
        assert result.succeeded


class TestAppSpecificMetrics:
    def test_lammps_emits_listing2_vars(self):
        result = get_model("lammps").simulate(V3, 2, 120, {"BOXFACTOR": "10"})
        assert result.app_vars["LAMMPSATOMS"] == str(32000 * 1000)
        assert result.app_vars["LAMMPSSTEPS"] == "100"

    def test_gromacs_ns_per_day(self):
        result = get_model("gromacs").simulate(V3, 2, 120,
                                               {"atoms": "3000000"})
        assert float(result.app_vars["GMXNSPERDAY"]) > 0

    def test_matrixmult_gflops(self):
        result = get_model("matrixmult").simulate(V3, 2, 120,
                                                  {"msize": "40000"})
        assert float(result.app_vars["MMGFLOPS"]) > 0

    def test_namd_days_per_ns(self):
        result = get_model("namd").simulate(V3, 2, 120, {"atoms": "1060000"})
        assert float(result.app_vars["NAMDDAYSPERNS"]) > 0

    def test_gromacs_pme_limits_scaling_vs_lammps(self):
        """PME all-to-all should flatten GROMACS scaling earlier."""
        gmx = get_model("gromacs")
        lj = get_model("lammps")
        gmx_speedup = (
            gmx.simulate(V3, 1, 120, {"atoms": "3000000"}).exec_time_s
            / gmx.simulate(V3, 16, 120, {"atoms": "3000000"}).exec_time_s
        )
        lj_speedup = (
            lj.simulate(V3, 1, 120, {"BOXFACTOR": "30"}).exec_time_s
            / lj.simulate(V3, 16, 120, {"BOXFACTOR": "30"}).exec_time_s
        )
        assert gmx_speedup < lj_speedup
