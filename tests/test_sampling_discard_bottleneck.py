"""Aggressive-discard and bottleneck-analysis tests."""

import pytest

from repro.cluster.metrics import InfraMetrics
from repro.errors import SamplingError
from repro.sampling.bottleneck import BottleneckAnalyzer
from repro.sampling.discard import DiscardPolicy, VmTypeDiscarder
from repro.sampling.perffactor import ScalingLaw


def law(a=1000.0, b=50.0, c=0.0):
    return ScalingLaw(a=a, b=b, c=c, r_squared=1.0, n_points=4,
                      n_min=1, n_max=16)


class TestDiscardPolicy:
    def test_validation(self):
        with pytest.raises(SamplingError):
            DiscardPolicy(min_observations=0)
        with pytest.raises(SamplingError):
            DiscardPolicy(margin=0.9)


class TestVmTypeDiscarder:
    def make(self, margin=1.15):
        discarder = VmTypeDiscarder(
            policy=DiscardPolicy(min_observations=3, margin=margin),
            hourly_prices={"slow": 3.60, "fast": 3.60},
        )
        # Strong front from the fast SKU.
        discarder.observe("fast", 4, 50.0, 0.2)
        discarder.observe("fast", 8, 26.0, 0.21)
        discarder.observe("fast", 16, 14.0, 0.224)
        return discarder

    def test_discards_clearly_dominated_vmtype(self):
        discarder = self.make()
        for n, t in [(4, 800), (8, 420), (16, 230)]:
            discarder.observe("slow", n, t, n * 3.6 * t / 3600)
        slow_law = law(a=3000, b=40)
        assert discarder.evaluate("slow", slow_law, [2, 32])
        assert discarder.is_discarded("slow")
        assert "dominated" in discarder.discard_reason("slow")

    def test_never_discards_without_enough_observations(self):
        discarder = self.make()
        discarder.observe("slow", 4, 800, 2.0)
        assert not discarder.evaluate("slow", law(a=3000), [2, 32])

    def test_never_discards_without_law(self):
        discarder = self.make()
        for n, t in [(4, 800), (8, 420), (16, 230)]:
            discarder.observe("slow", n, t, 2.0)
        assert not discarder.evaluate("slow", None, [2, 32])

    def test_keeps_vmtype_with_competitive_projection(self):
        discarder = self.make()
        for n, t in [(4, 60), (8, 32), (16, 18)]:
            discarder.observe("slow", n, t, n * 3.6 * t / 3600)
        competitive = law(a=220, b=2)
        assert not discarder.evaluate("slow", competitive, [2, 32])

    def test_larger_margin_is_more_conservative(self):
        borderline = law(a=900, b=30)

        def run(margin):
            discarder = self.make(margin=margin)
            for n, t in [(4, 255), (8, 142), (16, 86)]:
                discarder.observe("slow", n, t, n * 3.6 * t / 3600)
            return discarder.evaluate("slow", borderline, [2, 32])

        aggressive = run(1.0)
        conservative = run(3.0)
        assert aggressive or not conservative  # monotone in margin
        if aggressive:
            assert not conservative or conservative == aggressive

    def test_front_spans_all_vmtypes(self):
        discarder = self.make()
        front = discarder.current_front()
        assert front
        assert all(len(p) == 2 for p in front)


class TestBottleneckAnalyzer:
    def test_report_aggregates(self):
        analyzer = BottleneckAnalyzer()
        analyzer.observe("v3", 16, InfraMetrics(cpu_util=0.1, net_util=0.1,
                                                comm_fraction=0.8))
        report = analyzer.report("v3", 16)
        assert report.dominant == "network_latency"
        assert report.scaling_saturated

    def test_no_data_no_report(self):
        assert BottleneckAnalyzer().report("x", 1) is None

    def test_saturation_detection_and_pruning(self):
        analyzer = BottleneckAnalyzer()
        analyzer.observe("v3", 4, InfraMetrics(cpu_util=0.8,
                                               comm_fraction=0.1))
        analyzer.observe("v3", 8, InfraMetrics(cpu_util=0.2, net_util=0.1,
                                               comm_fraction=0.7))
        assert analyzer.saturation_node_count("v3") == 8
        assert analyzer.should_skip_larger("v3", 16)
        assert not analyzer.should_skip_larger("v3", 8)
        assert not analyzer.should_skip_larger("v3", 4)

    def test_no_saturation_no_pruning(self):
        analyzer = BottleneckAnalyzer()
        analyzer.observe("v3", 16, InfraMetrics(cpu_util=0.9,
                                                comm_fraction=0.1))
        assert analyzer.saturation_node_count("v3") is None
        assert not analyzer.should_skip_larger("v3", 32)

    def test_observe_dict_ignores_empty(self):
        analyzer = BottleneckAnalyzer()
        analyzer.observe_dict("v3", 4, {})
        assert analyzer.reports() == []

    def test_summary_renders(self):
        analyzer = BottleneckAnalyzer()
        analyzer.observe("v3", 4, InfraMetrics(mem_bw_util=0.9,
                                               comm_fraction=0.2))
        text = analyzer.summary()
        assert "memory_bandwidth" in text
