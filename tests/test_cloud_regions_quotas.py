"""Region and quota tests."""

import pytest

from repro.cloud.quotas import QuotaLedger
from repro.cloud.regions import DEFAULT_REGIONS, get_region, regions_with_sku
from repro.cloud.skus import get_sku
from repro.cloud.subscription import Subscription
from repro.errors import CloudError, QuotaExceeded, SkuNotAvailable


class TestRegions:
    def test_paper_region_exists(self):
        region = get_region("southcentralus")
        assert region.display_name == "South Central US"

    def test_lookup_case_insensitive(self):
        assert get_region("SouthCentralUS").name == "southcentralus"

    def test_unknown_region(self):
        with pytest.raises(CloudError):
            get_region("atlantis")

    def test_paper_skus_available_in_paper_region(self):
        region = get_region("southcentralus")
        for sku in ("Standard_HC44rs", "Standard_HB120rs_v2",
                    "Standard_HB120rs_v3"):
            assert region.supports_sku(sku)

    def test_region_without_sku_rejects(self):
        region = get_region("japaneast")
        with pytest.raises(SkuNotAvailable):
            region.require_sku("Standard_HB120rs_v3")

    def test_regions_with_sku(self):
        regions = regions_with_sku("Standard_HB120rs_v3")
        names = {r.name for r in regions}
        assert "southcentralus" in names
        assert "japaneast" not in names

    def test_every_region_offers_something(self):
        for region in DEFAULT_REGIONS.values():
            assert region.available_skus


class TestQuotaLedger:
    def test_default_limit(self):
        ledger = QuotaLedger()
        assert ledger.limit_for("southcentralus", "standardHBrsv3Family") == 4000

    def test_low_default_families(self):
        ledger = QuotaLedger()
        assert ledger.limit_for("southcentralus", "standardHXFamily") == 352

    def test_allocate_within_quota(self):
        ledger = QuotaLedger()
        sku = get_sku("Standard_HB120rs_v3")
        ledger.allocate("southcentralus", sku, 16)
        assert ledger.used_for("southcentralus", sku.family) == 1920

    def test_allocate_over_quota_raises(self):
        ledger = QuotaLedger()
        sku = get_sku("Standard_HB120rs_v3")
        with pytest.raises(QuotaExceeded) as err:
            ledger.allocate("southcentralus", sku, 40)  # 4800 > 4000
        assert err.value.family == sku.family
        assert err.value.requested == 4800

    def test_release_restores_quota(self):
        ledger = QuotaLedger()
        sku = get_sku("Standard_HB120rs_v3")
        ledger.allocate("southcentralus", sku, 16)
        ledger.release("southcentralus", sku, 16)
        assert ledger.available("southcentralus", sku.family) == 4000

    def test_release_never_negative(self):
        ledger = QuotaLedger()
        sku = get_sku("Standard_HB120rs_v3")
        ledger.release("southcentralus", sku, 5)
        assert ledger.used_for("southcentralus", sku.family) == 0

    def test_quota_per_region(self):
        ledger = QuotaLedger()
        sku = get_sku("Standard_HB120rs_v3")
        ledger.allocate("southcentralus", sku, 33)
        # Full quota still available in another region.
        ledger.allocate("eastus", sku, 33)

    def test_set_limit(self):
        ledger = QuotaLedger()
        sku = get_sku("Standard_HB120rs_v3")
        ledger.set_limit("southcentralus", sku.family, 120)
        ledger.allocate("southcentralus", sku, 1)
        with pytest.raises(QuotaExceeded):
            ledger.allocate("southcentralus", sku, 1)

    def test_negative_inputs_rejected(self):
        ledger = QuotaLedger()
        sku = get_sku("Standard_HB120rs_v3")
        with pytest.raises(ValueError):
            ledger.allocate("southcentralus", sku, -1)
        with pytest.raises(ValueError):
            ledger.set_limit("southcentralus", sku.family, -5)


class TestSubscription:
    def test_quota_enforcement_via_subscription(self):
        sub = Subscription(name="test")
        sku = get_sku("Standard_HB120rs_v3")
        sub.allocate_cores("southcentralus", sku, 16)
        assert sub.cores_available("southcentralus", sku.family) == 4000 - 1920

    def test_roundtrip_dict(self):
        sub = Subscription(name="test", tags={"team": "hpc"})
        restored = Subscription.from_dict(sub.to_dict())
        assert restored.name == "test"
        assert restored.subscription_id == sub.subscription_id
        assert restored.tags == {"team": "hpc"}
