"""Fleet acceptance: real processes, a real ``kill -9``, no stale jobs.

Spawns ``fleet serve --workers 2`` as a subprocess (short leases, an
artificial per-scenario delay so jobs stay in flight long enough to
murder their worker), submits concurrent collect jobs over the wire,
SIGKILLs the worker process that holds a running lease, and asserts
that every job still completes — re-claimed by the survivor or the
supervisor's replacement — with nothing parked ``stale`` and nothing
duplicated.
"""

import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.client import RemoteSession
from repro.errors import RemoteError
from tests.conftest import make_config

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_DIR = os.path.join(REPO_ROOT, "src")

#: Jobs must outlive a lease so a SIGKILL mid-job forces a re-claim.
LEASE_S = 1.0
SCENARIO_DELAY_S = 0.4


class FleetProcess:
    """`fleet serve` as a subprocess, with its stdout drained."""

    def __init__(self, state_dir: str, workers: int = 2,
                 job_workers: int = 2):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        env["REPRO_FLEET_LEASE_S"] = str(LEASE_S)
        env["REPRO_FLEET_SCENARIO_DELAY_S"] = str(SCENARIO_DELAY_S)
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli.main",
             "--state-dir", state_dir,
             "fleet", "serve", "--port", "0",
             "--workers", str(workers),
             "--job-workers", str(job_workers)],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env, cwd=REPO_ROOT,
        )
        self.lines = []
        self.url = self._await_ready()
        self._drain = threading.Thread(target=self._pump, daemon=True)
        self._drain.start()

    def _await_ready(self) -> str:
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                break
            self.lines.append(line.rstrip())
            if line.startswith("FLEET READY"):
                fields = dict(part.split("=", 1)
                              for part in line.split()[2:])
                return f"http://127.0.0.1:{fields['port']}"
        raise AssertionError(
            "fleet never became ready:\n" + "\n".join(self.lines))

    def _pump(self) -> None:
        for line in self.proc.stdout:
            self.lines.append(line.rstrip())

    def stop(self) -> None:
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
            try:
                self.proc.wait(timeout=15)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(timeout=15)


@pytest.fixture
def fleet(tmp_path):
    process = FleetProcess(str(tmp_path / "state"))
    yield process
    process.stop()


def _call(fn, *args, timeout=30.0, **kwargs):
    """Retry a remote call across worker-death connection blips."""
    deadline = time.monotonic() + timeout
    while True:
        try:
            return fn(*args, **kwargs)
        except RemoteError:
            if time.monotonic() > deadline:
                raise
            time.sleep(0.1)


def _live_workers(remote):
    health = _call(remote.health)
    return health.get("fleet", {}).get("workers", [])


def _wait_for_workers(remote, count, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        workers = _live_workers(remote)
        if len(workers) >= count:
            return workers
        time.sleep(0.1)
    raise AssertionError(f"never saw {count} live fleet workers")


def test_kill_dash_nine_worker_jobs_still_complete(fleet):
    remote = RemoteSession(fleet.url, timeout=30, retries=5, backoff_s=0.1)
    _wait_for_workers(remote, 2)

    # Four sweeps with enough scenarios (4 nnodes x 2 inputs, slowed per
    # scenario) that jobs are guaranteed to still be running at kill time.
    infos = [
        _call(remote.deploy, make_config(
            rgprefix=f"fleet{chr(ord('a') + i)}rg",
            nnodes=[1, 2, 4, 8],
            appinputs={"BOXFACTOR": ["1", "2"]},
        ).to_dict())
        for i in range(4)
    ]
    jobs = [_call(remote.collect, deployment=info.name) for info in infos]
    job_ids = [job.id for job in jobs]

    # Find a job mid-run and SIGKILL the worker process that owns it.
    victim_pid = None
    deadline = time.monotonic() + 60
    while victim_pid is None and time.monotonic() < deadline:
        for job_id in job_ids:
            record = _call(remote.job, job_id)
            if record.state == "running" and record.worker_id:
                victim_pid = int(record.worker_id.rsplit("-", 1)[1])
                break
        else:
            time.sleep(0.05)
    assert victim_pid is not None, "no job ever reached running"
    assert victim_pid != fleet.proc.pid  # a worker, never the supervisor
    os.kill(victim_pid, signal.SIGKILL)

    # Every job still completes: the survivor (or the supervisor's
    # replacement worker) re-claims the orphaned lease.
    finals = {}
    deadline = time.monotonic() + 180
    while len(finals) < len(job_ids):
        assert time.monotonic() < deadline, (
            f"jobs stuck: {sorted(set(job_ids) - set(finals))}\n"
            + "\n".join(fleet.lines))
        for job_id in job_ids:
            if job_id in finals:
                continue
            record = _call(remote.job, job_id)
            if record.finished:
                finals[job_id] = record
        time.sleep(0.1)

    assert {r.state for r in finals.values()} == {"done"}, \
        {j: (r.state, r.error) for j, r in finals.items()}
    # No duplicate or stale records snuck in around the re-claim.
    listed = _call(remote.jobs)
    assert sorted(r.id for r in listed) == sorted(job_ids)
    counts = _call(remote.health)["jobs"]
    assert counts["done"] == 4
    assert counts.get("stale", 0) == 0

    # The data survived the murder: advice works for every deployment.
    for info in infos:
        advice = _call(remote.advise, deployment=info.name)
        assert advice.deployment == info.name
        assert advice.rows

    # The supervisor replaced the corpse: two live workers again, and
    # the dead pid is no longer one of them.
    workers = _wait_for_workers(remote, 2, timeout=60)
    assert victim_pid not in {w["pid"] for w in workers}
    assert any("restarting" in line for line in fleet.lines)
