"""Cross-module integration tests beyond the paper artefacts."""

import pytest

from repro.appkit.plugins import get_plugin
from repro.backends.azurebatch import AzureBatchBackend
from repro.backends.slurm import SlurmBackend
from repro.core.advisor import Advisor
from repro.core.collector import DataCollector
from repro.core.dataset import Dataset
from repro.core.deployer import Deployer
from repro.core.scenarios import generate_scenarios
from repro.core.taskdb import TaskDB
from repro.slurmsim.cluster import SlurmCluster
from tests.conftest import make_config


def collect(config, backend_kind="azurebatch", **collector_kwargs):
    deployment = Deployer().deploy(config)
    if backend_kind == "azurebatch":
        backend = AzureBatchBackend(service=deployment.batch)
    else:
        cluster = SlurmCluster(
            provider=deployment.provider,
            subscription=deployment.provider.get_subscription(
                config.subscription
            ),
            region=config.region,
        )
        backend = SlurmBackend(cluster=cluster)
    collector = DataCollector(
        backend=backend,
        script=get_plugin(config.appname),
        dataset=Dataset(),
        taskdb=TaskDB(),
        **collector_kwargs,
    )
    report = collector.collect(generate_scenarios(config))
    return report, collector.dataset, deployment


class TestMultiInputSweeps:
    def test_two_meshes_two_fronts(self):
        """Listing 1 sweeps two meshes; advice must be filterable per mesh."""
        config = make_config(
            appname="openfoam",
            nnodes=[2, 4],
            appinputs={"mesh": ["40 16 16", "20 8 8"]},
        )
        report, dataset, _ = collect(config)
        assert report.completed == 4
        big = Advisor(dataset).advise(appinputs={"mesh": "40 16 16"})
        small = Advisor(dataset).advise(appinputs={"mesh": "20 8 8"})
        # The smaller mesh runs strictly faster at equal shape.
        assert min(r.exec_time_s for r in small) < min(
            r.exec_time_s for r in big
        )

    def test_bigger_input_costs_more(self):
        config = make_config(
            nnodes=[2], appinputs={"BOXFACTOR": ["5", "10"]}
        )
        _, dataset, _ = collect(config)
        by_bf = {p.appinputs["BOXFACTOR"]: p for p in dataset}
        assert by_bf["10"].exec_time_s > by_bf["5"].exec_time_s
        assert by_bf["10"].cost_usd > by_bf["5"].cost_usd


class TestBackendEquivalence:
    def test_same_dataset_on_both_backends(self):
        config = make_config(nnodes=[1, 2])
        _, batch_data, _ = collect(config, "azurebatch")
        _, slurm_data, _ = collect(config, "slurm")
        batch_points = {(p.sku, p.nnodes): p.exec_time_s for p in batch_data}
        slurm_points = {(p.sku, p.nnodes): p.exec_time_s for p in slurm_data}
        assert batch_points.keys() == slurm_points.keys()
        for key in batch_points:
            assert batch_points[key] == pytest.approx(slurm_points[key])


class TestPprBehaviour:
    def test_half_ppr_slower_for_cpu_bound_app(self):
        full, full_data, _ = collect(make_config(nnodes=[2], ppr=100))
        half, half_data, _ = collect(make_config(nnodes=[2], ppr=50))
        assert half_data.points()[0].ppn == 60
        assert half_data.points()[0].exec_time_s > \
            full_data.points()[0].exec_time_s


class TestQuotaFailures:
    def test_quota_exhaustion_fails_scenarios_gracefully(self):
        config = make_config(nnodes=[2, 40])  # 40*120 = 4800 > 4000 quota
        deployment = Deployer().deploy(config)
        collector = DataCollector(
            backend=AzureBatchBackend(service=deployment.batch),
            script=get_plugin("lammps"),
            dataset=Dataset(),
            taskdb=TaskDB(),
        )
        from repro.errors import QuotaExceeded

        with pytest.raises(QuotaExceeded):
            collector.collect(generate_scenarios(config))


class TestCostAccounting:
    def test_infra_cost_includes_boot_overhead(self):
        report, _, _ = collect(make_config(nnodes=[1, 2]))
        assert report.infrastructure_cost_usd > report.task_cost_usd
        assert report.provisioning_overhead_s > 0

    def test_deployment_teardown_after_collection(self):
        config = make_config(nnodes=[1])
        report, _, deployment = collect(config)
        deployer = Deployer(provider=deployment.provider)
        deployer.shutdown(deployment)
        assert deployment.batch.list_pools() == []


class TestNoiseIntegration:
    def test_noise_changes_times_but_is_reproducible(self):
        from repro.perf.noise import NoiseModel

        config = make_config(nnodes=[2])

        def run(seed):
            deployment = Deployer().deploy(config)
            collector = DataCollector(
                backend=AzureBatchBackend(
                    service=deployment.batch,
                    noise=NoiseModel(sigma=0.05, seed=seed),
                ),
                script=get_plugin("lammps"),
                dataset=Dataset(),
                taskdb=TaskDB(),
            )
            collector.collect(generate_scenarios(config))
            return collector.dataset.points()[0].exec_time_s

        assert run(seed=1) == run(seed=1)
        assert run(seed=1) != run(seed=2)
