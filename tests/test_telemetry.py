"""Unit coverage for ``repro.telemetry``: spans, trace files, metrics,
and the sweep profiler."""

import json
import os
import threading

import pytest

from repro import telemetry
from repro.telemetry import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    SpanContext,
    SweepProfiler,
)
from repro.telemetry.metrics import OVERFLOW_VALUE


# -- trace context / traceparent ----------------------------------------------


def test_traceparent_roundtrip():
    ctx = SpanContext(trace_id="ab" * 16, spanid="cd" * 8)
    header = telemetry.format_traceparent(ctx)
    assert header == f"00-{'ab' * 16}-{'cd' * 8}-01"
    assert telemetry.parse_traceparent(header) == ctx


@pytest.mark.parametrize("bad", [
    None,
    "",
    "not-a-traceparent",
    "00-xyz-abc-01",
    "00-" + "a" * 31 + "-" + "b" * 16 + "-01",   # short trace id
    "00-" + "0" * 32 + "-" + "b" * 16 + "-01",   # all-zero trace id
    "00-" + "a" * 32 + "-" + "0" * 16 + "-01",   # all-zero span id
])
def test_parse_traceparent_rejects_invalid(bad):
    assert telemetry.parse_traceparent(bad) is None


def test_parse_traceparent_normalizes_case_and_whitespace():
    ctx = telemetry.parse_traceparent(
        "  00-" + "AB" * 16 + "-" + "CD" * 8 + "-01  ")
    assert ctx == SpanContext(trace_id="ab" * 16, spanid="cd" * 8)


def test_current_traceparent_tracks_activation():
    assert telemetry.current_traceparent() == ""
    ctx = SpanContext(trace_id="1" * 32, spanid="2" * 16)
    token = telemetry.activate(ctx)
    try:
        assert telemetry.current() == ctx
        assert telemetry.current_traceparent() == \
            telemetry.format_traceparent(ctx)
    finally:
        telemetry.deactivate(token)
    assert telemetry.current() is None


# -- span emission ------------------------------------------------------------


def _events(path):
    return telemetry.read_events(path)


def test_nested_spans_share_trace_and_link_parent(tmp_path):
    sink = str(tmp_path / "traces-t.jsonl")
    token = telemetry.set_sink(sink)
    try:
        with telemetry.span("outer", kind="root") as outer:
            with telemetry.span("inner") as inner:
                assert inner.context.trace_id == outer.context.trace_id
                assert inner.context.spanid != outer.context.spanid
    finally:
        telemetry.reset_sink(token)

    events = _events(sink)
    assert [e["name"] for e in events] == ["inner", "outer"]  # exit order
    by_name = {e["name"]: e for e in events}
    assert by_name["inner"]["trace"] == by_name["outer"]["trace"]
    assert by_name["inner"]["parent"] == by_name["outer"]["span"]
    assert by_name["outer"]["parent"] == ""
    assert by_name["outer"]["attrs"] == {"kind": "root"}
    assert by_name["outer"]["dur_s"] >= 0.0


def test_span_under_activated_context_adopts_trace(tmp_path):
    sink = str(tmp_path / "traces-t.jsonl")
    remote = SpanContext(trace_id="f" * 32, spanid="e" * 16)
    ctx_token = telemetry.activate(remote)
    sink_token = telemetry.set_sink(sink)
    try:
        with telemetry.span("adopted"):
            pass
    finally:
        telemetry.reset_sink(sink_token)
        telemetry.deactivate(ctx_token)
    (event,) = _events(sink)
    assert event["trace"] == remote.trace_id
    assert event["parent"] == remote.spanid


def test_span_error_status_and_propagation(tmp_path):
    sink = str(tmp_path / "traces-t.jsonl")
    token = telemetry.set_sink(sink)
    try:
        with pytest.raises(ValueError):
            with telemetry.span("boom"):
                raise ValueError("nope")
    finally:
        telemetry.reset_sink(token)
    (event,) = _events(sink)
    assert event["status"] == "error"
    assert event["error"] == "ValueError"


def test_span_without_sink_writes_nothing_but_still_nests(tmp_path):
    assert telemetry.current_sink() is None
    with telemetry.span("quiet") as outer:
        with telemetry.span("child") as inner:
            assert inner.context.trace_id == outer.context.trace_id
    assert list(tmp_path.iterdir()) == []


def test_emit_event_synthetic_child(tmp_path):
    sink = str(tmp_path / "traces-t.jsonl")
    token = telemetry.set_sink(sink)
    try:
        with telemetry.span("sweep") as parent:
            telemetry.emit_event("stage.scenario", 1.25, engine="batched")
    finally:
        telemetry.reset_sink(token)
    events = {e["name"]: e for e in _events(sink)}
    stage = events["stage.scenario"]
    assert stage["parent"] == parent.context.spanid
    assert stage["trace"] == parent.context.trace_id
    assert stage["dur_s"] == 1.25
    assert stage["attrs"] == {"engine": "batched"}


def test_emit_event_without_sink_is_noop(tmp_path):
    telemetry.emit_event("stage.persist", 0.5)
    assert list(tmp_path.iterdir()) == []


def test_span_attrs_coerced_to_json_plain(tmp_path):
    sink = str(tmp_path / "traces-t.jsonl")
    token = telemetry.set_sink(sink)
    try:
        with telemetry.span("attrs", obj=object(), n=3, flag=True) as s:
            s.set("late", "value")
    finally:
        telemetry.reset_sink(token)
    (event,) = _events(sink)
    assert event["attrs"]["n"] == 3
    assert event["attrs"]["flag"] is True
    assert event["attrs"]["late"] == "value"
    assert isinstance(event["attrs"]["obj"], str)


# -- trace ring files ---------------------------------------------------------


def test_trace_path_layout(tmp_path):
    path = telemetry.trace_path(str(tmp_path), "mydep")
    assert path == str(tmp_path / "traces-mydep.jsonl")


def test_read_events_skips_torn_and_foreign_lines(tmp_path):
    path = str(tmp_path / "traces-x.jsonl")
    telemetry.append_event(path, {"trace": "t1", "span": "a", "name": "ok"})
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"trace": "t1", "span": "b", "na')   # torn write
        fh.write("\n")
        fh.write("not json at all\n")
        fh.write('{"no_trace_key": 1}\n')
    telemetry.append_event(path, {"trace": "t1", "span": "c", "name": "ok2"})
    events = telemetry.read_events(path)
    assert [e["span"] for e in events] == ["a", "c"]


def test_ring_rotation_keeps_two_generations(tmp_path):
    path = str(tmp_path / "traces-ring.jsonl")
    # Force rotation on nearly every append.
    for i in range(10):
        telemetry.append_event(
            path, {"trace": "t", "span": f"s{i}", "name": "e"},
            max_bytes=100)
    assert os.path.exists(path + ".1")
    events = telemetry.read_events(path)
    spans = [e["span"] for e in events]
    # Oldest-first across generations, most recent event always present.
    assert spans == sorted(spans, key=lambda s: int(s[1:]))
    assert spans[-1] == "s9"
    # Disk use stays bounded at ~2x the cap.
    total = os.path.getsize(path) + os.path.getsize(path + ".1")
    assert total < 4 * 100


def test_group_and_latest_trace():
    events = [
        {"trace": "old", "span": "a", "name": "x", "ts": 100.0},
        {"trace": "new", "span": "b", "name": "y", "ts": 200.0},
        {"trace": "old", "span": "c", "name": "z", "ts": 101.0},
    ]
    groups = telemetry.group_traces(events)
    assert set(groups) == {"old", "new"}
    assert [e["span"] for e in groups["old"]] == ["a", "c"]
    trace_id, latest = telemetry.latest_trace(events)
    assert trace_id == "new"
    assert [e["span"] for e in latest] == ["b"]
    assert telemetry.latest_trace([]) is None


def test_render_tree_structure_and_orphans():
    events = [
        {"trace": "t", "span": "root", "parent": "", "name": "http.request",
         "ts": 1.0, "dur_s": 0.5, "pid": 1},
        {"trace": "t", "span": "kid1", "parent": "root", "name": "collect",
         "ts": 1.1, "dur_s": 0.3, "pid": 1, "attrs": {"engine": "batched"}},
        {"trace": "t", "span": "kid2", "parent": "root", "name": "persist",
         "ts": 1.2, "dur_s": 0.1, "pid": 2},
        # Parent line lost: must surface as an extra root, not vanish.
        {"trace": "t", "span": "lost", "parent": "gone", "name": "orphan",
         "ts": 1.3, "dur_s": 0.05, "pid": 3},
    ]
    tree = telemetry.render_tree(events)
    assert "trace t" in tree
    assert "4 span(s)" in tree
    assert "http.request" in tree
    assert "engine=batched" in tree
    assert "orphan" in tree
    # kid1 is indented under root; orphan is a top-level entry.
    lines = tree.splitlines()
    (kid1_line,) = [l for l in lines if "collect" in l]
    (orphan_line,) = [l for l in lines if "orphan" in l]
    assert kid1_line.startswith(("│  ", "   "))
    assert orphan_line.startswith(("└─ ", "├─ "))
    assert telemetry.render_tree([]) == "(no spans)"


def test_concurrent_appends_never_tear(tmp_path):
    path = str(tmp_path / "traces-mt.jsonl")

    def writer(tag):
        for i in range(50):
            telemetry.append_event(
                path, {"trace": "t", "span": f"{tag}-{i}", "name": "e"})

    threads = [threading.Thread(target=writer, args=(t,)) for t in "abcd"]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    events = telemetry.read_events(path)
    assert len(events) == 200
    # Every line parsed cleanly (read_events would silently drop torn
    # ones, so re-check raw line count too).
    with open(path, encoding="utf-8") as fh:
        assert sum(1 for _ in fh) == 200


# -- metrics registry ---------------------------------------------------------


def test_counter_and_gauge_render():
    reg = MetricsRegistry()
    counter = reg.counter("jobs_total", "Jobs.")
    counter.inc(state="done")
    counter.inc(state="done")
    counter.inc(state="failed")
    gauge = reg.gauge("queue_depth")
    gauge.set(7)
    text = "\n".join(reg.render())
    assert "# HELP jobs_total Jobs." in text
    assert "# TYPE jobs_total counter" in text
    assert 'jobs_total{state="done"} 2' in text
    assert 'jobs_total{state="failed"} 1' in text
    assert "# TYPE queue_depth gauge" in text
    assert "queue_depth 7" in text


def test_gauge_set_max_keeps_high_water():
    reg = MetricsRegistry()
    gauge = reg.gauge("latency_max")
    gauge.set_max(0.5)
    gauge.set_max(0.2)
    assert gauge.labels().value == 0.5
    gauge.set_max(0.9)
    assert gauge.labels().value == 0.9


def test_histogram_buckets_cumulative_and_sum_count():
    reg = MetricsRegistry()
    hist = reg.histogram("op_seconds", buckets=(0.01, 0.1, 1.0))
    series = hist.labels(op="query")
    series.observe(0.005)   # <= 0.01
    series.observe(0.05)    # <= 0.1
    series.observe(0.05)
    series.observe(5.0)     # only +Inf
    text = "\n".join(reg.render())
    assert "# TYPE op_seconds histogram" in text
    assert 'op_seconds_bucket{op="query",le="0.01"} 1' in text
    assert 'op_seconds_bucket{op="query",le="0.1"} 3' in text
    assert 'op_seconds_bucket{op="query",le="1"} 3' in text
    assert 'op_seconds_bucket{op="query",le="+Inf"} 4' in text
    assert 'op_seconds_count{op="query"} 4' in text
    assert 'op_seconds_sum{op="query"} 5.105' in text


def test_histogram_default_buckets_span_latency_range():
    assert DEFAULT_LATENCY_BUCKETS[0] <= 0.0001
    assert DEFAULT_LATENCY_BUCKETS[-1] >= 10.0
    assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)


def test_kind_mismatch_raises():
    reg = MetricsRegistry()
    reg.counter("thing_total")
    with pytest.raises(ValueError):
        reg.gauge("thing_total")


def test_label_values_escaped_in_exposition():
    """Regression: quotes, backslashes, and newlines in label values
    must render as escaped — parseable — exposition lines."""
    reg = MetricsRegistry()
    counter = reg.counter("weird_total")
    counter.inc(route='/v1/jobs/"quoted"', worker="host\\name\nline2")
    (line,) = [l for l in reg.render() if not l.startswith("#")]
    assert line == (
        'weird_total{route="/v1/jobs/\\"quoted\\"",'
        'worker="host\\\\name\\nline2"} 1'
    )
    # The escaping helper round-trips through the format rules.
    assert telemetry.escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'


def test_format_series_helper():
    assert telemetry.format_series("m") == "m"
    assert telemetry.format_series("m", b="2", a="1") == 'm{a="1",b="2"}'


def test_bounded_cardinality_folds_overflow_to_other():
    reg = MetricsRegistry(max_series=3)
    counter = reg.counter("spray_total")
    for i in range(10):
        counter.inc(route=f"/unique/{i}")
    text = "\n".join(reg.render())
    # Three real series plus the fold-in; total mass preserved.
    series_lines = [l for l in text.splitlines() if not l.startswith("#")]
    assert len(series_lines) == 4
    assert f'spray_total{{route="{OVERFLOW_VALUE}"}} 7' in text
    assert 'spray_total{route="/unique/0"} 1' in text


def test_registry_render_is_name_sorted():
    reg = MetricsRegistry()
    reg.counter("zzz_total").inc()
    reg.counter("aaa_total").inc()
    lines = reg.render()
    assert lines.index("# TYPE aaa_total counter") < \
        lines.index("# TYPE zzz_total counter")


def test_global_registry_is_singleton():
    assert telemetry.global_registry() is telemetry.global_registry()
    # The product code registers the cross-layer families at import time.
    import repro.fleet.cache  # noqa: F401
    import repro.store.base   # noqa: F401

    names = {l.split()[2] for l in telemetry.global_registry().render()
             if l.startswith("# TYPE")}
    assert "advisor_store_op_seconds" in names
    assert "advisor_engine_selected_total" in names
    assert "advisor_response_cache_requests_total" in names


# -- service metrics facade ---------------------------------------------------


def test_service_metrics_max_gauge_rendered():
    """Regression: the slowest-request high-water mark must appear on
    /metrics (it used to be tracked but never rendered)."""
    from repro.service.metrics import Metrics

    metrics = Metrics()
    metrics.observe("GET", "/v1/advice", 200, 0.25)
    metrics.observe("GET", "/v1/advice", 200, 0.75)
    metrics.observe("GET", "/v1/advice", 200, 0.10)
    text = metrics.render_prometheus()
    assert "# TYPE advisor_http_request_seconds_max gauge" in text
    assert ('advisor_http_request_seconds_max'
            '{method="GET",route="/v1/advice",status="200"} 0.75') in text
    # Historical family names survive the registry rewrite.
    assert ('advisor_http_request_seconds_sum'
            '{method="GET",route="/v1/advice",status="200"} 1.1') in text
    assert ('advisor_http_requests_total'
            '{method="GET",route="/v1/advice",status="200"} 3') in text


def test_service_metrics_extra_gauges_typed_once():
    from repro.service.metrics import Metrics

    text = Metrics().render_prometheus(extra_gauges={
        'advisor_fleet_worker_up{worker="a"}': 1,
        'advisor_fleet_worker_up{worker="b"}': 1,
        "advisor_uptime_seconds": 12.5,
    })
    assert text.count("# TYPE advisor_fleet_worker_up gauge") == 1
    assert 'advisor_fleet_worker_up{worker="a"} 1' in text
    assert "# TYPE advisor_uptime_seconds gauge" in text
    assert text.endswith("\n")


# -- sweep profiler -----------------------------------------------------------


def test_profiler_accumulates_and_orders_stages():
    prof = SweepProfiler()
    prof.add("persist", 0.25)
    prof.add("scenario", 1.0)
    prof.add("scenario", 0.5)
    prof.add("provision", 0.125)
    prof.add("setup", 0.0)     # zero time: omitted
    prof.add("noise", -1.0)    # negative: ignored
    profile = prof.as_dict()
    assert profile["scenario"] == 1.5
    assert profile["persist"] == 0.25
    assert "setup" not in profile
    assert "noise" not in profile
    assert profile["total_s"] >= 0.0
    # Canonical pipeline order before the total.
    keys = list(profile)
    assert keys[:3] == ["provision", "scenario", "persist"]
    assert keys[-1] == "total_s"


def test_profiler_stage_context_manager_times_body():
    import time as time_mod

    prof = SweepProfiler()
    with prof.stage("scenario"):
        time_mod.sleep(0.01)
    with pytest.raises(RuntimeError):
        with prof.stage("persist"):
            raise RuntimeError("still credited")
    profile = prof.as_dict()
    assert profile["scenario"] >= 0.01
    assert "persist" in profile  # credited despite the exception


def test_profiler_json_serializable():
    prof = SweepProfiler()
    prof.add("scenario", 0.125)
    json.dumps(prof.as_dict())
