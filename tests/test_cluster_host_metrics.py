"""Host helpers and infra-metrics tests."""

import pytest

from repro.cloud.skus import get_sku
from repro.cluster.host import Host, hostfile_text, hostlist_ppn, make_hosts
from repro.cluster.metrics import InfraMetrics


class TestHosts:
    def test_make_hosts_deterministic(self):
        sku = get_sku("Standard_HB120rs_v3")
        a = make_hosts(sku, 4, "pool-a")
        b = make_hosts(sku, 4, "pool-a")
        assert [h.hostname for h in a] == [h.hostname for h in b]
        assert a[0].hostname == "pool-a-node0000"

    def test_make_hosts_slots_match_cores(self):
        sku = get_sku("Standard_HC44rs")
        hosts = make_hosts(sku, 2)
        assert all(h.slots == 44 for h in hosts)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            make_hosts(get_sku("Standard_HC44rs"), -1)

    def test_zero_slot_host_rejected(self):
        with pytest.raises(ValueError):
            Host(hostname="h", sku=get_sku("Standard_HC44rs"), ip="10.0.0.1",
                 slots=0)

    def test_hostlist_ppn_format(self):
        """Matches mpirun --host 'host:ppn,host:ppn' (paper's HOSTLIST_PPN)."""
        hosts = make_hosts(get_sku("Standard_HB120rs_v3"), 2, "p")
        value = hostlist_ppn(hosts, 120)
        assert value == "p-node0000:120,p-node0001:120"

    def test_hostfile_format(self):
        hosts = make_hosts(get_sku("Standard_HB120rs_v3"), 2, "p")
        text = hostfile_text(hosts, 8)
        assert text == "p-node0000 slots=8\np-node0001 slots=8\n"

    def test_invalid_ppn_rejected(self):
        hosts = make_hosts(get_sku("Standard_HB120rs_v3"), 1)
        with pytest.raises(ValueError):
            hostlist_ppn(hosts, 0)


class TestInfraMetrics:
    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            InfraMetrics(cpu_util=1.5)
        with pytest.raises(ValueError):
            InfraMetrics(net_util=-0.1)

    def test_dominant_cpu(self):
        metrics = InfraMetrics(cpu_util=0.9, mem_bw_util=0.3, net_util=0.1)
        assert metrics.dominant_resource() == "cpu"

    def test_dominant_membw(self):
        metrics = InfraMetrics(cpu_util=0.2, mem_bw_util=0.85, net_util=0.1)
        assert metrics.dominant_resource() == "memory_bandwidth"

    def test_latency_bound_detection(self):
        """High comm fraction with an idle NIC = small-message latency."""
        metrics = InfraMetrics(cpu_util=0.2, mem_bw_util=0.2,
                               net_util=0.1, comm_fraction=0.7)
        assert metrics.dominant_resource() == "network_latency"

    def test_network_bound(self):
        metrics = InfraMetrics(cpu_util=0.1, mem_bw_util=0.2, net_util=0.9,
                               comm_fraction=0.4)
        assert metrics.dominant_resource() == "network"

    def test_dict_roundtrip(self):
        metrics = InfraMetrics(cpu_util=0.5, comm_fraction=0.25)
        restored = InfraMetrics.from_dict(metrics.to_dict())
        assert restored == metrics

    def test_from_dict_ignores_unknown_keys(self):
        restored = InfraMetrics.from_dict({"cpu_util": 0.5, "bogus": 9.9})
        assert restored.cpu_util == 0.5
