"""Deterministic RNG helper tests."""

from repro.rng import rng_for, stable_seed


class TestStableSeed:
    def test_deterministic(self):
        assert stable_seed("a", 1) == stable_seed("a", 1)

    def test_different_parts_differ(self):
        assert stable_seed("a") != stable_seed("b")

    def test_base_seed_changes_result(self):
        assert stable_seed("a", base_seed=0) != stable_seed("a", base_seed=1)

    def test_order_matters(self):
        assert stable_seed("a", "b") != stable_seed("b", "a")

    def test_range(self):
        seed = stable_seed("anything", 42, 3.14)
        assert 0 <= seed < 2**63


class TestRngFor:
    def test_reproducible_streams(self):
        a = rng_for("pool", 3).random(5)
        b = rng_for("pool", 3).random(5)
        assert (a == b).all()

    def test_distinct_keys_distinct_streams(self):
        a = rng_for("pool", 3).random(5)
        b = rng_for("pool", 4).random(5)
        assert not (a == b).all()
