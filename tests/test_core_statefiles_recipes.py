"""State-store and recipe-generation tests."""

import os

import pytest
import yaml

from repro.core.advisor import AdviceRow
from repro.core.deployer import Deployer
from repro.core.recipes import cluster_recipe, slurm_script
from repro.core.statefiles import StateStore, resolve_state_dir
from repro.errors import AdvisorError, ConfigError, ResourceNotFound
from tests.conftest import make_config


class TestResolveStateDir:
    def test_explicit_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv("HPCADVISOR_STATE_DIR", "/tmp/env")
        assert resolve_state_dir(str(tmp_path)) == str(tmp_path)

    def test_env_var(self, monkeypatch, tmp_path):
        monkeypatch.setenv("HPCADVISOR_STATE_DIR", str(tmp_path))
        assert resolve_state_dir() == str(tmp_path)

    def test_default_under_home(self, monkeypatch):
        monkeypatch.delenv("HPCADVISOR_STATE_DIR", raising=False)
        assert resolve_state_dir().endswith(".hpcadvisor-sim")


class TestStateStore:
    def test_save_and_list(self, tmp_path):
        store = StateStore(root=str(tmp_path))
        deployment = Deployer().deploy(make_config())
        store.save_deployment(deployment)
        records = store.list_deployments()
        assert len(records) == 1
        assert records[0]["name"] == deployment.name

    def test_get_unknown(self, tmp_path):
        store = StateStore(root=str(tmp_path))
        with pytest.raises(ResourceNotFound):
            store.get_deployment_record("ghost")

    def test_remove(self, tmp_path):
        store = StateStore(root=str(tmp_path))
        deployment = Deployer().deploy(make_config())
        store.save_deployment(deployment)
        store.remove_deployment(deployment.name)
        assert store.list_deployments() == []
        with pytest.raises(ResourceNotFound):
            store.remove_deployment(deployment.name)

    def test_attach_recreates_equivalent_deployment(self, tmp_path):
        store = StateStore(root=str(tmp_path))
        original = Deployer().deploy(make_config())
        store.save_deployment(original)
        attached = store.attach(original.name)
        assert attached.name == original.name
        assert attached.region == original.region
        assert attached.config == original.config
        # The reattached deployment is live: its batch service works.
        attached.batch.create_pool("p", "Standard_HB120rs_v3", 1)

    def test_attach_without_config_rejected(self, tmp_path):
        store = StateStore(root=str(tmp_path))
        deployment = Deployer().deploy(make_config())
        deployment.config = None
        store.save_deployment(deployment)
        with pytest.raises(ConfigError):
            store.attach(deployment.name)

    def test_paths_are_per_deployment(self, tmp_path):
        store = StateStore(root=str(tmp_path))
        assert store.dataset_path("a") != store.dataset_path("b")
        assert store.taskdb_path("a") != store.plots_dir("a")


ROW = AdviceRow(exec_time_s=36.0, cost_usd=0.576, nnodes=16,
                sku="Standard_HB120rs_v3", ppn=120,
                appinputs={"BOXFACTOR": "30"})


class TestSlurmRecipe:
    def test_contains_advised_shape(self):
        script = slurm_script(ROW, "lammps")
        assert "#SBATCH --nodes=16" in script
        assert "#SBATCH --ntasks-per-node=120" in script
        assert "NP=$((16 * 120))" in script
        assert "mpirun -np $NP lammps" in script

    def test_walltime_padded(self):
        script = slurm_script(ROW, "lammps", walltime_margin=2.0)
        assert "--time=00:01:12" in script  # 36 s * 2 = 72 s

    def test_inputs_exported(self):
        script = slurm_script(ROW, "lammps")
        assert "export BOXFACTOR='30'" in script

    def test_margin_validated(self):
        with pytest.raises(AdvisorError):
            slurm_script(ROW, "lammps", walltime_margin=0.5)

    def test_extra_env(self):
        script = slurm_script(ROW, "lammps",
                              extra_env={"UCX_NET_DEVICES": "mlx5_ib0:1"})
        assert "export UCX_NET_DEVICES=mlx5_ib0:1" in script


class TestClusterRecipe:
    def test_valid_yaml_with_expected_fields(self):
        recipe = yaml.safe_load(cluster_recipe(ROW))
        assert recipe["cluster"]["vm_type"] == "Standard_HB120rs_v3"
        assert recipe["cluster"]["nodes"] == 16
        assert recipe["cluster"]["interconnect"] == "HDR"
        assert recipe["rationale"]["expected_cost_usd"] == pytest.approx(0.576)
