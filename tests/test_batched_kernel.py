"""The batched sweep kernel's exact-equivalence contract (ISSUE 7).

``engine="batched"`` (:mod:`repro.simd`) replaces the per-object
scheduler with a flat array walk, and its entire value rests on one
promise: **byte-identical output** — the same DataPoints, the same
TaskRecords, the same billing totals — as the sequential Algorithm-1
walk at pool parallelism 1.  These tests pin that promise down:

* grid goldens per app, on-demand and seeded spot under every recovery
  policy, including failure paths (OOM, bad inputs);
* the vectorized ``prime_grid`` pass bit-equal to scalar ``evaluate``
  over a randomized mixed-app grid;
* Hypothesis-generated sweeps: any (inputs, nodes, eviction, recovery,
  retries) draw must agree engine-to-engine;
* graceful degradation: ineligible sweeps fall back to the object
  engine with the reason recorded, and a missing NumPy only un-primes
  the vector pass (the batched engine stays exact through the scalar
  path);
* the deferred store sync still persists completed work when a sweep
  aborts mid-flight.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.appkit.plugins import get_plugin
from repro.backends.azurebatch import AzureBatchBackend
from repro.cloud.eviction import EvictionModel
from repro.cloud.skus import get_sku
from repro.core.collector import DataCollector
from repro.core.dataset import Dataset
from repro.core.deployer import Deployer
from repro.core.scenarios import Scenario, generate_scenarios
from repro.core.taskdb import TaskDB, TaskStatus
from repro.errors import ConfigError
from repro.simd import batch_eligibility, prime_grid, vector_ready
from repro.simd.physics import ScenarioPhysics
from tests.conftest import make_config


class SequentialBackend(AzureBatchBackend):
    """The sequential Algorithm-1 walk the equivalence contract names."""

    @property
    def supports_concurrency(self) -> bool:
        return False


def sweep(engine, appname="lammps", appinputs=None, skus=None,
          nnodes=None, capacity="ondemand", recovery="restart",
          eviction=None, retry_failed=0, store=None, on_progress=None):
    config = make_config(
        appname=appname,
        appinputs=appinputs or {"BOXFACTOR": ["4", "8"]},
        skus=skus or ["Standard_HB120rs_v3", "Standard_HC44rs"],
        nnodes=nnodes or [1, 2, 3],
    )
    deployment = Deployer().deploy(config)
    backend_cls = (SequentialBackend if engine == "object"
                   else AzureBatchBackend)
    collector = DataCollector(
        backend=backend_cls(service=deployment.batch, capacity=capacity),
        script=get_plugin(appname),
        dataset=Dataset(store=store),
        taskdb=TaskDB(store=store),
        deployment_name="batched-kernel-test",
        capacity=capacity, recovery=recovery, eviction=eviction,
        retry_failed=retry_failed, engine=engine,
        on_progress=on_progress,
    )
    report = collector.collect(generate_scenarios(config))
    return collector, report


REPORT_FIELDS = ("executed", "completed", "failed", "skipped",
                 "task_cost_usd", "infrastructure_cost_usd",
                 "provisioning_overhead_s", "simulated_wall_s",
                 "makespan_s", "preemptions", "wasted_node_s",
                 "failures")


def assert_equivalent(**kwargs):
    obj, obj_report = sweep("object", **kwargs)
    bat, bat_report = sweep("batched", **kwargs)
    assert bat_report.engine == "batched", bat_report.engine_fallback
    assert ([p.to_dict() for p in obj.dataset.points()]
            == [p.to_dict() for p in bat.dataset.points()])
    assert ([r.to_dict() for r in obj.taskdb.all()]
            == [r.to_dict() for r in bat.taskdb.all()])
    for name in REPORT_FIELDS:
        assert getattr(obj_report, name) == getattr(bat_report, name), name
    return bat, bat_report


# -- grid goldens ---------------------------------------------------------------


def test_ondemand_byte_identical():
    bat, report = assert_equivalent()
    assert report.completed > 0
    assert bat.dataset.points()


@pytest.mark.parametrize("appname,appinputs", [
    ("openfoam", {"MESH": ["40 16 16", "80 32 32", "bogus"]}),
    ("gromacs", {"ATOMS": ["3000000"]}),
    ("matrixmult", {"MSIZE": ["20000", "40000"]}),
])
def test_multiapp_byte_identical(appname, appinputs):
    assert_equivalent(appname=appname, appinputs=appinputs)


def test_oom_and_retry_byte_identical():
    # BOXFACTOR 120 overflows node memory -> the OOM failure path, with
    # retries exercising the repeat-attempt accounting.
    _, report = assert_equivalent(appinputs={"BOXFACTOR": ["4", "120"]},
                                  retry_failed=2)
    assert report.failed > 0


@pytest.mark.parametrize("recovery",
                         ["restart", "checkpoint_restart", "fail"])
def test_spot_byte_identical(recovery):
    _, report = assert_equivalent(
        capacity="spot", recovery=recovery,
        eviction=EvictionModel(default_rate_per_hour=40.0, rates={},
                               seed=7),
        appinputs={"BOXFACTOR": ["20", "24"]},
    )
    assert report.preemptions > 0


def test_spot_rate_zero_byte_identical_to_ondemand():
    """ISSUE golden, batched path: a spot sweep whose eviction rate is
    0.0 must reproduce the on-demand measurements byte for byte once the
    tier label and the spot discount are factored out."""
    from tests.test_collector_spot import full_dicts

    def run(capacity, eviction):
        config = make_config(appinputs={"BOXFACTOR": ["4", "8"]},
                             skus=["Standard_HB120rs_v3",
                                   "Standard_HC44rs"],
                             nnodes=[1, 2, 3])
        deployment = Deployer().deploy(config)
        deployment.provider.prices.spot_discount = 0.0
        collector = DataCollector(
            backend=AzureBatchBackend(service=deployment.batch,
                                      capacity=capacity),
            script=get_plugin("lammps"),
            dataset=Dataset(), taskdb=TaskDB(),
            deployment_name="batched-kernel-test",
            capacity=capacity, eviction=eviction, engine="batched",
        )
        report = collector.collect(generate_scenarios(config))
        assert report.engine == "batched", report.engine_fallback
        return collector, report

    spot, spot_report = run("spot", EvictionModel.flat(0.0, seed=7))
    ondemand, _ = run("ondemand", None)
    assert spot_report.preemptions == 0
    assert full_dicts(spot.dataset, drop=("capacity",)) \
        == full_dicts(ondemand.dataset, drop=("capacity",))
    assert all(p.capacity == "spot" for p in spot.dataset)


def test_batched_spot_profile_attributes_recovery_stage():
    """The vectorized draw prefetch is real work: stage attribution on a
    batched spot sweep must include a nonzero recovery bucket alongside
    the usual stages, and the stage times must sum to total_s."""
    _, report = sweep(
        "batched", capacity="spot", recovery="checkpoint_restart",
        eviction=EvictionModel(default_rate_per_hour=40.0, rates={},
                               seed=7),
        appinputs={"BOXFACTOR": ["20", "24"]},
    )
    assert report.engine == "batched"
    assert report.preemptions > 0
    profile = report.profile
    # The whole interruption/retry drive (including the vectorized draw
    # prefetch) lands in the recovery bucket, mirroring the sequential
    # walk's attribution; "scenario" only appears for on-demand rows.
    for stage in ("provision", "setup", "persist", "recovery"):
        assert stage in profile, profile
    assert profile["recovery"] > 0.0
    staged = sum(v for k, v in profile.items() if k != "total_s")
    assert 0.0 < staged <= profile["total_s"] + 1e-6


def test_spot_billing_identity():
    """Billed node-seconds decompose exactly: useful + wasted."""
    config = make_config(appinputs={"BOXFACTOR": ["20"]},
                         skus=["Standard_HB120rs_v3"], nnodes=[2, 3])
    deployment = Deployer().deploy(config)
    collector = DataCollector(
        backend=AzureBatchBackend(service=deployment.batch,
                                  capacity="spot"),
        script=get_plugin("lammps"),
        dataset=Dataset(), taskdb=TaskDB(),
        deployment_name="batched-kernel-test",
        capacity="spot", recovery="checkpoint_restart",
        eviction=EvictionModel(default_rate_per_hour=60.0, rates={},
                               seed=11),
        engine="batched",
    )
    report = collector.collect(generate_scenarios(config))
    assert report.engine == "batched"
    assert report.preemptions > 0
    for point in collector.dataset.points():
        price = deployment.provider.prices.hourly_price(
            point.sku, config.region, spot=True)
        billed_node_s = (point.exec_time_s * point.nnodes
                         + point.wasted_node_s)
        assert point.cost_usd == pytest.approx(
            price * billed_node_s / 3600.0, rel=1e-9)


# -- vectorized prime == scalar evaluate ----------------------------------------


def random_grid(rng, count):
    """A mixed-app grid with deliberately hostile corners: bad inputs,
    missing env, extreme sizes, every ppn regime."""
    skus = ["Standard_HC44rs", "Standard_HB120rs_v2",
            "Standard_HB120rs_v3"]
    scenarios = []
    for i in range(count):
        sku_name = rng.choice(skus)
        cores = get_sku(sku_name).cores
        app = rng.choice(["lammps", "openfoam", "gromacs", "namd",
                          "wrf", "matrixmult"])
        if app == "lammps":
            inputs = {"BOXFACTOR": f"{rng.uniform(0.5, 60):.4f}"}
        elif app == "openfoam":
            inputs = {"MESH": f"{rng.randint(5, 120)} "
                              f"{rng.randint(4, 40)} {rng.randint(4, 40)}"}
            if rng.random() < 0.1:
                inputs = {"MESH": "bad mesh"}
        elif app in ("gromacs", "namd"):
            inputs = {"ATOMS": str(rng.randint(10_000, 500_000_000))}
        elif app == "wrf":
            inputs = {"RESOLUTION": f"{rng.uniform(0.5, 50):.3f}"}
        else:
            inputs = {"MSIZE": str(rng.randint(100, 2_000_000))}
        if rng.random() < 0.05:
            inputs = {}  # missing required env -> script failure
        scenarios.append(Scenario(
            scenario_id=f"grid-{i}", sku_name=sku_name,
            nnodes=rng.choice([1, 2, 3, 7, 16]),
            ppn=rng.choice([1, 2, cores // 2, cores]),
            appname=app, appinputs=inputs,
        ))
    return scenarios


def assert_physics_equal(reference, primed_value, scenario):
    for name in ("succeeded", "wall_time_s", "app_vars", "infra_metrics",
                 "failure_reason"):
        ref, got = getattr(reference, name), getattr(primed_value, name)
        assert ref == got, (scenario.scenario_id, name, ref, got)
        if isinstance(ref, dict):
            # bit-identical: same key order, same types, same reprs
            # (0.5 == 0.5000000000000001 would pass ==, not repr).
            assert list(ref) == list(got)
            assert all(repr(ref[k]) == repr(got[k]) for k in ref)
        if isinstance(ref, float):
            assert repr(ref) == repr(got)


@pytest.mark.skipif(not vector_ready(), reason="NumPy not available")
def test_prime_grid_bit_equal_to_scalar():
    import random

    scenarios = random_grid(random.Random(42), 200)
    primed = prime_grid(ScenarioPhysics(), scenarios,
                        lambda name: get_sku(name))
    scalar = ScenarioPhysics()
    missing = []
    for scenario in scenarios:
        reference = scalar.evaluate(scenario, get_sku(scenario.sku_name))
        got = primed.get(scenario.scenario_id)
        if got is None:
            missing.append(scenario.scenario_id)
            continue
        assert_physics_equal(reference, got, scenario)
    # every supported-app scenario must be primed (nothing silently
    # skipped); the grid above only draws from covered apps
    assert not missing, missing


def test_prime_grid_without_numpy(monkeypatch):
    """No NumPy -> no vector pass, but the batched engine stays exact
    through the scalar path."""
    import repro.simd.vector as vector

    monkeypatch.setattr(vector, "_np", None)
    assert not vector.vector_ready()
    scenarios = random_grid(__import__("random").Random(1), 10)
    assert prime_grid(ScenarioPhysics(), scenarios,
                      lambda name: get_sku(name)) == {}
    assert_equivalent(appinputs={"BOXFACTOR": ["4", "8"]})


# -- eligibility and fallback ---------------------------------------------------


def test_batch_eligibility_reasons():
    batch = Deployer().deploy(make_config()).batch
    backend = AzureBatchBackend(service=batch)
    ok = Scenario(scenario_id="a", sku_name="Standard_HC44rs", nnodes=2,
                  ppn=4, appname="lammps", appinputs={"BOXFACTOR": "4"})
    alien = Scenario(scenario_id="b", sku_name="Standard_HC44rs",
                     nnodes=2, ppn=4, appname="customsolver",
                     appinputs={})
    reserved = Scenario(scenario_id="c", sku_name="Standard_HC44rs",
                        nnodes=2, ppn=4, appname="lammps",
                        appinputs={"NNODES": "4"})
    assert batch_eligibility(backend, 1, [ok]) is None
    assert "customsolver" in batch_eligibility(backend, 1, [ok, alien])
    assert batch_eligibility(backend, 1, [reserved]) is not None
    assert "max_parallel_pools" in batch_eligibility(backend, 4, [ok])
    # Exact type check: a subclass may override behaviour the kernel
    # cannot see, so it must not be treated as the plain substrate.
    sequential = SequentialBackend(service=batch)
    assert batch_eligibility(sequential, 1, [ok]) is not None


def test_requested_batched_falls_back_with_reason():
    # A reserved env key in appinputs makes the sweep ineligible; the
    # engine must degrade to the object scheduler and say why.
    _, report = sweep("batched", appinputs={"NNODES": ["4"]},
                      skus=["Standard_HB120rs_v3"], nnodes=[1])
    assert report.engine == "object"
    assert report.engine_fallback != ""


def test_auto_engine_stays_object():
    _, report = sweep("auto", appinputs={"BOXFACTOR": ["4"]},
                      skus=["Standard_HB120rs_v3"], nnodes=[1])
    assert report.engine == "object"
    assert report.engine_fallback == ""


# -- request/result plumbing ----------------------------------------------------


def test_collect_request_engine_serde():
    from repro.api.requests import CollectRequest
    from repro.api.results import CollectResult

    request = CollectRequest(deployment="d", engine="batched")
    assert CollectRequest.from_dict(request.to_dict()).engine == "batched"
    assert CollectRequest(deployment="d").engine == "auto"
    with pytest.raises(ConfigError):
        CollectRequest(deployment="d", engine="warp")
    result = CollectResult(deployment="d", engine="batched",
                           engine_fallback="")
    assert CollectResult.from_dict(result.to_dict()).engine == "batched"


def test_session_collect_reports_engine(tmp_path):
    from repro.api.session import AdvisorSession
    from repro.core.statefiles import StateStore

    session = AdvisorSession(store=StateStore(root=str(tmp_path)))
    info = session.deploy(make_config())
    result = session.collect(deployment=info.name, engine="batched")
    assert result.engine == "batched"
    assert result.engine_fallback == ""
    assert result.completed > 0


# -- deferred sync exception safety ---------------------------------------------


def test_abort_mid_sweep_persists_completed_records(tmp_path):
    from repro.store.sqlite import SqliteStore

    class Abort(RuntimeError):
        pass

    calls = {"n": 0}

    def explode_after_three(report, total):
        calls["n"] += 1
        if calls["n"] >= 3:
            raise Abort

    store = SqliteStore(str(tmp_path / "state.sqlite"))
    with pytest.raises(Abort):
        sweep("batched", appinputs={"BOXFACTOR": ["4", "8", "12"]},
              store=store, on_progress=explode_after_three)
    persisted = store.load_tasks()
    completed = [r for r in persisted if r.status is TaskStatus.COMPLETED]
    assert len(completed) == 3
    assert len(store.query_points()) == 3


def test_spot_retry_after_giveup_regrows_pool():
    """Regression (found by the Hypothesis sweep below): a spot run that
    gives up after its final eviction leaves the pool at zero nodes, and
    ``retry_failed`` used to re-run the scenario without re-provisioning
    — crashing with PoolStateError in every walk."""
    _, report = assert_equivalent(
        appinputs={"BOXFACTOR": ["29.000"]},
        skus=["Standard_HB120rs_v3"], nnodes=[1],
        capacity="spot", recovery="restart", retry_failed=1,
        eviction=EvictionModel(default_rate_per_hour=40.0, rates={},
                               seed=0),
    )
    # The re-run draws a fresh eviction sequence (cumulative draw
    # counter) and happens to survive at this seed; before that fix it
    # replayed the evictions that killed the first run and could only
    # ever fail again.
    assert report.executed == 1
    assert report.completed + report.failed == 1


# -- Hypothesis: any draw agrees engine-to-engine -------------------------------


@settings(max_examples=20, deadline=None)
@given(
    boxfactors=st.lists(
        st.floats(min_value=0.5, max_value=90.0, allow_nan=False),
        min_size=1, max_size=2, unique=True),
    nnodes=st.lists(st.sampled_from([1, 2, 3, 4]), min_size=1,
                    max_size=2, unique=True),
    retry_failed=st.integers(min_value=0, max_value=2),
    recovery=st.sampled_from(["restart", "checkpoint_restart", "fail"]),
    rate=st.sampled_from([0.0, 40.0, 600.0]),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_random_sweeps_byte_identical(boxfactors, nnodes, retry_failed,
                                      recovery, rate, seed):
    assert_equivalent(
        appinputs={"BOXFACTOR": [f"{b:.3f}" for b in boxfactors]},
        skus=["Standard_HB120rs_v3"],
        nnodes=sorted(nnodes),
        capacity="spot", recovery=recovery, retry_failed=retry_failed,
        eviction=EvictionModel(default_rate_per_hour=rate, rates={},
                               seed=seed),
    )
