"""Integration tests that reproduce the paper's artefacts end to end.

These run the real pipeline (deploy -> Algorithm 1 -> dataset -> advice /
plots) and check the outputs against the published Listings and Figures.
"""

import pytest

from repro.core.advisor import Advisor
from repro.core.plotdata import (
    efficiency,
    exectime_vs_cost,
    exectime_vs_nodes,
    speedup,
)


class TestListing4Lammps:
    """Advice for LAMMPS LJ x30: the paper's Listing 4."""

    def test_front_rows_match(self, lammps_paper_dataset):
        rows = Advisor(lammps_paper_dataset).advise(appname="lammps",
                                                    sort_by="time")
        assert [(r.nnodes, r.sku_short) for r in rows] == [
            (16, "hb120rs_v3"), (8, "hb120rs_v3"),
            (4, "hb120rs_v3"), (3, "hb120rs_v3"),
        ]
        paper = [(36, 0.576), (69, 0.552), (132, 0.528), (173, 0.519)]
        for row, (paper_t, paper_c) in zip(rows, paper):
            assert row.exec_time_s == pytest.approx(paper_t, rel=0.10)
            assert row.cost_usd == pytest.approx(paper_c, rel=0.10)

    def test_other_skus_dominated(self, lammps_paper_dataset):
        rows = Advisor(lammps_paper_dataset).advise(appname="lammps")
        assert all(r.sku_short == "hb120rs_v3" for r in rows)

    def test_dataset_complete(self, lammps_paper_dataset):
        # 3 SKUs x 4 node counts, all succeed.
        assert len(lammps_paper_dataset) == 12


class TestListing3OpenFoam:
    """Advice for OpenFOAM motorBike: the paper's Listing 3."""

    def test_front_structure(self, openfoam_paper_dataset):
        rows = Advisor(openfoam_paper_dataset).advise(appname="openfoam",
                                                      sort_by="time")
        # Same four-row staircase as the paper: fastest at 16 nodes,
        # cheapest at 3 nodes, intermediate rows at 8 and 4.
        assert [r.nnodes for r in rows] == [16, 8, 4, 3]
        paper = [(34, 0.544), (38, 0.304), (48, 0.192), (59, 0.177)]
        for row, (paper_t, paper_c) in zip(rows, paper):
            assert row.exec_time_s == pytest.approx(paper_t, rel=0.12)
            assert row.cost_usd == pytest.approx(paper_c, rel=0.12)

    def test_fastest_is_16_nodes_v3(self, openfoam_paper_dataset):
        rows = Advisor(openfoam_paper_dataset).advise(appname="openfoam")
        assert rows[0].nnodes == 16
        assert rows[0].sku_short == "hb120rs_v3"

    def test_sort_by_cost_reverses(self, openfoam_paper_dataset):
        rows = Advisor(openfoam_paper_dataset).advise(appname="openfoam",
                                                      sort_by="cost")
        assert rows[0].nnodes == 3


class TestFigureSeries:
    """The four plot types over the LAMMPS dataset (Figures 2-5)."""

    def test_fig2_ordering(self, lammps_paper_dataset):
        data = exectime_vs_nodes(lammps_paper_dataset)
        assert [s.label for s in data.series] == [
            "hb120rs_v2", "hb120rs_v3", "hc44rs"
        ]
        at16 = {s.label: dict(s.points)[16.0] for s in data.series}
        assert at16["hb120rs_v3"] < at16["hb120rs_v2"] < at16["hc44rs"]

    def test_fig2_subtitle(self, lammps_paper_dataset):
        assert exectime_vs_nodes(lammps_paper_dataset).subtitle == "atoms=864M"

    def test_fig3_hb_costs_near_vertical(self, lammps_paper_dataset):
        """Both HB SKUs bill $3.60/h, so cost varies little with nodes
        for near-linear scaling (the paper's Fig. 3 tight verticals)."""
        data = exectime_vs_cost(lammps_paper_dataset)
        v3 = data.series_by_label("hb120rs_v3")
        costs = v3.ys
        assert max(costs) / min(costs) < 1.25

    def test_fig4_v2_speedup_strongest(self, lammps_paper_dataset):
        data = speedup(lammps_paper_dataset)
        at16 = {s.label: dict(s.points)[16.0] for s in data.series}
        assert at16["hb120rs_v2"] > at16["hb120rs_v3"]
        assert at16["hb120rs_v2"] > at16["hc44rs"]

    def test_fig5_superlinear_efficiency_visible(self, lammps_paper_dataset):
        """Fig. 5's headline: efficiency above 1 for at least one SKU."""
        data = efficiency(lammps_paper_dataset)
        v2 = dict(data.series_by_label("hb120rs_v2").points)
        assert max(v2.values()) > 1.0

    def test_efficiency_definition(self, lammps_paper_dataset):
        data = efficiency(lammps_paper_dataset)
        for series in data.series:
            first_n = series.points[0][0]
            assert dict(series.points)[first_n] == pytest.approx(1.0)
