"""Tests for the extension modules: retail prices API, reports, budgets,
dataset comparison."""

import pytest

from repro.cloud.retailprices import RetailPricesApi, catalog_from_api
from repro.core.compare import compare_datasets, render_comparison
from repro.core.dataset import DataPoint, Dataset
from repro.core.report import aggregate_by_sku, render_report
from repro.errors import CloudError, DatasetError, SamplingError
from repro.sampling.budget import BudgetedSampler
from repro.sampling.planner import SamplerPolicy, SmartSampler
from repro.core.scenarios import Scenario


class TestRetailPricesApi:
    def test_query_by_sku_and_region(self):
        api = RetailPricesApi()
        response = api.query(sku_name="Standard_HB120rs_v3",
                             region="southcentralus")
        assert response["Count"] == 1
        item = response["Items"][0]
        assert item["retailPrice"] == 3.60
        assert item["armRegionName"] == "southcentralus"
        assert item["serviceName"] == "Virtual Machines"

    def test_region_pricing_adjusted(self):
        api = RetailPricesApi()
        eu = api.query(sku_name="Standard_HB120rs_v2",
                       region="westeurope")["Items"][0]
        us = api.query(sku_name="Standard_HB120rs_v2",
                       region="southcentralus")["Items"][0]
        assert eu["retailPrice"] > us["retailPrice"]

    def test_sku_absent_from_region_not_listed(self):
        api = RetailPricesApi()
        response = api.query(sku_name="Standard_HB120rs_v3",
                             region="japaneast")
        assert response["Count"] == 0

    def test_max_price_filter(self):
        api = RetailPricesApi()
        items = api.query(region="southcentralus", max_price=3.2)["Items"]
        assert items
        assert all(i["retailPrice"] <= 3.2 for i in items)

    def test_pagination_walks_all_items(self):
        api = RetailPricesApi(page_size=3)
        first = api.query()
        assert first["Count"] == 3
        assert "NextPageLink" in first
        everything = api.query_all()
        assert len(everything) > 3
        # No duplicates across pages.
        keys = [(i["armSkuName"], i["armRegionName"]) for i in everything]
        assert len(set(keys)) == len(keys)

    def test_invalid_page(self):
        with pytest.raises(CloudError):
            RetailPricesApi().query(page=-1)

    def test_catalog_from_api_matches_defaults(self):
        api = RetailPricesApi()
        catalog = catalog_from_api(api, "southcentralus")
        assert catalog.hourly_price("Standard_HB120rs_v3") == 3.60
        assert catalog.task_cost("Standard_HB120rs_v3", 16, 36) == \
            pytest.approx(0.576)

    def test_catalog_from_api_unknown_region(self):
        with pytest.raises(CloudError):
            catalog_from_api(RetailPricesApi(), "atlantis")


def dp(sku="Standard_HB120rs_v3", nnodes=2, t=100.0, c=0.2, **kw):
    defaults = dict(appname="lammps", appinputs={"BOXFACTOR": "30"})
    defaults.update(kw)
    return DataPoint(sku=sku, nnodes=nnodes, ppn=120, exec_time_s=t,
                     cost_usd=c, **defaults)


class TestReport:
    def make_report(self):
        from repro.core.collector import CollectionReport

        return CollectionReport(
            executed=4, completed=3, failed=1, skipped=2, predicted=1,
            task_cost_usd=12.34, infrastructure_cost_usd=20.0,
            provisioning_overhead_s=600.0,
            failures=["t00003: out of memory"],
        )

    def make_dataset(self):
        return Dataset([
            dp(nnodes=2, t=200, c=0.4),
            dp(nnodes=4, t=110, c=0.44),
            dp(sku="Standard_HC44rs", nnodes=4, t=500, c=1.76),
        ])

    def test_aggregate_by_sku(self):
        aggs = aggregate_by_sku(self.make_dataset())
        assert [a.sku for a in aggs] == ["Standard_HB120rs_v3",
                                         "Standard_HC44rs"]
        v3 = aggs[0]
        assert v3.scenarios == 2
        assert v3.best_time_s == 110
        assert v3.best_nodes == 4
        assert v3.total_cost_usd == pytest.approx(0.84)

    def test_render_contains_key_facts(self):
        text = render_report(self.make_report(), self.make_dataset())
        assert "3 completed" in text
        assert "1 failed" in text
        assert "$12.3400 on tasks" in text
        assert "out of memory" in text
        assert "Standard_HC44rs" in text
        assert "overhead" in text

    def test_render_with_pending_tasks(self):
        from repro.core.taskdb import TaskDB

        db = TaskDB()
        db.add_scenarios([Scenario(
            scenario_id="t99999", sku_name="Standard_HC44rs", nnodes=1,
            ppn=44, appname="lammps",
        )])
        text = render_report(self.make_report(), self.make_dataset(),
                             taskdb=db)
        assert "t99999" in text


class TestBudgetedSampler:
    def make(self, budget):
        inner = SmartSampler(
            hourly_prices={"Standard_HB120rs_v3": 3.6},
            policy=SamplerPolicy(enable_discard=False, enable_predict=False,
                                 enable_bottleneck=False),
        )
        return BudgetedSampler(inner=inner, budget_usd=budget)

    def scen(self, nnodes, sid=None):
        return Scenario(scenario_id=sid or f"t{nnodes}",
                        sku_name="Standard_HB120rs_v3", nnodes=nnodes,
                        ppn=120, appname="lammps",
                        appinputs={"BOXFACTOR": "30"})

    def test_validation(self):
        with pytest.raises(SamplingError):
            self.make(budget=0)
        with pytest.raises(SamplingError):
            BudgetedSampler(
                inner=SmartSampler(hourly_prices={}), budget_usd=1,
                reserve_fraction=1.0,
            )

    def test_first_probe_always_runs(self):
        sampler = self.make(budget=0.10)
        assert sampler.decide(self.scen(2)).action == "run"

    def test_skips_when_estimate_exceeds_budget(self):
        sampler = self.make(budget=0.60)
        # First measurement: 2 nodes, 250s -> $0.50 spent.
        sampler.observe(dp(nnodes=2, t=250.0, c=0.50))
        # Next scenario estimated ~ same node-seconds -> ~$0.50 > $0.07 left.
        decision = sampler.decide(self.scen(4))
        assert decision.action == "skip"
        assert "over budget" in decision.reason
        assert sampler.skipped_over_budget == 1

    def test_runs_within_budget(self):
        sampler = self.make(budget=10.0)
        sampler.observe(dp(nnodes=2, t=250.0, c=0.50))
        assert sampler.decide(self.scen(4)).action == "run"

    def test_spend_tracked(self):
        sampler = self.make(budget=5.0)
        sampler.observe(dp(nnodes=2, t=250.0, c=0.50))
        sampler.observe(dp(nnodes=4, t=130.0, c=0.52))
        assert sampler.spent_usd == pytest.approx(1.02)
        assert sampler.remaining_usd == pytest.approx(5.0 * 0.95 - 1.02)

    def test_end_to_end_budget_respected(self):
        from repro.appkit.plugins import get_plugin
        from repro.backends.azurebatch import AzureBatchBackend
        from repro.core.collector import DataCollector
        from repro.core.deployer import Deployer
        from repro.core.scenarios import generate_scenarios
        from repro.core.taskdb import TaskDB
        from tests.conftest import make_config

        config = make_config(nnodes=[2, 3, 4, 8, 16],
                             appinputs={"BOXFACTOR": ["30"]})
        deployment = Deployer().deploy(config)
        scenarios = generate_scenarios(config)
        inner = SmartSampler.for_scenarios(
            scenarios, {"Standard_HB120rs_v3": 3.6},
            policy=SamplerPolicy(enable_discard=False, enable_predict=False,
                                 enable_bottleneck=False),
        )
        budget = 1.10  # enough for roughly two of the ~$0.52 scenarios
        sampler = BudgetedSampler(inner=inner, budget_usd=budget)
        collector = DataCollector(
            backend=AzureBatchBackend(service=deployment.batch),
            script=get_plugin("lammps"),
            dataset=Dataset(),
            taskdb=TaskDB(),
            sampler=sampler,
        )
        report = collector.collect(scenarios)
        assert sampler.spent_usd <= budget
        assert report.skipped >= 1
        assert report.completed >= 1


class TestCompareDatasets:
    def test_matched_rows_and_ratios(self):
        a = Dataset([dp(nnodes=2, t=100, c=0.2), dp(nnodes=4, t=60, c=0.24)])
        b = Dataset([dp(nnodes=2, t=80, c=0.16), dp(nnodes=8, t=30, c=0.24)])
        comparison = compare_datasets(a, b)
        assert comparison.matched == 1
        row = comparison.rows[0]
        assert row.time_ratio == pytest.approx(0.8)
        assert comparison.only_in_a == [
            ("lammps", "Standard_HB120rs_v3", 4, 120, "BOXFACTOR=30")
        ]
        assert len(comparison.only_in_b) == 1

    def test_geomean(self):
        a = Dataset([dp(nnodes=2, t=100), dp(nnodes=4, t=100)])
        b = Dataset([dp(nnodes=2, t=50), dp(nnodes=4, t=200)])
        comparison = compare_datasets(a, b)
        assert comparison.geomean_time_ratio == pytest.approx(1.0)

    def test_geomean_empty_raises(self):
        comparison = compare_datasets(Dataset(), Dataset())
        with pytest.raises(DatasetError):
            comparison.geomean_time_ratio

    def test_regressions_and_improvements(self):
        a = Dataset([dp(nnodes=2, t=100), dp(nnodes=4, t=100)])
        b = Dataset([dp(nnodes=2, t=150), dp(nnodes=4, t=50)])
        comparison = compare_datasets(a, b)
        assert len(comparison.regressions()) == 1
        assert len(comparison.improvements()) == 1

    def test_render(self):
        a = Dataset([dp(nnodes=2, t=100)])
        b = Dataset([dp(nnodes=2, t=80)])
        text = render_comparison(compare_datasets(a, b), "v1", "v2")
        assert "matched scenarios: 1" in text
        assert "0.800" in text
