"""Response-cache and conditional-request contract of the service tier.

Hot read routes (``GET /v1/advice``, ``GET /v1/datapoints``) carry a
strong ``ETag`` keyed on deployment + normalized query + the store's
dataset signature; an ``If-None-Match`` hit answers ``304`` with no
recompute, and any data write rolls the signature so stale entries can
never be served.  The pure cache machinery (key normalization, LRU,
stats) is covered here too.
"""

import json

import pytest

from repro.fleet.cache import ResponseCache, make_key
from repro.service.app import build_state
from repro.service.router import Router
from tests.conftest import make_config


@pytest.fixture
def state(tmp_path):
    service_state = build_state(str(tmp_path / "state"), workers=2)
    yield service_state
    service_state.close()


@pytest.fixture
def router(state):
    return Router(state)


def deploy_collected(router, prefix="cachetestrg"):
    config = make_config(rgprefix=prefix)
    response = router.handle("POST", "/v1/deployments",
                             json.dumps({"config": config.to_dict()}))
    assert response.status == 201, response.payload
    name = response.payload["name"]
    response = router.handle("POST", "/v1/jobs/collect",
                             json.dumps({"deployment": name}))
    assert response.status == 202, response.payload
    record = router.state.jobs.wait(response.payload["id"], timeout=30)
    assert record.state == "done", record.error
    return name


class TestMakeKey:
    def test_query_order_is_normalized(self):
        sig = ("gen", 3)
        first = make_key("/v1/advice", "dep", {"a": "1", "b": "2"}, sig)
        second = make_key("/v1/advice", "dep", {"b": "2", "a": "1"}, sig)
        assert first == second

    def test_none_values_dropped(self):
        sig = ("gen", 3)
        assert make_key("/r", "d", {"a": "1", "b": None}, sig) \
            == make_key("/r", "d", {"a": "1"}, sig)

    def test_signature_and_route_distinguish(self):
        base = make_key("/v1/advice", "dep", {}, ("gen", 1))
        assert make_key("/v1/advice", "dep", {}, ("gen", 2)) != base
        assert make_key("/v1/datapoints", "dep", {}, ("gen", 1)) != base
        assert make_key("/v1/advice", "dep2", {}, ("gen", 1)) != base

    def test_nested_signature_is_hashable(self):
        key = make_key("/r", "d", {"q": "1"},
                       {"files": [{"name": "a", "rows": 3}]})
        assert hash(key) is not None


class TestResponseCache:
    def test_lru_eviction_and_stats(self):
        cache = ResponseCache(maxsize=2)
        k1, k2, k3 = ("a",), ("b",), ("c",)
        cache.put(k1, "one")
        cache.put(k2, "two")
        assert cache.get(k1) == "one"   # k1 now most-recent
        cache.put(k3, "three")          # evicts k2
        assert cache.get(k2) is None
        assert cache.get(k1) == "one"
        stats = cache.stats()
        assert stats["entries"] == 2
        assert stats["hits"] == 2
        assert stats["misses"] == 1

    def test_etag_is_stable_and_strong(self):
        key = make_key("/v1/advice", "dep", {"x": "1"}, ("gen", 1))
        etag = ResponseCache.etag_for(key)
        assert etag == ResponseCache.etag_for(key)
        assert etag.startswith('"') and etag.endswith('"')
        assert not etag.startswith('W/')
        other = make_key("/v1/advice", "dep", {"x": "2"}, ("gen", 1))
        assert ResponseCache.etag_for(other) != etag


class TestCachedRoutes:
    def test_advice_carries_etag_and_hits_cache(self, router):
        name = deploy_collected(router)
        first = router.handle("GET", f"/v1/advice?deployment={name}")
        assert first.status == 200
        etag = first.headers["ETag"]
        assert etag
        before = router.state.cache.stats()
        second = router.handle("GET", f"/v1/advice?deployment={name}")
        assert second.status == 200
        assert second.headers["ETag"] == etag
        assert second.payload == first.payload
        after = router.state.cache.stats()
        assert after["hits"] == before["hits"] + 1

    def test_if_none_match_gets_304_with_empty_body(self, router):
        name = deploy_collected(router)
        first = router.handle("GET", f"/v1/advice?deployment={name}")
        etag = first.headers["ETag"]
        response = router.handle("GET", f"/v1/advice?deployment={name}",
                                 headers={"If-None-Match": etag})
        assert response.status == 304
        assert response.headers["ETag"] == etag
        assert response.body_bytes() == b""

    def test_if_none_match_star_and_lists_match(self, router):
        name = deploy_collected(router)
        etag = router.handle(
            "GET", f"/v1/advice?deployment={name}").headers["ETag"]
        for header in ("*", f'"nope", {etag}', f"W/{etag}"):
            response = router.handle(
                "GET", f"/v1/advice?deployment={name}",
                headers={"If-None-Match": header})
            assert response.status == 304, header

    def test_stale_etag_gets_full_response(self, router):
        name = deploy_collected(router)
        response = router.handle("GET", f"/v1/advice?deployment={name}",
                                 headers={"If-None-Match": '"stale"'})
        assert response.status == 200
        assert response.payload["deployment"] == name

    def test_datapoints_cached_too(self, router):
        name = deploy_collected(router)
        first = router.handle("GET", f"/v1/datapoints?deployment={name}")
        assert first.status == 200
        assert "ETag" in first.headers
        again = router.handle(
            "GET", f"/v1/datapoints?deployment={name}",
            headers={"If-None-Match": first.headers["ETag"]})
        assert again.status == 304

    def test_etag_rolls_when_data_changes(self, router):
        """A new collect bumps the dataset signature: old ETags must
        revalidate to a fresh 200, never a false 304."""
        name = deploy_collected(router)
        stale_etag = router.handle(
            "GET", f"/v1/advice?deployment={name}").headers["ETag"]

        # Write one more point straight through the backend — the same
        # signature roll any out-of-band collect would cause.
        from repro.core.dataset import DataPoint

        router.state.session.data_store(name).append_point(DataPoint(
            appname="lammps", sku="Standard_HB120rs_v3", nnodes=16,
            ppn=120, exec_time_s=1.0, cost_usd=1.0, deployment=name,
        ))

        revalidated = router.handle(
            "GET", f"/v1/advice?deployment={name}",
            headers={"If-None-Match": stale_etag})
        assert revalidated.status == 200
        assert revalidated.headers["ETag"] != stale_etag

    def test_query_params_partition_the_cache(self, router):
        name = deploy_collected(router)
        plain = router.handle("GET", f"/v1/advice?deployment={name}")
        filtered = router.handle(
            "GET", f"/v1/advice?deployment={name}&objective=cost")
        assert plain.headers["ETag"] != filtered.headers["ETag"]

    def test_unknown_deployment_is_404_not_cached(self, router):
        response = router.handle("GET", "/v1/advice?deployment=nope")
        assert response.status == 404
        assert "ETag" not in response.headers
        assert router.state.cache.stats()["entries"] == 0

    def test_post_advice_is_never_cached(self, router):
        name = deploy_collected(router)
        response = router.handle("POST", "/v1/advice",
                                 json.dumps({"deployment": name}))
        assert response.status == 200
        assert "ETag" not in response.headers

    def test_metrics_expose_cache_counters(self, router):
        name = deploy_collected(router)
        router.handle("GET", f"/v1/advice?deployment={name}")
        router.handle("GET", f"/v1/advice?deployment={name}")
        text = router.handle("GET", "/metrics").payload
        assert "advisor_response_cache_entries 1" in text
        assert "advisor_response_cache_hits 1" in text


class TestCacheDisabled:
    def test_env_knob_disables_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RESPONSE_CACHE", "0")
        state = build_state(str(tmp_path / "state"), workers=2)
        try:
            assert state.cache is None
            router = Router(state)
            name = deploy_collected(router)
            response = router.handle("GET",
                                     f"/v1/advice?deployment={name}")
            assert response.status == 200
            assert "ETag" not in response.headers
        finally:
            state.close()
