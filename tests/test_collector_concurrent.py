"""Event-driven sweep scheduler tests: determinism and concurrency."""

import pytest

from repro.appkit.plugins import get_plugin
from repro.backends.azurebatch import AzureBatchBackend, pool_id_for
from repro.backends.base import AsyncOp, ExecutionBackend, ScenarioRunResult
from repro.core.collector import DataCollector
from repro.core.dataset import Dataset
from repro.core.deployer import Deployer
from repro.core.scenarios import generate_scenarios
from repro.core.taskdb import TaskDB, TaskStatus
from tests.conftest import make_config

THREE_SKUS = ["Standard_HC44rs", "Standard_HB120rs_v2", "Standard_HB120rs_v3"]


def build(config, **kwargs):
    deployment = Deployer().deploy(config)
    collector = DataCollector(
        backend=AzureBatchBackend(service=deployment.batch),
        script=get_plugin(config.appname),
        dataset=Dataset(),
        taskdb=TaskDB(),
        deployment_name="det-test",
        **kwargs,
    )
    return collector, deployment


def point_dicts(dataset):
    """Full point payloads, timestamps included (order-insensitive)."""
    return sorted(
        (str(sorted(p.to_dict().items())) for p in dataset.points())
    )


def measurements(dataset):
    """Timestamp-free measurement payloads."""
    return sorted(
        (p.sku, p.nnodes, p.ppn, p.inputs_key(), p.exec_time_s, p.cost_usd)
        for p in dataset
    )


class TestDeterminism:
    def sweep_config(self):
        return make_config(
            skus=THREE_SKUS, nnodes=[1, 2, 4],
            appinputs={"BOXFACTOR": ["4", "8"]},
        )

    def test_parallel_one_reproduces_sequential_exactly(self, monkeypatch):
        """The scheduler at 1 pool equals the literal Algorithm-1 walk —
        every data point byte-identical, timestamps included."""
        config = self.sweep_config()
        scheduled, _ = build(config, max_parallel_pools=1)
        scheduled_report = scheduled.collect(generate_scenarios(config))

        sequential, _ = build(config)
        monkeypatch.setattr(AzureBatchBackend, "supports_concurrency",
                            property(lambda self: False))
        sequential_report = sequential.collect(generate_scenarios(config))

        assert point_dicts(scheduled.dataset) == point_dicts(
            sequential.dataset
        )
        assert ([r.to_dict() for r in scheduled.taskdb.all()]
                == [r.to_dict() for r in sequential.taskdb.all()])
        assert scheduled_report.executed == sequential_report.executed
        assert scheduled_report.completed == sequential_report.completed
        assert scheduled_report.task_cost_usd == sequential_report.task_cost_usd
        assert (scheduled_report.simulated_wall_s
                == sequential_report.simulated_wall_s)
        assert (scheduled_report.infrastructure_cost_usd
                == sequential_report.infrastructure_cost_usd)

    def test_parallel_one_reproduces_sequential_with_noise(self, monkeypatch):
        """Noise is seeded per scenario, so equality survives it."""
        from repro.perf.noise import NoiseModel

        config = make_config(skus=THREE_SKUS[:2], nnodes=[1, 2])
        scheduled, dep_a = build(config, max_parallel_pools=1)
        scheduled.backend.noise = NoiseModel(sigma=0.05, seed=7)
        scheduled.collect(generate_scenarios(config))

        sequential, dep_b = build(config)
        sequential.backend.noise = NoiseModel(sigma=0.05, seed=7)
        monkeypatch.setattr(AzureBatchBackend, "supports_concurrency",
                            property(lambda self: False))
        sequential.collect(generate_scenarios(config))

        assert point_dicts(scheduled.dataset) == point_dicts(
            sequential.dataset
        )

    def test_measurements_identical_at_any_parallelism(self):
        """Executions are deterministic per scenario: only timestamps and
        the makespan may change with the interleaving."""
        datasets, reports = [], []
        for parallel in (1, 2, 3):
            config = self.sweep_config()
            collector, _ = build(config, max_parallel_pools=parallel)
            reports.append(collector.collect(generate_scenarios(config)))
            datasets.append(collector.dataset)
        assert measurements(datasets[0]) == measurements(datasets[1])
        assert measurements(datasets[0]) == measurements(datasets[2])
        assert reports[0].task_cost_usd == pytest.approx(
            reports[2].task_cost_usd
        )

    def test_concurrent_makespan_beats_sequential(self):
        config = self.sweep_config()
        seq, _ = build(config, max_parallel_pools=1)
        seq_report = seq.collect(generate_scenarios(config))
        con, _ = build(config, max_parallel_pools=3)
        con_report = con.collect(generate_scenarios(config))
        assert con_report.completed == seq_report.completed
        assert con_report.makespan_s < seq_report.makespan_s
        assert con_report.max_parallel_pools == 3


class TestConcurrentScheduling:
    def test_pool_timelines_overlap(self):
        """With 3 parallel pools, SKU windows overlap in simulated time."""
        config = make_config(skus=THREE_SKUS, nnodes=[2, 4])
        collector, _ = build(config, max_parallel_pools=3)
        collector.collect(generate_scenarios(config))
        windows = {}
        for record in collector.taskdb.all():
            sku = record.scenario.sku_name
            start, finish = windows.get(sku, (float("inf"), 0.0))
            windows[sku] = (min(start, record.started_at),
                            max(finish, record.finished_at))
        spans = sorted(windows.values())
        assert len(spans) == 3
        for (start_a, finish_a), (start_b, _) in zip(spans, spans[1:]):
            assert start_b < finish_a  # pools were in flight together

    def test_parallelism_capped_by_pool_limit(self):
        """With a cap of 2, at most two SKU pools ever hold nodes."""
        config = make_config(skus=THREE_SKUS, nnodes=[2])
        collector, deployment = build(config, max_parallel_pools=2)

        peak = {"max": 0}
        original = AzureBatchBackend.submit_provision
        lives = set()

        def tracking(self, sku_name, nodes):
            lives.add(sku_name)
            peak["max"] = max(peak["max"], len(lives))
            return original(self, sku_name, nodes)

        original_release = AzureBatchBackend.release_capacity

        def tracking_release(self, sku_name, delete):
            lives.discard(sku_name)
            return original_release(self, sku_name, delete)

        AzureBatchBackend.submit_provision = tracking
        AzureBatchBackend.release_capacity = tracking_release
        try:
            collector.collect(generate_scenarios(config))
        finally:
            AzureBatchBackend.submit_provision = original
            AzureBatchBackend.release_capacity = original_release
        assert peak["max"] == 2

    def test_resume_skips_done_tasks_concurrently(self):
        config = make_config(skus=THREE_SKUS[:2], nnodes=[1, 2])
        collector, _ = build(config, max_parallel_pools=2)
        scenarios = generate_scenarios(config)
        first = collector.collect(scenarios)
        assert first.executed == 4
        second = collector.collect(scenarios)
        assert second.executed == 0
        assert len(collector.dataset) == 4

    def test_invalid_parallelism_rejected(self):
        config = make_config()
        collector, _ = build(config, max_parallel_pools=0)
        with pytest.raises(ValueError, match="max_parallel_pools"):
            collector.collect(generate_scenarios(config))

    def test_stop_on_failure_halts_other_pools(self):
        # bf=60 OOMs on 1 node; the failing SKU should stop the sweep.
        config = make_config(skus=THREE_SKUS, nnodes=[1],
                             appinputs={"BOXFACTOR": ["60"]})
        collector, _ = build(config, max_parallel_pools=1,
                             stop_on_failure=True)
        report = collector.collect(generate_scenarios(config))
        assert report.failed >= 1
        assert collector.taskdb.counts()["pending"] >= 1


class FailingSetupBackend(AzureBatchBackend):
    """Azure Batch backend whose application setup fails on one SKU."""

    bad_sku = "Standard_HC44rs"

    def submit_setup(self, sku_name, script):
        op = super().submit_setup(sku_name, script)
        if sku_name != self.bad_sku:
            return op

        def fail() -> bool:
            op.finish()  # still completes the task and frees the node
            self._setup_done[pool_id_for(sku_name)] = False
            return False

        return AsyncOp(op.ready_at, fail)


class BlockingStubBackend(ExecutionBackend):
    """Blocking-only backend recording calls; setup fails on bad_sku."""

    bad_sku = "Standard_HC44rs"

    def __init__(self):
        self.calls = []

    @property
    def name(self):
        return "stub"

    def ensure_capacity(self, sku_name, nodes):
        self.calls.append(("ensure", sku_name, nodes))

    def run_setup(self, sku_name, script):
        self.calls.append(("setup", sku_name))
        return sku_name != self.bad_sku

    def run_scenario(self, scenario, script):
        self.calls.append(("run", scenario.sku_name, scenario.nnodes))
        return ScenarioRunResult(
            succeeded=True, exec_time_s=10.0, cost_usd=0.01,
            stdout="", started_at=0.0, finished_at=10.0,
        )

    def release_capacity(self, sku_name, delete):
        self.calls.append(("release", sku_name))

    def teardown(self):
        pass

    @property
    def provisioning_overhead_s(self):
        return 0.0

    @property
    def total_infrastructure_cost_usd(self):
        return 0.0


class ProvisioningStub(BlockingStubBackend):
    """Blocking stub that accrues 33s of boot wait per capacity request,
    on top of 42s left over from an earlier sweep (cumulative counter)."""

    def __init__(self):
        super().__init__()
        self._prov = 42.0

    def ensure_capacity(self, sku_name, nodes):
        super().ensure_capacity(sku_name, nodes)
        self._prov += 33.0

    @property
    def provisioning_overhead_s(self):
        return self._prov


class TestSequentialFallbackMakespan:
    def test_makespan_includes_this_sweeps_provisioning(self):
        config = make_config(skus=[THREE_SKUS[2]], nnodes=[1])
        collector = DataCollector(
            backend=ProvisioningStub(), script=get_plugin(config.appname),
            dataset=Dataset(), taskdb=TaskDB(),
        )
        report = collector.collect(generate_scenarios(config))
        # 10s of task time + 33s booted this sweep; the 42s already on
        # the backend's cumulative counter must not leak in.
        assert report.makespan_s == pytest.approx(10.0 + 33.0)


class TestSetupFailurePoisonsSku:
    """Regression: a failed setup must fail the whole SKU group instead of
    running later scenarios of that SKU on an unprepared pool."""

    def test_scheduled_path_fails_whole_group(self):
        config = make_config(skus=THREE_SKUS[:2], nnodes=[1, 2])
        deployment = Deployer().deploy(config)
        backend = FailingSetupBackend(service=deployment.batch)
        collector = DataCollector(
            backend=backend, script=get_plugin(config.appname),
            dataset=Dataset(), taskdb=TaskDB(),
        )
        report = collector.collect(generate_scenarios(config))

        statuses = {
            (r.scenario.sku_name, r.scenario.nnodes): r
            for r in collector.taskdb.all()
        }
        for nnodes in (1, 2):
            record = statuses[(FailingSetupBackend.bad_sku, nnodes)]
            assert record.status is TaskStatus.FAILED
            assert "setup failed" in record.failure_reason
        assert report.failed == 2
        assert report.completed == 2  # the healthy SKU still ran
        assert any("setup failed" in f for f in report.failures)
        # No data point exists for the poisoned SKU.
        assert not any(
            p.sku == FailingSetupBackend.bad_sku for p in collector.dataset
        )
        # No compute task ever reached the poisoned pool.
        bad_pool = pool_id_for(FailingSetupBackend.bad_sku)
        bad_jobs = [j for j in deployment.batch.jobs.values()
                    if j.pool_id == bad_pool]
        for job in bad_jobs:
            kinds = [t.kind.value for t in job.tasks.values()]
            assert kinds == ["setup"]

    def test_sequential_path_fails_whole_group(self):
        config = make_config(skus=THREE_SKUS[:2], nnodes=[1, 2])
        backend = BlockingStubBackend()
        collector = DataCollector(
            backend=backend, script=get_plugin(config.appname),
            dataset=Dataset(), taskdb=TaskDB(),
        )
        report = collector.collect(generate_scenarios(config))

        # The poisoned SKU saw exactly one setup attempt — no capacity
        # request and no scenario execution afterwards.
        bad = BlockingStubBackend.bad_sku
        assert ("setup", bad) in backend.calls
        assert not any(c[0] in ("ensure", "run") and c[1] == bad
                       for c in backend.calls)
        failed = [r for r in collector.taskdb.all()
                  if r.status is TaskStatus.FAILED]
        assert {r.scenario.sku_name for r in failed} == {bad}
        assert len(failed) == 2
        assert report.failed == 2
        assert report.completed == 2
