"""FleetJobStore: atomic claims, leases, guarded writes, recovery.

The store is the fleet's correctness core, so the contention cases are
exercised directly: racing claims (threads over independent
connections, as separate processes would hold), expired-lease re-claims
with progress preserved, and zombie writers fenced by LeaseLost.
"""

import json
import threading
import time

import pytest

from repro.errors import (
    ConfigError,
    JobNotFound,
    JobStateError,
    LeaseLost,
)
from repro.fleet.jobstore import FleetJobStore, fleet_db_path, new_job_record
from repro.service.jobs import JobRecord


@pytest.fixture
def db_path(tmp_path):
    return str(tmp_path / "fleet.sqlite")


@pytest.fixture
def store(db_path):
    handle = FleetJobStore(db_path, lease_s=5.0)
    yield handle
    handle.close()


def submit(store, deployment="dep-000", kind="collect"):
    record = new_job_record(kind, {"deployment": deployment})
    store.insert(record)
    return record


class TestBasics:
    def test_insert_get_roundtrip(self, store):
        record = submit(store)
        loaded = store.get(record.id)
        assert loaded.id == record.id
        assert loaded.state == "queued"
        assert loaded.deployment == "dep-000"

    def test_get_unknown_raises(self, store):
        with pytest.raises(JobNotFound):
            store.get("job-ghost")

    def test_list_filters_and_orders_newest_first(self, store):
        first = submit(store, deployment="dep-a")
        second = submit(store, deployment="dep-b")
        listed = store.list()
        assert [r.id for r in listed][:2] in (
            [second.id, first.id],  # created_at ties break by id
            [first.id, second.id],
        )
        assert [r.id for r in store.list(deployment="dep-a")] == [first.id]
        assert store.list(state="running") == []

    def test_counts_zero_filled(self, store):
        submit(store)
        counts = store.counts()
        assert counts["queued"] == 1
        assert counts["running"] == 0
        assert counts["done"] == 0

    def test_queue_depth_counts_claimable(self, store):
        assert store.queue_depth() == 0
        submit(store, deployment="dep-a")
        submit(store, deployment="dep-b")
        assert store.queue_depth() == 2
        store.claim("w1")
        assert store.queue_depth() == 1

    def test_new_job_record_validates(self):
        with pytest.raises(ConfigError):
            new_job_record("mine", {"deployment": "d"})
        with pytest.raises(ConfigError):
            new_job_record("collect", {})
        with pytest.raises(ConfigError):
            new_job_record("collect", {"deployment": "d", "bogus": 1})


class TestClaim:
    def test_claim_stamps_worker_and_lease(self, store):
        record = submit(store)
        claimed = store.claim("w1")
        assert claimed.id == record.id
        assert claimed.state == "running"
        assert claimed.worker_id == "w1"
        assert claimed.attempts == 1
        assert claimed.lease_expires_at > time.time()
        assert store.claim("w2") is None  # nothing else to take

    def test_claim_oldest_first(self, store):
        first = submit(store, deployment="dep-a")
        submit(store, deployment="dep-b")
        assert store.claim("w1").id == first.id

    def test_per_deployment_serialization(self, store):
        submit(store, deployment="dep-a")
        parked = submit(store, deployment="dep-a")
        other = submit(store, deployment="dep-b")
        first = store.claim("w1")
        assert first.deployment == "dep-a"
        # The second dep-a job is parked behind the live lease; dep-b
        # is free.
        assert store.claim("w2").id == other.id
        assert store.claim("w3") is None
        store.finish(first.id, "w1", "done", result={})
        assert store.claim("w3").id == parked.id

    def test_cancel_requested_queued_jobs_not_claimable(self, store):
        record = submit(store)
        store.request_cancel(record.id)
        assert store.claim("w1") is None
        assert store.get(record.id).state == "cancelled"


class TestClaimRace:
    @pytest.mark.parametrize("round_seed", range(5))
    def test_two_workers_racing_get_exactly_one_winner(
            self, db_path, store, round_seed):
        """Property over interleavings: whatever the thread timing, a
        single queued job has exactly one claimant.  Each worker uses
        its own connection, exactly like separate processes would."""
        record = submit(store, deployment=f"race-{round_seed}")
        barrier = threading.Barrier(2)
        wins, errors = [], []

        def race(worker_id, delay):
            handle = FleetJobStore(db_path, lease_s=5.0)
            try:
                barrier.wait(timeout=5)
                time.sleep(delay)
                claimed = handle.claim(worker_id)
                if claimed is not None:
                    wins.append((worker_id, claimed.id))
            except Exception as exc:  # noqa: BLE001 - fail the test below
                errors.append(exc)
            finally:
                handle.close()

        jitter = (round_seed % 3) * 0.001
        threads = [
            threading.Thread(target=race, args=("w-a", 0.0)),
            threading.Thread(target=race, args=("w-b", jitter)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert not errors
        assert len(wins) == 1
        assert wins[0][1] == record.id
        assert store.get(record.id).worker_id == wins[0][0]

    def test_many_workers_many_jobs_no_double_claims(self, db_path, store):
        """8 workers fight over 6 jobs on 6 deployments: every job is
        claimed exactly once, no worker sees a duplicate."""
        jobs = [submit(store, deployment=f"dep-{i}") for i in range(6)]
        barrier = threading.Barrier(8)
        claims = []
        lock = threading.Lock()

        def worker(worker_id):
            handle = FleetJobStore(db_path, lease_s=5.0)
            try:
                barrier.wait(timeout=5)
                while True:
                    claimed = handle.claim(worker_id)
                    if claimed is None:
                        return
                    with lock:
                        claims.append(claimed.id)
            finally:
                handle.close()

        threads = [threading.Thread(target=worker, args=(f"w{i}",))
                   for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert sorted(claims) == sorted(record.id for record in jobs)


class TestLeases:
    def test_expired_lease_reclaimed_with_progress_preserved(self, store):
        record = submit(store)
        first = store.claim("w1", now=1000.0)
        store.update_progress(record.id, "w1", {"executed": 3, "total": 8})
        # w1 dies; its lease runs out (update_progress renewed it against
        # the wall clock).  w2 takes over with the partial progress
        # intact and the attempt counter bumped.  (Two lease windows:
        # past expiry by more than the clock-skew tolerance.)
        second = store.claim("w2", now=time.time() + 2 * store.lease_s)
        assert second.id == record.id
        assert second.worker_id == "w2"
        assert second.attempts == first.attempts + 1
        assert second.progress == {"executed": 3, "total": 8}
        assert second.started_at == first.started_at

    def test_live_lease_not_reclaimable(self, store):
        record = submit(store)
        store.claim("w1", now=1000.0)
        assert store.claim("w2", now=1000.0 + store.lease_s - 1) is None
        assert store.get(record.id).worker_id == "w1"

    def test_heartbeat_renews_and_fences(self, store):
        record = submit(store)
        store.claim("w1", now=1000.0)
        assert store.heartbeat(record.id, "w1") is True
        assert store.get(record.id).lease_expires_at > time.time()
        # After a re-claim the old owner's heartbeat returns False.
        store.claim("w2", now=time.time() + 2 * store.lease_s)
        assert store.heartbeat(record.id, "w1") is False
        assert store.get(record.id).worker_id == "w2"

    def test_zombie_update_progress_raises_lease_lost(self, store):
        record = submit(store)
        store.claim("w1", now=1000.0)
        store.claim("w2", now=time.time() + 2 * store.lease_s)
        with pytest.raises(LeaseLost):
            store.update_progress(record.id, "w1", {"executed": 1})

    def test_zombie_finish_raises_lease_lost(self, store):
        record = submit(store)
        store.claim("w1", now=1000.0)
        store.claim("w2", now=time.time() + 2 * store.lease_s)
        with pytest.raises(LeaseLost):
            store.finish(record.id, "w1", "done", result={})
        # The winner still can.
        final = store.finish(record.id, "w2", "done", result={"ok": 1})
        assert final.state == "done"

    def test_forward_clock_jump_cannot_steal_live_lease(self, store):
        """Regression: lease fencing trusted the wall clock, so a worker
        whose clock ran slightly fast saw a live lease as expired and
        double-claimed the job (two writers on one deployment).  A lease
        now only counts as expired once it is past by more than
        ``clock_skew_s``."""
        record = submit(store)
        store.claim("w1", now=1000.0)  # lease until 1005.0
        skew = store.clock_skew_s
        assert skew > 0
        # w2's clock reads just past the expiry — within the tolerance,
        # this must NOT steal the live job (it used to).
        assert store.claim("w2", now=1005.0 + skew / 2) is None
        assert store.queue_depth(now=1005.0 + skew / 2) == 0
        assert store.get(record.id).worker_id == "w1"
        # Once genuinely expired past the tolerance, takeover proceeds.
        taken = store.claim("w2", now=1005.0 + skew + 0.5)
        assert taken is not None and taken.worker_id == "w2"

    def test_backward_clock_step_cannot_freeze_dead_lease(self, store):
        """Regression: a backward wall-clock step used to resurrect a
        dead worker's expired lease — the job stayed unclaimable until
        the clock crawled back up to the stamped expiry.  The store now
        evaluates leases on a monotonic high-water clock."""
        record = submit(store)
        store.claim("w1", now=5000.0)  # w1 dies holding lease -> 5005.0
        horizon = 5005.0 + store.clock_skew_s + 0.5
        assert store.queue_depth(now=horizon) == 1  # visibly reclaimable
        # The wall clock then steps backward.  The dead lease must stay
        # dead (it used to flip back to "live" for the next ~4900s).
        assert store.queue_depth(now=100.0) == 1
        reclaimed = store.claim("w2", now=100.0)
        assert reclaimed is not None
        assert reclaimed.id == record.id and reclaimed.worker_id == "w2"

    def test_zero_skew_restores_exact_expiry(self, db_path):
        store = FleetJobStore(db_path, lease_s=5.0, clock_skew_s=0.0)
        try:
            submit(store)
            store.claim("w1", now=1000.0)
            taken = store.claim("w2", now=1005.1)
            assert taken is not None and taken.worker_id == "w2"
        finally:
            store.close()

    def test_negative_skew_rejected(self, db_path):
        with pytest.raises(ConfigError):
            FleetJobStore(db_path, lease_s=5.0, clock_skew_s=-1.0)

    def test_exhausted_attempts_parked_stale(self, db_path):
        store = FleetJobStore(db_path, lease_s=5.0, max_attempts=2)
        try:
            record = submit(store)
            store.claim("w1", now=1000.0)
            store.claim("w2", now=2000.0)  # attempts now 2 == max
            assert store.claim("w3", now=3000.0) is None
            parked = store.get(record.id)
            assert parked.state == "stale"
            assert "giving up" in parked.error
        finally:
            store.close()


class TestFinishAndCancel:
    def test_finish_states_validated(self, store):
        record = submit(store)
        store.claim("w1")
        with pytest.raises(ConfigError):
            store.finish(record.id, "w1", "running")
        done = store.finish(record.id, "w1", "done", result={"n": 1})
        assert done.finished and done.result == {"n": 1}
        assert done.lease_expires_at is None
        with pytest.raises(JobStateError):
            store.finish(record.id, "w1", "failed", error="again")

    def test_finish_unknown_raises(self, store):
        with pytest.raises(JobNotFound):
            store.finish("job-ghost", "w1", "done")

    def test_cancel_running_is_cooperative(self, store):
        record = submit(store)
        store.claim("w1")
        store.request_cancel(record.id)
        assert store.get(record.id).state == "running"
        assert store.cancel_requested(record.id) is True
        # update_progress reports the flag to the owner.
        assert store.update_progress(record.id, "w1", {"executed": 1}) \
            is True

    def test_prune_keeps_newest_finished(self, store):
        finished = []
        for index in range(5):
            record = submit(store, deployment=f"dep-{index}")
            claimed = store.claim(f"w{index}")
            finished.append(
                store.finish(claimed.id, f"w{index}", "done", result={}))
        live = submit(store, deployment="dep-live")
        assert store.prune(2) == 3
        remaining = {record.id for record in store.list()}
        assert live.id in remaining
        assert finished[-1].id in remaining and finished[-2].id in remaining
        assert finished[0].id not in remaining


class TestWorkersRegistry:
    def test_register_heartbeat_live_deregister(self, store):
        store.register_worker("w1", pid=4242)
        store.register_worker("w2", pid=4343)
        live = store.live_workers()
        assert [w["worker_id"] for w in live] == ["w2", "w1"] or \
            len(live) == 2
        assert {w["pid"] for w in live} == {4242, 4343}
        store.worker_heartbeat("w1")
        assert store.live_workers(timeout_s=0.5)
        store.deregister_worker("w2")
        assert {w["worker_id"] for w in store.live_workers()} == {"w1"}

    def test_stale_heartbeats_drop_out(self, db_path):
        store = FleetJobStore(db_path, lease_s=0.05)
        try:
            store.register_worker("w1", pid=1)
            time.sleep(0.2)  # past the 2-lease horizon
            assert store.live_workers() == []
        finally:
            store.close()


class TestLegacyImport:
    def test_import_moves_files_and_stales_dead_running(self, store,
                                                        tmp_path):
        jobs_dir = tmp_path / "jobs"
        jobs_dir.mkdir()
        done = JobRecord(id="job-old-done", kind="collect",
                         deployment="dep-000", state="done",
                         request={"deployment": "dep-000"}, created_at=1.0,
                         finished_at=2.0, result={})
        dead = JobRecord(id="job-old-run", kind="collect",
                         deployment="dep-001", state="running",
                         request={"deployment": "dep-001"}, created_at=1.0)
        (jobs_dir / "job-old-done.json").write_text(done.to_json())
        (jobs_dir / "job-old-run.json").write_text(dead.to_json())
        (jobs_dir / "garbage.json").write_text("{not json")

        assert store.import_legacy_jobs(str(jobs_dir)) == 2
        assert store.get("job-old-done").state == "done"
        stale = store.get("job-old-run")
        assert stale.state == "stale"
        assert (jobs_dir / "job-old-done.json.migrated").exists()
        assert not (jobs_dir / "job-old-done.json").exists()
        # Idempotent: a sibling worker importing again is a no-op.
        assert store.import_legacy_jobs(str(jobs_dir)) == 0

    def test_import_missing_dir_is_noop(self, store, tmp_path):
        assert store.import_legacy_jobs(str(tmp_path / "nope")) == 0


def test_fleet_db_path(tmp_path):
    assert fleet_db_path(str(tmp_path)) == str(tmp_path / "fleet.sqlite")


def test_store_rejects_bad_parameters(db_path):
    with pytest.raises(ConfigError):
        FleetJobStore(db_path, lease_s=0)
    with pytest.raises(ConfigError):
        FleetJobStore(db_path, max_attempts=0)


def test_payload_row_mirror_consistent(store):
    """The mirrored columns always agree with the JSON payload."""
    record = submit(store)
    store.claim("w1")
    store.update_progress(record.id, "w1", {"executed": 1})
    row = store._conn.execute(
        "SELECT state, worker_id, attempts, payload FROM jobs WHERE id = ?",
        (record.id,)).fetchone()
    payload = json.loads(row[3])
    assert (row[0], row[1], row[2]) == (
        payload["state"], payload["worker_id"], payload["attempts"])