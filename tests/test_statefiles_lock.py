"""Advisory file-locking tests: concurrent writers must not lose updates.

The service's job workers (and any number of CLI processes) share one
state directory; :class:`repro.core.statefiles.FileLock` serializes the
read-modify-write cycles on the deployments index and the task-DB /
dataset writes.  These tests hammer the paths with concurrent writers
and assert nothing is lost or corrupted.
"""

import json
import threading

import pytest

from repro.core.dataset import DataPoint, Dataset
from repro.core.deployer import Deployer
from repro.core.statefiles import FileLock, StateStore, file_lock
from repro.core.taskdb import TaskDB
from tests.conftest import make_config


class TestFileLock:
    def test_reentrant_within_a_thread(self, tmp_path):
        lock = FileLock(str(tmp_path / "x.json"))
        with lock:
            with lock:  # must not deadlock
                assert lock.held
            assert lock.held
        assert not lock.held

    def test_release_without_acquire_raises(self, tmp_path):
        with pytest.raises(RuntimeError):
            FileLock(str(tmp_path / "x.json")).release()

    def test_mutual_exclusion_across_lock_instances(self, tmp_path):
        """Two FileLock objects on one path (like two processes) must
        serialize their critical sections."""
        path = str(tmp_path / "shared.json")
        inside = {"count": 0, "max": 0}
        meter = threading.Lock()

        def writer():
            for _ in range(20):
                with file_lock(path):
                    with meter:
                        inside["count"] += 1
                        inside["max"] = max(inside["max"], inside["count"])
                    with meter:
                        inside["count"] -= 1

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert inside["max"] == 1

    def test_lock_file_is_a_sidecar(self, tmp_path):
        path = str(tmp_path / "data.json")
        with file_lock(path):
            pass
        assert (tmp_path / "data.json.lock").exists()
        assert not (tmp_path / "data.json").exists()  # lock never creates it


class TestConcurrentIndexWriters:
    def test_no_lost_deployments_with_two_concurrent_writers(self, tmp_path):
        """Regression: two stores (one per thread, like two processes)
        interleaving save_deployment must not lose each other's records
        to a read-modify-write race."""
        root = str(tmp_path / "state")
        count_per_writer = 12
        errors = []

        def writer(worker: int):
            try:
                store = StateStore(root=root)  # own instance, own lock fd
                deployer = Deployer()
                for i in range(count_per_writer):
                    config = make_config(rgprefix=f"w{worker}rg")
                    deployment = deployer.deploy(config, suffix=f"-{i:03d}")
                    store.save_deployment(deployment)
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(w,))
                   for w in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        names = {r["name"] for r in StateStore(root=root).list_deployments()}
        expected = {
            f"w{w}rg-{i:03d}"
            for w in range(2) for i in range(count_per_writer)
        }
        assert names == expected  # nothing lost, nothing extra

    def test_index_stays_valid_json_throughout(self, tmp_path):
        root = str(tmp_path / "state")
        store = StateStore(root=root)
        stop = threading.Event()
        bad = []

        def reader():
            while not stop.is_set():
                try:
                    store.list_deployments()
                except Exception as exc:  # pragma: no cover
                    bad.append(exc)

        thread = threading.Thread(target=reader)
        thread.start()
        deployer = Deployer()
        for i in range(10):
            deployment = deployer.deploy(make_config(rgprefix="jrg"),
                                         suffix=f"-{i:03d}")
            store.save_deployment(deployment)
        stop.set()
        thread.join(timeout=30)
        assert not bad


class TestConcurrentDataWriters:
    def _point(self, i: int) -> DataPoint:
        return DataPoint(appname="lammps", sku="Standard_HB120rs_v3",
                         nnodes=1, ppn=100, exec_time_s=float(i),
                         cost_usd=0.1)

    def test_concurrent_taskdb_saves_never_corrupt_the_file(self, tmp_path):
        path = str(tmp_path / "tasks.json")
        errors = []

        def writer(worker: int):
            try:
                db = TaskDB(path=path)
                from repro.core.scenarios import Scenario

                db.add_scenarios([
                    Scenario(scenario_id=f"s{worker}-{i}",
                             sku_name="Standard_HB120rs_v3", nnodes=1,
                             ppn=100, appname="lammps", appinputs={})
                    for i in range(5)
                ])
                for _ in range(10):
                    db.save()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(w,))
                   for w in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        # Whatever write landed last, the file is complete, valid JSON
        # with one writer's full record set (never an interleaved mix).
        loaded = TaskDB.load(path)
        ids = {r.scenario.scenario_id for r in loaded.all()}
        assert ids in (
            {f"s0-{i}" for i in range(5)},
            {f"s1-{i}" for i in range(5)},
        )

    def test_concurrent_dataset_saves_stay_valid_jsonl(self, tmp_path):
        path = str(tmp_path / "data.jsonl")
        errors = []

        def writer(worker: int):
            try:
                dataset = Dataset(path=path)
                for i in range(10):
                    dataset.append(self._point(worker * 100 + i))
                    dataset.save()
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(w,))
                   for w in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        with open(path) as fh:
            lines = [json.loads(line) for line in fh if line.strip()]
        assert len(lines) == 10  # one complete writer's view, not a mix


class TestConcurrentCollectTransactions:
    def test_two_concurrent_collects_on_one_deployment_serialize(
            self, tmp_path):
        """A sweep holds the task-DB/dataset locks from load to save:
        a second session collecting the same deployment waits, then
        *resumes* on fresh state (0 executions) instead of re-running
        the scenarios and clobbering the first sweep's points."""
        from repro.api import AdvisorSession

        state_dir = str(tmp_path / "state")
        info = AdvisorSession(state_dir=state_dir).deploy(
            make_config(rgprefix="txnrg"))
        results = {}
        errors = []
        barrier = threading.Barrier(2)

        def collector(label: str):
            try:
                session = AdvisorSession(state_dir=state_dir)
                barrier.wait(timeout=10)
                results[label] = session.collect(deployment=info.name)
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=collector, args=(label,))
                   for label in ("a", "b")]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        executed = sorted(r.executed for r in results.values())
        assert executed == [0, 2]  # one ran the sweep, one resumed
        # Both report the full dataset; on disk there are exactly the
        # two scenario points, no duplicates and nothing lost.
        assert {r.dataset_points for r in results.values()} == {2}
        final = AdvisorSession(state_dir=state_dir).dataset(info.name)
        assert len(final) == 2
        keys = {(p.sku, p.nnodes) for p in final}
        assert len(keys) == 2

    def test_concurrent_deploys_never_share_a_name(self, tmp_path):
        """Name allocation holds the index lock from taken-names read to
        save, so two deploys with one prefix cannot both claim -000."""
        from repro.api import AdvisorSession

        state_dir = str(tmp_path / "state")
        names = []
        errors = []
        barrier = threading.Barrier(2)

        def deployer():
            try:
                session = AdvisorSession(state_dir=state_dir)
                barrier.wait(timeout=10)
                names.append(session.deploy(
                    make_config(rgprefix="racerg")).name)
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=deployer) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        assert sorted(names) == ["racerg-000", "racerg-001"]
        on_disk = {r["name"] for r in
                   StateStore(root=state_dir).list_deployments()}
        assert on_disk == {"racerg-000", "racerg-001"}
