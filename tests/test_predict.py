"""Tests for the prediction layer (repro.predict)."""

import numpy as np
import pytest

from repro.core.config import MainConfig
from repro.core.dataset import DataPoint, Dataset
from repro.core.scenarios import Scenario, generate_scenarios
from repro.errors import SamplingError
from repro.predict.features import (
    FeatureSpec,
    design_matrix,
    featurize_point,
    featurize_scenario,
)
from repro.predict.knn import KnnModel
from repro.predict.predictor import PerformancePredictor
from repro.predict.regression import RidgeModel, cross_validate, mape
from tests.conftest import PAPER_SKUS, collect_config, make_config


def scenario(sku="Standard_HB120rs_v3", nnodes=4, bf="30"):
    return Scenario(scenario_id=f"s-{sku}-{nnodes}-{bf}", sku_name=sku,
                    nnodes=nnodes, ppn=120, appname="lammps",
                    appinputs={"BOXFACTOR": bf})


@pytest.fixture(scope="module")
def training_dataset():
    """LAMMPS over 3 SKUs x 5 node counts x 2 box factors."""
    config = MainConfig.from_dict({
        "subscription": "train", "skus": PAPER_SKUS, "rgprefix": "train",
        "appsetupurl": "", "nnodes": [2, 3, 4, 8, 16], "appname": "lammps",
        "region": "southcentralus", "ppr": 100,
        "appinputs": {"BOXFACTOR": ["20", "30"]},
    })
    return collect_config(config)


class TestFeatures:
    def test_spec_with_app_model(self, training_dataset):
        spec = FeatureSpec.for_dataset(training_dataset.points())
        assert spec.appname == "lammps"
        assert "log_work" in spec.names

    def test_spec_model_free(self, training_dataset):
        spec = FeatureSpec.for_dataset(training_dataset.points(),
                                       use_app_model=False)
        assert spec.appname is None
        assert "log_input_BOXFACTOR" in spec.names

    def test_vector_dimensions_consistent(self, training_dataset):
        spec = FeatureSpec.for_dataset(training_dataset.points())
        X = design_matrix(spec, training_dataset.points())
        assert X.shape == (len(training_dataset), spec.dim)
        v = featurize_scenario(spec, scenario())
        assert v.shape == (spec.dim,)

    def test_point_and_scenario_agree(self, training_dataset):
        spec = FeatureSpec.for_dataset(training_dataset.points())
        point = training_dataset.points()[0]
        s = Scenario(scenario_id="x", sku_name=point.sku,
                     nnodes=point.nnodes, ppn=point.ppn,
                     appname=point.appname, appinputs=point.appinputs)
        assert np.allclose(featurize_point(spec, point),
                           featurize_scenario(spec, s))

    def test_features_finite(self, training_dataset):
        spec = FeatureSpec.for_dataset(training_dataset.points())
        X = design_matrix(spec, training_dataset.points())
        assert np.isfinite(X).all()


class TestRidge:
    def test_fits_synthetic_loglinear(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(60, 3))
        times = np.exp(1.0 + X @ np.array([0.5, -1.0, 0.2]))
        model = RidgeModel(alpha=1e-6).fit(X, times)
        assert mape(times, model.predict(X)) < 0.01

    def test_rejects_bad_input(self):
        with pytest.raises(SamplingError):
            RidgeModel().fit(np.ones((3, 2)), np.array([1.0, -1.0, 2.0]))
        with pytest.raises(SamplingError):
            RidgeModel().fit(np.ones((1, 2)), np.array([1.0]))
        with pytest.raises(SamplingError):
            RidgeModel().predict(np.ones((1, 2)))

    def test_constant_feature_tolerated(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        times = np.exp(np.arange(10.0) * 0.1 + 1)
        model = RidgeModel().fit(X, times)
        assert np.isfinite(model.predict(X)).all()

    def test_cross_validation(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(50, 3))
        times = np.exp(X @ np.array([0.3, 0.3, 0.3]) + 2)
        mean_mape, folds = cross_validate(X, times, folds=5)
        assert len(folds) == 5
        assert mean_mape < 0.05

    def test_cv_validation_errors(self):
        X = np.ones((3, 2))
        with pytest.raises(SamplingError):
            cross_validate(X, np.ones(3), folds=1)
        with pytest.raises(SamplingError):
            cross_validate(X, np.ones(3), folds=5)


class TestKnn:
    def test_exact_match_returns_training_value(self):
        X = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]])
        times = np.array([10.0, 20.0, 30.0])
        model = KnnModel(k=2).fit(X, times)
        assert model.predict_one(np.array([1.0, 1.0])) == pytest.approx(20.0)

    def test_interpolates_between_neighbors(self):
        X = np.array([[0.0], [2.0]])
        times = np.array([10.0, 40.0])
        model = KnnModel(k=2).fit(X, times)
        mid = model.predict_one(np.array([1.0]))
        assert 10.0 < mid < 40.0

    def test_k_validation(self):
        with pytest.raises(SamplingError):
            KnnModel(k=0).fit(np.ones((2, 1)), np.ones(2))


class TestPerformancePredictor:
    def test_interpolation_accuracy(self, training_dataset):
        """Held-in-range predictions land within ~15% of the simulator."""
        predictor = PerformancePredictor().fit(training_dataset, cv_folds=5)
        from repro.perf.registry import get_model
        from repro.cloud.skus import get_sku

        target = scenario(nnodes=6, bf="30")  # unmeasured node count
        predicted = predictor.predict_time(target)
        actual = get_model("lammps").simulate(
            get_sku(target.sku_name), 6, 120, target.appinputs
        ).exec_time_s
        assert predicted == pytest.approx(actual, rel=0.15)

    def test_cross_input_generalisation(self, training_dataset):
        """Predict an unseen BOXFACTOR: the physics features carry it."""
        predictor = PerformancePredictor().fit(training_dataset)
        from repro.perf.registry import get_model
        from repro.cloud.skus import get_sku

        target = scenario(nnodes=8, bf="25")  # input never measured
        predicted = predictor.predict_time(target)
        actual = get_model("lammps").simulate(
            get_sku(target.sku_name), 8, 120, target.appinputs
        ).exec_time_s
        assert predicted == pytest.approx(actual, rel=0.25)

    def test_cv_mape_reported(self, training_dataset):
        predictor = PerformancePredictor().fit(training_dataset, cv_folds=5)
        assert predictor.cv_mape is not None
        assert predictor.cv_mape < 0.25

    def test_predicted_front_no_executions(self, training_dataset):
        """The paper's end state: a Pareto front with zero cloud runs."""
        predictor = PerformancePredictor().fit(training_dataset)
        config = make_config(
            skus=PAPER_SKUS, nnodes=[3, 4, 8, 16],
            appinputs={"BOXFACTOR": ["30"]},
        )
        rows = predictor.predicted_front(generate_scenarios(config))
        assert rows
        assert all(r.predicted for r in rows)
        # Shape of Listing 4 survives prediction: v3 dominates, time-sorted.
        assert rows[0].sku_short == "hb120rs_v3"
        times = [r.exec_time_s for r in rows]
        assert times == sorted(times)

    def test_predict_cost_uses_price_catalog(self, training_dataset):
        predictor = PerformancePredictor().fit(training_dataset)
        p = predictor.predict(scenario(nnodes=4, bf="30"))
        assert p.cost_usd == pytest.approx(
            4 * 3.60 * p.exec_time_s / 3600.0
        )
        assert p.as_datapoint().predicted

    def test_knn_backend(self, training_dataset):
        predictor = PerformancePredictor(backend="knn", k=4).fit(
            training_dataset
        )
        assert predictor.predict_time(scenario(nnodes=4, bf="30")) > 0

    def test_unknown_backend(self, training_dataset):
        with pytest.raises(SamplingError):
            PerformancePredictor(backend="forest").fit(training_dataset)

    def test_needs_enough_data(self):
        tiny = Dataset([
            DataPoint(appname="lammps", sku="Standard_HC44rs", nnodes=1,
                      ppn=44, exec_time_s=10, cost_usd=0.01,
                      appinputs={"BOXFACTOR": "4"}),
        ])
        with pytest.raises(SamplingError, match="at least 3"):
            PerformancePredictor().fit(tiny)

    def test_feature_importances(self, training_dataset):
        predictor = PerformancePredictor().fit(training_dataset)
        importances = predictor.feature_importances()
        assert set(importances) == set(
            FeatureSpec.for_dataset(training_dataset.points()).names
        )
        # Work and parallelism must matter most for a scaling sweep.
        top = sorted(importances, key=importances.get, reverse=True)[:4]
        assert any(name in top for name in
                   ("log_work", "log_ranks", "log_nodes"))

    def test_model_free_mode(self, training_dataset):
        predictor = PerformancePredictor(use_app_model=False).fit(
            training_dataset
        )
        assert predictor.predict_time(scenario(nnodes=4, bf="30")) > 0
