"""Stateful property tests (hypothesis rule-based state machines).

Model-based testing of the two most state-heavy substrates:

* the shared filesystem against a plain dict reference model;
* Batch pool lifecycle against quota/billing/state invariants.
"""

import string

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.clock import SimClock
from repro.batch.node import NodeState
from repro.batch.pool import BatchPool, PoolState
from repro.cloud.skus import get_sku
from repro.cloud.subscription import Subscription
from repro.cluster.filesystem import SharedFilesystem

names = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6)
contents = st.text(max_size=50)


class FilesystemMachine(RuleBasedStateMachine):
    """The simulated NFS tree must behave like a dict of paths."""

    def __init__(self):
        super().__init__()
        self.fs = SharedFilesystem()
        self.model = {}  # path -> content

    def _path(self, a, b):
        return f"/{a}/{b}"

    @rule(a=names, b=names, text=contents)
    def write(self, a, b, text):
        path = self._path(a, b)
        self.fs.write_text(path, text)
        self.model[path] = text

    @rule(a=names, b=names, text=contents)
    def append(self, a, b, text):
        path = self._path(a, b)
        self.fs.append_text(path, text)
        self.model[path] = self.model.get(path, "") + text

    @rule(a=names, b=names)
    def remove_if_exists(self, a, b):
        path = self._path(a, b)
        if path in self.model:
            self.fs.remove(path)
            del self.model[path]

    @rule(a=names)
    def rmtree_if_exists(self, a):
        prefix = f"/{a}/"
        if self.fs.isdir(f"/{a}"):
            self.fs.rmtree(f"/{a}")
            self.model = {
                p: c for p, c in self.model.items()
                if not p.startswith(prefix)
            }

    @invariant()
    def contents_match_model(self):
        assert self.fs.file_count == len(self.model)
        for path, content in self.model.items():
            assert self.fs.read_text(path) == content

    @invariant()
    def usage_matches_model(self):
        assert self.fs.used_bytes == sum(len(c) for c in self.model.values())


class PoolMachine(RuleBasedStateMachine):
    """Pool lifecycle: node states, quota and billing stay consistent."""

    def __init__(self):
        super().__init__()
        self.clock = SimClock()
        self.sub = Subscription(name="prop")
        self.sku = get_sku("Standard_HC44rs")
        self.pool = BatchPool(
            pool_id="prop-pool",
            sku=self.sku,
            region="southcentralus",
            subscription=self.sub,
            clock=self.clock,
            hourly_price=3.168,
        )
        self.leases = []

    @precondition(lambda self: self.pool.state is PoolState.ACTIVE)
    @rule(target_extra=st.integers(min_value=0, max_value=6))
    def resize(self, target_extra):
        busy = len(self.pool.running_nodes)
        self.pool.resize(busy + target_extra)

    @precondition(lambda self: self.pool.state is PoolState.ACTIVE
                  and len(self.pool.idle_nodes) > 0)
    @rule()
    def lease_one(self):
        self.leases.append(self.pool.acquire_nodes(1))

    @precondition(lambda self: bool(self.leases))
    @rule(seconds=st.floats(min_value=0, max_value=1000, allow_nan=False))
    def finish_task(self, seconds):
        nodes = self.leases.pop()
        self.clock.advance(seconds)
        self.pool.release_nodes(nodes)

    @invariant()
    def node_accounting_consistent(self):
        running = len(self.pool.running_nodes)
        idle = len(self.pool.idle_nodes)
        assert running == sum(len(lease) for lease in self.leases)
        assert self.pool.current_nodes == running + idle

    @invariant()
    def quota_matches_live_nodes(self):
        used = self.sub.quota.used_for("southcentralus", self.sku.family)
        assert used == self.pool.current_nodes * self.sku.cores

    @invariant()
    def billing_monotone_nonnegative(self):
        assert self.pool.accrued_cost_usd >= 0
        # Cost accrues only when nodes exist: zero nodes at time zero = zero.
        if self.clock.now == 0:
            assert self.pool.accrued_cost_usd == 0

    @invariant()
    def no_gone_nodes_counted(self):
        for node in self.pool.nodes:
            if node.state is NodeState.GONE:
                assert node.released_at is not None


TestFilesystemStateful = FilesystemMachine.TestCase
TestFilesystemStateful.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None
)
TestPoolStateful = PoolMachine.TestCase
TestPoolStateful.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None
)
