"""Incremental persistence end to end: crash safety, migration, parity.

The acceptance contract of the ``repro.store`` refactor:

* a sweep killed mid-flight keeps **every** completed point and task
  status on disk (no end-of-sweep save required) — under both engines;
* scheduled and sequential collection leave byte-identical JSONL files
  and row-identical SQLite corpora;
* an existing JSON state directory migrates to SQLite in place with
  identical advice output before and after.
"""

import os

import pytest

from repro.api import AdvisorSession
from repro.core.query import Query
from repro.core.statefiles import StateStore
from tests.conftest import make_config

BACKENDS = ("jsonl", "sqlite")


@pytest.fixture(params=BACKENDS)
def backend(request, monkeypatch):
    monkeypatch.setenv("REPRO_STORE", request.param)
    return request.param


def _config(**kwargs):
    kwargs.setdefault("skus", ["Standard_HB120rs_v3", "Standard_HC44rs"])
    kwargs.setdefault("nnodes", [1, 2])
    return make_config(**kwargs)


class Boom(Exception):
    pass


class TestKillMidSweep:
    def test_completed_points_survive_an_aborted_sweep(self, tmp_path,
                                                       backend):
        """Abort after the second scenario outcome: both completed
        points and their task records must already be on disk."""
        state_dir = str(tmp_path / "state")
        session = AdvisorSession(state_dir=state_dir)
        info = session.deploy(_config())
        seen = []

        def bomb(report, total):
            seen.append(report.completed)
            if report.completed >= 2:
                raise Boom("simulated crash")

        with pytest.raises(Boom):
            session.collect(deployment=info.name, progress=bomb)
        assert max(seen) == 2

        # A *fresh* process (new session, new store handles) sees the
        # two completed points and resumes the remaining scenarios.
        fresh = AdvisorSession(state_dir=state_dir)
        assert len(fresh.dataset(info.name)) == 2
        statuses = fresh.taskdb(info.name).counts()
        assert statuses["completed"] == 2
        assert statuses["pending"] == 2
        resumed = fresh.collect(deployment=info.name)
        assert resumed.executed == 2  # only the unfinished half
        assert resumed.dataset_points == 4

    def test_kill_before_any_save_still_persists_first_point(
            self, tmp_path, backend):
        state_dir = str(tmp_path / "state")
        session = AdvisorSession(state_dir=state_dir)
        info = session.deploy(_config())

        def bomb(report, total):
            raise Boom("die on the very first outcome")

        with pytest.raises(Boom):
            session.collect(deployment=info.name, progress=bomb)
        fresh = AdvisorSession(state_dir=state_dir)
        assert len(fresh.dataset(info.name)) == 1


class TestBackendParity:
    def test_both_backends_collect_identical_measurements(self, tmp_path,
                                                          monkeypatch):
        points = {}
        for backend in BACKENDS:
            monkeypatch.setenv("REPRO_STORE", backend)
            session = AdvisorSession(state_dir=str(tmp_path / backend))
            info = session.deploy(_config())
            result = session.collect(deployment=info.name)
            assert result.store_backend == backend
            points[backend] = session.dataset(info.name).points()
        assert points["jsonl"] == points["sqlite"]

    def _sweep(self, state_dir, sequential_walk, monkeypatch):
        """One full sweep; ``sequential_walk`` forces Algorithm 1's
        literal blocking loop instead of the scheduler at 1 pool."""
        from repro.backends.azurebatch import AzureBatchBackend

        if sequential_walk:
            monkeypatch.setattr(AzureBatchBackend, "supports_concurrency",
                                property(lambda self: False))
        session = AdvisorSession(state_dir=state_dir)
        info = session.deploy(_config())
        session.collect(deployment=info.name, max_parallel_pools=1)
        monkeypatch.undo()
        return session, info

    def test_scheduled_and_sequential_files_are_byte_identical(
            self, tmp_path, monkeypatch):
        """The incremental write path preserves the scheduler-equals-
        sequential guarantee down to the stored JSONL bytes."""
        monkeypatch.setenv("REPRO_STORE", "jsonl")
        blobs = {}
        for label, walk in (("sched", False), ("seq", True)):
            session, info = self._sweep(str(tmp_path / label), walk,
                                        monkeypatch)
            monkeypatch.setenv("REPRO_STORE", "jsonl")
            path = session.store.dataset_path(info.name)
            with open(path, "rb") as fh:
                blobs[label] = fh.read()
        assert blobs["sched"] == blobs["seq"]

    def test_scheduled_and_sequential_sqlite_rows_identical(
            self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", "sqlite")
        rows = {}
        for label, walk in (("sched", False), ("seq", True)):
            session, info = self._sweep(str(tmp_path / label), walk,
                                        monkeypatch)
            monkeypatch.setenv("REPRO_STORE", "sqlite")
            rows[label] = session.data_store(info.name).query_points()
        assert rows["sched"] == rows["seq"]

    def test_higher_parallelism_keeps_measurements_identical(
            self, tmp_path, backend):
        """Overlapped pools may reorder appends and shift timestamps,
        but the stored measurements are the same set."""

        def measured(session, name):
            return sorted(
                (p.sku, p.nnodes, p.inputs_key(), p.exec_time_s, p.cost_usd)
                for p in session.dataset(name)
            )

        results = {}
        for label, pools in (("p1", 1), ("p2", 2)):
            session = AdvisorSession(state_dir=str(tmp_path / label))
            info = session.deploy(_config())
            session.collect(deployment=info.name, max_parallel_pools=pools)
            results[label] = measured(session, info.name)
        assert results["p1"] == results["p2"]


class TestInPlaceMigration:
    def test_jsonl_state_dir_migrates_with_identical_advice(self, tmp_path,
                                                            monkeypatch):
        state_dir = str(tmp_path / "state")
        # 1. Collect under the legacy JSONL engine.
        monkeypatch.setenv("REPRO_STORE", "jsonl")
        session = AdvisorSession(state_dir=state_dir)
        info = session.deploy(_config())
        session.collect(deployment=info.name)
        before = session.advise(deployment=info.name)
        legacy_dataset = session.store.dataset_path(info.name)
        assert os.path.exists(legacy_dataset)

        # 2. Re-open the same state dir under the SQLite default.
        monkeypatch.setenv("REPRO_STORE", "sqlite")
        migrated = AdvisorSession(state_dir=state_dir)
        after = migrated.advise(deployment=info.name)
        assert after.rows == before.rows
        assert after.dataset_points == before.dataset_points
        # Migration happened in place: the database exists, the legacy
        # files are frozen aside, and the task DB still knows everything
        # completed (a resume would re-run nothing).
        assert os.path.exists(migrated.store.db_path(info.name))
        assert not os.path.exists(legacy_dataset)
        assert os.path.exists(legacy_dataset + ".migrated")
        resumed = migrated.collect(deployment=info.name)
        assert resumed.executed == 0

    def test_migrated_store_keeps_appending(self, tmp_path, monkeypatch):
        state_dir = str(tmp_path / "state")
        monkeypatch.setenv("REPRO_STORE", "jsonl")
        session = AdvisorSession(state_dir=state_dir)
        info = session.deploy(_config(skus=["Standard_HB120rs_v3"]))
        session.collect(deployment=info.name)

        monkeypatch.setenv("REPRO_STORE", "sqlite")
        migrated = AdvisorSession(state_dir=state_dir)
        assert len(migrated.dataset(info.name)) == 2


class TestSessionQueryPushdown:
    def test_datapoints_pagination_and_total(self, tmp_path, backend):
        session = AdvisorSession(state_dir=str(tmp_path / "state"))
        info = session.deploy(_config())
        session.collect(deployment=info.name)
        page = session.datapoints(info.name, Query(limit=3))
        assert page.total == 4
        assert len(page.points) == 3
        assert page.has_more
        rest = session.datapoints(info.name, Query(limit=3, offset=3))
        assert len(rest.points) == 1
        assert not rest.has_more
        assert page.points + rest.points == tuple(
            session.dataset(info.name).points()
        )
        assert page.store_backend == backend

    def test_filtered_count_matches_query(self, tmp_path, backend):
        session = AdvisorSession(state_dir=str(tmp_path / "state"))
        info = session.deploy(_config())
        session.collect(deployment=info.name)
        q = Query(sku="hb120rs_v3")
        assert session.count_points(info.name, q) == 2
        assert len(session.query_points(info.name, q)) == 2

    def test_query_dataset_cold_cache_pushes_down(self, tmp_path, backend):
        state_dir = str(tmp_path / "state")
        session = AdvisorSession(state_dir=state_dir)
        info = session.deploy(_config())
        session.collect(deployment=info.name)
        # A brand-new session has no cached dataset: the filter runs in
        # the storage engine and returns only the matching points.
        cold = AdvisorSession(state_dir=state_dir)
        subset = cold.query_dataset(info.name, Query(nnodes=(2,)))
        assert sorted(p.sku for p in subset) == sorted(
            ["Standard_HB120rs_v3", "Standard_HC44rs"]
        )
        assert all(p.nnodes == 2 for p in subset)


class TestPurge:
    def test_shutdown_purge_removes_orphaned_state(self, tmp_path, backend):
        """Regression (ISSUE 5 satellite): remove_deployment used to drop
        only the index entry, leaving dataset/taskdb/store and lock
        files orphaned forever."""
        state_dir = str(tmp_path / "state")
        session = AdvisorSession(state_dir=state_dir)
        info = session.deploy(_config())
        session.collect(deployment=info.name)
        session.plot(deployment=info.name)
        assert session.store.data_files(info.name)

        session.shutdown(info.name, purge_data=True)
        assert session.store.data_files(info.name) == ()
        leftovers = [
            f for f in os.listdir(state_dir)
            if info.name in f and not f.startswith("archive")
        ]
        assert leftovers == []  # no data, no .lock, no plots dir

    def test_default_shutdown_keeps_data(self, tmp_path, backend):
        session = AdvisorSession(state_dir=str(tmp_path / "state"))
        info = session.deploy(_config())
        session.collect(deployment=info.name)
        session.shutdown(info.name)
        assert session.store.data_files(info.name)

    def test_store_level_purge_regression(self, tmp_path, backend):
        """StateStore.remove_deployment(purge_data=True) cleans the lock
        sidecars too."""
        session = AdvisorSession(state_dir=str(tmp_path / "state"))
        info = session.deploy(_config(skus=["Standard_HB120rs_v3"]))
        session.collect(deployment=info.name)
        store = StateStore(root=session.store.root)
        store.remove_deployment(info.name, purge_data=True)
        assert store.data_files(info.name) == ()
        assert not os.path.exists(
            store.dataset_path(info.name) + ".lock")
        assert not os.path.exists(store.taskdb_path(info.name) + ".lock")


class TestReadPathSideEffects:
    def test_listing_never_created_deployments_creates_no_files(
            self, tmp_path, backend):
        """`deploy list` over never-collected deployments must not
        litter the state dir with empty store databases."""
        state_dir = str(tmp_path / "state")
        session = AdvisorSession(state_dir=state_dir)
        for i in range(3):
            session.deploy(_config(rgprefix=f"ro{i}rg",
                                   skus=["Standard_HB120rs_v3"],
                                   nnodes=[1]))
        fresh = AdvisorSession(state_dir=state_dir)
        infos = fresh.list_deployments()
        assert [i.dataset_points for i in infos] == [0, 0, 0]
        # Lock sidecars appear at deploy time (pre-existing behavior);
        # what must NOT appear is any data file.
        files = [f for f in os.listdir(state_dir)
                 if not f.endswith(".lock")]
        assert not any(f.startswith("store-") for f in files)
        assert not any(f.startswith("dataset-") for f in files)

    def test_must_exist_read_does_not_create_database(self, tmp_path,
                                                      backend):
        import pytest as _pytest

        from repro.errors import ReproError

        session = AdvisorSession(state_dir=str(tmp_path / "state"))
        info = session.deploy(_config(skus=["Standard_HB120rs_v3"],
                                      nnodes=[1]))
        with _pytest.raises(ReproError, match="run collect first"):
            session.dataset(info.name)
        assert session.store.data_files(info.name) == ()


class TestFilterSemantics:
    def test_empty_nnodes_sequence_matches_nothing(self):
        """Historical Dataset.filter contract: nnodes=[] is an empty
        allow-set (matches nothing), unlike nnodes=None (no filter)."""
        from repro.core.dataset import DataPoint, Dataset

        data = Dataset([DataPoint(
            appname="lammps", sku="Standard_HB120rs_v3", nnodes=2,
            ppn=1, exec_time_s=1.0, cost_usd=0.1,
        )])
        assert len(data.filter(nnodes=[])) == 0
        assert len(data.filter(nnodes=None)) == 1
        assert len(data.filter(nnodes=[2])) == 1
