"""SKU catalog tests."""

import pytest

from repro.cloud.skus import (
    IB_EDR,
    IB_HDR,
    SKU_CATALOG,
    get_sku,
    list_skus,
)
from repro.errors import SkuNotAvailable


class TestCatalogContents:
    def test_paper_skus_present(self):
        for name in ("Standard_HC44rs", "Standard_HB120rs_v2",
                     "Standard_HB120rs_v3"):
            assert name in SKU_CATALOG

    def test_hc44_specs(self):
        sku = get_sku("Standard_HC44rs")
        assert sku.cores == 44
        assert sku.interconnect is IB_EDR
        assert sku.cpu_arch == "skylake"

    def test_hb120v3_specs(self):
        sku = get_sku("Standard_HB120rs_v3")
        assert sku.cores == 120
        assert sku.interconnect is IB_HDR
        assert sku.cpu_arch == "milan"
        # HBv3: 448 GiB RAM, very large L3.
        assert sku.ram_bytes == pytest.approx(448 * 1024**3)
        assert sku.l3_bytes == pytest.approx(512 * 1024**2)

    def test_paper_core_math(self):
        """Paper: 'three VM types, each containing 44, 120, and 120 cores'
        and scenarios 'run up to 1,920 cores' (16 x 120)."""
        cores = [get_sku(n).cores for n in
                 ("hc44rs", "hb120rs_v2", "hb120rs_v3")]
        assert cores == [44, 120, 120]
        assert 16 * 120 == 1920

    def test_peak_flops_positive(self):
        for sku in SKU_CATALOG.values():
            assert sku.peak_flops > 0


class TestLookup:
    def test_exact_name(self):
        assert get_sku("Standard_HB120rs_v2").name == "Standard_HB120rs_v2"

    def test_case_insensitive(self):
        assert get_sku("standard_hb120rs_v2").name == "Standard_HB120rs_v2"

    def test_short_name(self):
        assert get_sku("hb120rs_v3").name == "Standard_HB120rs_v3"

    def test_short_name_property(self):
        assert get_sku("Standard_HB120rs_v3").short_name == "hb120rs_v3"

    def test_unknown_raises(self):
        with pytest.raises(SkuNotAvailable):
            get_sku("Standard_Nonexistent_v9")


class TestFilters:
    def test_rdma_only(self):
        rdma = list_skus(rdma_only=True)
        assert rdma
        assert all(s.has_rdma for s in rdma)

    def test_min_cores(self):
        big = list_skus(min_cores=100)
        assert big
        assert all(s.cores >= 100 for s in big)

    def test_non_rdma_skus_exist(self):
        assert any(not s.has_rdma for s in list_skus())

    def test_interconnect_bandwidths_ordered(self):
        # NDR > HDR > EDR per-node injection bandwidth.
        v4 = get_sku("Standard_HB176rs_v4").interconnect
        v3 = get_sku("Standard_HB120rs_v3").interconnect
        hc = get_sku("Standard_HC44rs").interconnect
        assert v4.bandwidth_Bps > v3.bandwidth_Bps > hc.bandwidth_Bps
