"""Appkit contract tests: Table I env vars, HPCADVISORVAR, bash interop."""

import pytest

from repro.appkit.context import AppRunContext
from repro.appkit.envvars import TABLE1_VARS, build_task_env
from repro.appkit.metricvars import MARKER, extract_vars, format_var
from repro.appkit.script import (
    AppScript,
    parse_bash_script,
    RUN_FN,
    SETUP_FN,
)
from repro.appkit.plugins.lammps import LISTING2_BASH
from repro.cloud.skus import get_sku
from repro.cluster.filesystem import SharedFilesystem
from repro.cluster.host import make_hosts
from repro.errors import AppScriptError


class TestTable1:
    """The environment contract of the paper's Table I."""

    def test_all_documented_variables_present(self):
        assert set(TABLE1_VARS) == {
            "NNODES", "PPN", "SKU", "VMTYPE", "HOSTLIST_PPN",
            "HOSTFILE_PATH", "TASKRUN_DIR",
        }

    def test_build_env_values(self):
        hosts = make_hosts(get_sku("Standard_HB120rs_v3"), 2, "p")
        env = build_task_env(hosts, ppn=120, workdir="/mnt/nfs/jobs/t1")
        assert env["NNODES"] == "2"
        assert env["PPN"] == "120"
        assert env["SKU"] == "Standard_HB120rs_v3"
        assert env["VMTYPE"] == env["SKU"]
        assert env["HOSTLIST_PPN"] == "p-node0000:120,p-node0001:120"
        assert env["HOSTFILE_PATH"] == "/mnt/nfs/jobs/t1/hostfile"
        assert env["TASKRUN_DIR"] == "/mnt/nfs/jobs/t1"

    def test_appinputs_uppercased(self):
        """Listing 2 reads $BOXFACTOR from the 'boxfactor' appinput."""
        hosts = make_hosts(get_sku("Standard_HB120rs_v3"), 1)
        env = build_task_env(hosts, 120, "/w", appinputs={"boxfactor": "30"})
        assert env["BOXFACTOR"] == "30"

    def test_empty_hosts_rejected(self):
        with pytest.raises(ValueError):
            build_task_env([], 1, "/w")


class TestMetricVars:
    def test_format(self):
        assert format_var("APPEXECTIME", 173.4) == \
            f"{MARKER} APPEXECTIME=173.4"

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError):
            format_var("BAD NAME", 1)

    def test_extract_paper_listing_lines(self):
        stdout = (
            "Simulation completed successfully.\n"
            "HPCADVISORVAR APPEXECTIME=36\n"
            "HPCADVISORVAR LAMMPSATOMS=864000000\n"
            "HPCADVISORVAR LAMMPSSTEPS=100\n"
        )
        assert extract_vars(stdout) == {
            "APPEXECTIME": "36",
            "LAMMPSATOMS": "864000000",
            "LAMMPSSTEPS": "100",
        }

    def test_later_value_wins(self):
        stdout = "HPCADVISORVAR X=1\nHPCADVISORVAR X=2\n"
        assert extract_vars(stdout) == {"X": "2"}

    def test_non_marker_lines_ignored(self):
        assert extract_vars("plain output\nX=5\n") == {}

    def test_value_may_contain_spaces(self):
        assert extract_vars("HPCADVISORVAR MESH=40 16 16\n") == \
            {"MESH": "40 16 16"}


class TestBashInterop:
    def test_listing2_parses(self):
        """The paper's actual Listing 2 passes structural validation."""
        info = parse_bash_script(LISTING2_BASH)
        assert info.has_setup and info.has_run
        assert SETUP_FN in info.functions and RUN_FN in info.functions
        assert set(info.emitted_vars) == {
            "APPEXECTIME", "LAMMPSATOMS", "LAMMPSSTEPS"
        }
        assert "https://www.lammps.org/inputs/in.lj.txt" in info.downloads
        assert "LAMMPS" in info.modules

    def test_missing_run_function_rejected(self):
        with pytest.raises(AppScriptError, match="hpcadvisor_run"):
            parse_bash_script("hpcadvisor_setup() {\n return 0\n}\n")

    def test_missing_both_lists_both(self):
        with pytest.raises(AppScriptError) as err:
            parse_bash_script("echo hello\n")
        assert "hpcadvisor_setup" in str(err.value)
        assert "hpcadvisor_run" in str(err.value)

    def test_generated_bash_roundtrips(self):
        """Every auto-generated script must satisfy the parser."""
        script = AppScript(appname="demo", setup=lambda c: 0,
                           run=lambda c: 0)
        info = parse_bash_script(script.to_bash())
        assert info.has_setup and info.has_run

    def test_appscript_validation(self):
        with pytest.raises(AppScriptError):
            AppScript(appname="", setup=lambda c: 0, run=lambda c: 0)
        with pytest.raises(AppScriptError):
            AppScript(appname="x", setup=lambda c: 0, run=lambda c: 0,
                      setup_seconds=-1)


class TestAppRunContext:
    def make_ctx(self, nodes=2, env=None):
        hosts = make_hosts(get_sku("Standard_HB120rs_v3"), nodes, "p")
        fs = SharedFilesystem()
        return AppRunContext.from_task_context_like(
            hosts=hosts,
            filesystem=fs,
            env=env or {"PPN": "120", "NNODES": str(nodes)},
            workdir="/mnt/nfs/jobs/t1",
            shared_dir="/mnt/nfs/apps/demo",
        )

    def test_echo_accumulates_stdout(self):
        ctx = self.make_ctx()
        ctx.echo("line one")
        ctx.emit_var("X", 5)
        assert ctx.stdout == "line one\nHPCADVISORVAR X=5\n"

    def test_getenv_required(self):
        ctx = self.make_ctx()
        assert ctx.getenv("PPN") == "120"
        with pytest.raises(AppScriptError, match="MISSING"):
            ctx.getenv("MISSING")

    def test_file_helpers(self):
        ctx = self.make_ctx()
        ctx.write_file("input.txt", "data")
        assert ctx.read_file("input.txt") == "data"
        assert ctx.file_exists("input.txt")

    def test_copy_from_shared(self):
        """The 'cp ../$inputfile .' step from Listing 2."""
        ctx = self.make_ctx()
        ctx.filesystem.write_text("/mnt/nfs/apps/demo/in.lj.txt", "template")
        ctx.copy_from_shared("in.lj.txt")
        assert ctx.read_file("in.lj.txt") == "template"

    def test_mpirun_uses_ppn_env(self):
        ctx = self.make_ctx(env={"PPN": "60", "NNODES": "2"})
        result = ctx.mpirun("lammps", {"BOXFACTOR": "4"})
        assert result.ppn == 60
        assert result.np == 120
        assert ctx.wall_time_s >= result.exec_time_s

    def test_sleep_adds_wall_time(self):
        ctx = self.make_ctx()
        ctx.sleep(42.0)
        assert ctx.wall_time_s == 42.0

    def test_failed_run_contributes_no_app_time(self):
        ctx = self.make_ctx(env={"PPN": "120", "NNODES": "2"})
        ctx.hosts = ctx.hosts[:1]
        ctx.env["NNODES"] = "1"
        result = ctx.mpirun("lammps", {"BOXFACTOR": "60"})  # OOM
        assert not result.succeeded
        assert ctx.wall_time_s == 0.0
