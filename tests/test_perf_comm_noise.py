"""Communication-pattern and noise-model tests."""

import pytest

from repro.cloud.skus import get_sku
from repro.cluster.network import network_for_sku
from repro.perf.comm import (
    halo_time_per_step,
    imbalance_factor,
    node_halo_bytes,
    pme_alltoall_time_per_step,
    solver_reduction_time_per_iter,
)
from repro.perf.noise import NO_NOISE, NoiseModel


@pytest.fixture
def hdr():
    return network_for_sku(get_sku("Standard_HB120rs_v3"))


class TestHalo:
    def test_surface_scaling(self):
        # Doubling the volume raises surface by 2^(2/3).
        small = node_halo_bytes(1e6, 48.0)
        large = node_halo_bytes(2e6, 48.0)
        assert large / small == pytest.approx(2 ** (2 / 3))

    def test_zero_domain(self):
        assert node_halo_bytes(0, 48.0) == 0.0

    def test_single_node_free(self, hdr):
        assert halo_time_per_step(hdr, 1e6, 48.0, nodes=1) == 0.0

    def test_halo_positive_multinode(self, hdr):
        assert halo_time_per_step(hdr, 1e6, 48.0, nodes=4) > 0.0


class TestSolverReductions:
    def test_single_node_free(self, hdr):
        assert solver_reduction_time_per_iter(hdr, 1, 950) == 0.0

    def test_log_growth(self, hdr):
        t4 = solver_reduction_time_per_iter(hdr, 4, 950)
        t16 = solver_reduction_time_per_iter(hdr, 16, 950)
        assert t16 == pytest.approx(2 * t4, rel=0.01)

    def test_software_alpha_dominates_wire(self, hdr):
        """GAMG-style reductions cost ~50us/hop, far above the ~1.6us wire."""
        t = solver_reduction_time_per_iter(hdr, 2, 1)
        assert t > 25e-6


class TestPme:
    def test_single_node_free(self, hdr):
        assert pme_alltoall_time_per_step(hdr, 1e9, 1) == 0.0

    def test_latency_term_grows_with_nodes(self, hdr):
        t2 = pme_alltoall_time_per_step(hdr, 1e3, 2)
        t32 = pme_alltoall_time_per_step(hdr, 1e3, 32)
        assert t32 > t2


class TestImbalance:
    def test_single_rank_is_one(self):
        assert imbalance_factor(1, 0.05) == 1.0

    def test_grows_with_ranks(self):
        assert imbalance_factor(1920, 0.046) > imbalance_factor(120, 0.046)

    def test_zero_coeff(self):
        assert imbalance_factor(10_000, 0.0) == 1.0

    def test_negative_coeff_rejected(self):
        with pytest.raises(ValueError):
            imbalance_factor(16, -0.1)


class TestNoise:
    def test_disabled_is_exactly_one(self):
        assert NO_NOISE.factor("anything") == 1.0

    def test_deterministic_per_key(self):
        noise = NoiseModel(sigma=0.05, seed=7)
        assert noise.factor("a", 1) == noise.factor("a", 1)

    def test_different_keys_differ(self):
        noise = NoiseModel(sigma=0.05, seed=7)
        assert noise.factor("a", 1) != noise.factor("a", 2)

    def test_positive(self):
        noise = NoiseModel(sigma=0.3, seed=0)
        assert all(noise.factor(i) > 0 for i in range(100))

    def test_mean_one_ish(self):
        noise = NoiseModel(sigma=0.05, seed=0)
        values = [noise.factor(i) for i in range(500)]
        assert sum(values) / len(values) == pytest.approx(1.0, abs=0.01)
