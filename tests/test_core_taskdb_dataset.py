"""Task DB and dataset store tests."""

import pytest

from repro.core.dataset import DataPoint, Dataset
from repro.core.scenarios import Scenario
from repro.core.taskdb import TaskDB, TaskStatus
from repro.errors import DatasetError


def scenario(sid="t00001", nnodes=2):
    return Scenario(scenario_id=sid, sku_name="Standard_HB120rs_v3",
                    nnodes=nnodes, ppn=120, appname="lammps",
                    appinputs={"BOXFACTOR": "30"})


def point(sku="Standard_HB120rs_v3", nnodes=2, t=100.0, cost=0.2, **kw):
    defaults = dict(appname="lammps", appinputs={"BOXFACTOR": "30"})
    defaults.update(kw)
    return DataPoint(sku=sku, nnodes=nnodes, ppn=120, exec_time_s=t,
                     cost_usd=cost, **defaults)


class TestTaskDB:
    def test_states_match_paper(self):
        """Paper Sec. III-C: states are pending, failed, completed."""
        assert {s.value for s in TaskStatus} == {
            "pending", "failed", "completed"
        }

    def test_add_and_counts(self):
        db = TaskDB()
        db.add_scenarios([scenario("a"), scenario("b")])
        assert len(db) == 2
        assert db.counts() == {"pending": 2, "failed": 0, "completed": 0}

    def test_duplicate_rejected(self):
        db = TaskDB()
        db.add_scenarios([scenario("a")])
        with pytest.raises(DatasetError, match="duplicate"):
            db.add_scenarios([scenario("a")])

    def test_mark_completed(self):
        db = TaskDB()
        db.add_scenarios([scenario("a")])
        record = db.mark_completed("a", exec_time_s=36.0, cost_usd=0.576,
                                   app_vars={"LAMMPSSTEPS": "100"})
        assert record.status is TaskStatus.COMPLETED
        assert db.counts()["completed"] == 1

    def test_mark_failed(self):
        db = TaskDB()
        db.add_scenarios([scenario("a")])
        db.mark_failed("a", "out of memory")
        assert db.get("a").failure_reason == "out of memory"

    def test_mark_skipped_stays_pending(self):
        db = TaskDB()
        db.add_scenarios([scenario("a")])
        db.mark_skipped("a")
        record = db.get("a")
        assert record.status is TaskStatus.PENDING
        assert record.skipped_by_sampler

    def test_unknown_id(self):
        with pytest.raises(DatasetError):
            TaskDB().get("ghost")

    def test_json_roundtrip(self, tmp_path):
        """Paper: 'This list is recorded and stored in a JSON file.'"""
        path = str(tmp_path / "tasks.json")
        db = TaskDB(path=path)
        db.add_scenarios([scenario("a"), scenario("b", nnodes=4)])
        db.mark_completed("a", exec_time_s=36.0, cost_usd=0.576,
                          infra_metrics={"cpu_util": 0.8})
        db.mark_failed("b", "quota")
        db.save()
        restored = TaskDB.load(path)
        assert len(restored) == 2
        assert restored.get("a").status is TaskStatus.COMPLETED
        assert restored.get("a").infra_metrics == {"cpu_util": 0.8}
        assert restored.get("b").failure_reason == "quota"
        assert restored.get("b").scenario.nnodes == 4

    def test_save_without_path_rejected(self):
        with pytest.raises(DatasetError):
            TaskDB().save()

    def test_load_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(DatasetError, match="corrupt"):
            TaskDB.load(str(path))


class TestDataPoint:
    def test_validation(self):
        with pytest.raises(DatasetError):
            point(nnodes=0)
        with pytest.raises(DatasetError):
            point(t=-1)
        with pytest.raises(DatasetError):
            point(cost=-1)

    def test_dict_roundtrip(self):
        p = point(app_vars={"APPEXECTIME": "100"}, tags={"v": "1"},
                  infra_metrics={"cpu_util": 0.5}, predicted=True)
        assert DataPoint.from_dict(p.to_dict()) == p


class TestDataset:
    def make(self):
        return Dataset([
            point(nnodes=2, t=200, cost=0.4),
            point(nnodes=4, t=110, cost=0.44),
            point(sku="Standard_HC44rs", nnodes=2, t=900, cost=1.5),
            point(nnodes=2, t=50, cost=0.1,
                  appinputs={"BOXFACTOR": "10"}),
            point(nnodes=2, t=60, cost=0.2, appname="openfoam",
                  appinputs={"mesh": "40 16 16"}),
        ])

    def test_filter_by_appname(self):
        assert len(self.make().filter(appname="openfoam")) == 1

    def test_filter_by_sku_short_or_full(self):
        data = self.make()
        assert len(data.filter(sku="hc44rs")) == 1
        assert len(data.filter(sku="Standard_HC44rs")) == 1

    def test_filter_by_appinputs(self):
        data = self.make()
        assert len(data.filter(appinputs={"BOXFACTOR": "30"})) == 3

    def test_filter_by_nodes(self):
        data = self.make()
        assert len(data.filter(nnodes=[4])) == 1
        assert len(data.filter(min_nodes=3)) == 1
        assert len(data.filter(max_nodes=2)) == 4

    def test_filter_predicate(self):
        data = self.make()
        cheap = data.filter(predicate=lambda p: p.cost_usd < 0.3)
        assert all(p.cost_usd < 0.3 for p in cheap)

    def test_filter_excludes_predicted(self):
        data = Dataset([point(), point(predicted=True)])
        assert len(data.filter(include_predicted=False)) == 1

    def test_distinct(self):
        data = self.make()
        assert data.distinct("sku") == ["Standard_HB120rs_v3",
                                        "Standard_HC44rs"]
        assert set(data.distinct_input_keys()) == {"BOXFACTOR", "mesh"}

    def test_jsonl_roundtrip(self, tmp_path):
        path = str(tmp_path / "data.jsonl")
        data = self.make()
        data.save(path)
        restored = Dataset.load(path)
        assert restored.points() == data.points()

    def test_load_corrupt_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"appname": "x"}\n')
        with pytest.raises(DatasetError, match="line 1"):
            Dataset.load(str(path))

    def test_load_skips_blank_lines(self, tmp_path):
        path = tmp_path / "data.jsonl"
        p = point()
        import json

        path.write_text(json.dumps(p.to_dict()) + "\n\n")
        assert len(Dataset.load(str(path))) == 1
