"""Spot-capacity primitives: the eviction model and mid-task preemption
in the Batch service and the Slurm simulator."""

import math

import pytest

from repro.batch.node import NodeState
from repro.batch.pool import PoolState
from repro.batch.task import BatchTask, TaskKind, TaskOutput, TaskState
from repro.cloud.eviction import (
    DEFAULT_EVICTION_RATES,
    REGION_EVICTION_FACTOR,
    EvictionModel,
)
from repro.core.deployer import Deployer
from repro.errors import BatchError, CloudError, PoolStateError
from tests.conftest import make_config

HB = "Standard_HB120rs_v3"


class TestEvictionModel:
    def test_known_sku_uses_curve(self):
        model = EvictionModel()
        assert model.rate_per_hour(HB) == DEFAULT_EVICTION_RATES[HB]

    def test_unknown_sku_uses_default(self):
        model = EvictionModel(default_rate_per_hour=0.123)
        assert model.rate_per_hour("Standard_Z9") == 0.123

    def test_short_name_suffix_match(self):
        model = EvictionModel()
        assert model.rate_per_hour("hb120rs_v3") == DEFAULT_EVICTION_RATES[HB]

    def test_region_factor_scales_rate(self):
        base = EvictionModel(region="southcentralus").rate_per_hour(HB)
        eastus = EvictionModel(region="eastus").rate_per_hour(HB)
        assert eastus == pytest.approx(
            base * REGION_EVICTION_FACTOR["eastus"]
        )

    def test_multi_node_tasks_evict_faster(self):
        model = EvictionModel()
        assert model.rate_per_hour(HB, nodes=8) == pytest.approx(
            8 * model.rate_per_hour(HB, nodes=1)
        )

    def test_flat_overrides_every_sku(self):
        model = EvictionModel.flat(2.5)
        assert model.rate_per_hour(HB) == 2.5
        assert model.rate_per_hour("Standard_HC44rs") == 2.5

    def test_negative_rates_rejected(self):
        with pytest.raises(CloudError):
            EvictionModel(rates={HB: -1.0})
        with pytest.raises(CloudError):
            EvictionModel.flat(-0.1)

    def test_zero_rate_never_evicts(self):
        model = EvictionModel.flat(0.0)
        assert model.time_to_eviction(HB, "t00001", 0) is None
        assert model.mean_time_to_eviction_s(HB) == math.inf
        assert model.survival_probability(HB, 1e9) == 1.0

    def test_draws_are_deterministic_per_key(self):
        model = EvictionModel.flat(10.0, seed=5)
        again = EvictionModel.flat(10.0, seed=5)
        draw = model.time_to_eviction(HB, "t00001", 0)
        assert draw == again.time_to_eviction(HB, "t00001", 0)
        assert draw is not None and draw > 0

    def test_different_attempts_draw_differently(self):
        model = EvictionModel.flat(10.0, seed=5)
        draws = {model.time_to_eviction(HB, "t00001", attempt)
                 for attempt in range(8)}
        assert len(draws) == 8

    def test_different_seeds_draw_differently(self):
        a = EvictionModel.flat(10.0, seed=1)
        b = EvictionModel.flat(10.0, seed=2)
        assert (a.time_to_eviction(HB, "t", 0)
                != b.time_to_eviction(HB, "t", 0))

    def test_survival_probability_matches_rate(self):
        model = EvictionModel.flat(3600.0)  # one per second per node
        # Over one mean interval the survival is e^-1.
        assert model.survival_probability(HB, 1.0) == pytest.approx(
            math.exp(-1.0)
        )

    def test_invalid_nodes_rejected(self):
        with pytest.raises(CloudError):
            EvictionModel().rate_per_hour(HB, nodes=0)

    def test_vectorized_draws_match_scalar_bitwise(self):
        """``times_to_eviction`` must reproduce the scalar per-key draws
        bit for bit — the batched kernel's equivalence contract rests on
        this, so the comparison is ``==`` on floats, not approx."""
        model = EvictionModel(seed=11, region="eastus")
        sids = [f"t{i % 5:05d}" for i in range(12)]
        attempts = [0, 1, 2, 0, 1, 3, 0, 0, 1, 2, 5, 7]
        nodes = [1, 2, 4, 8, 1, 2, 4, 8, 1, 2, 4, 8]
        vec = model.times_to_eviction(HB, sids, attempts, nodes)
        assert vec is not None and len(vec) == 12
        for i, (sid, attempt, n) in enumerate(zip(sids, attempts, nodes)):
            assert vec[i] == model.time_to_eviction(HB, sid, attempt,
                                                    nodes=n)

    def test_vectorized_draws_match_scalar_for_flat_model(self):
        model = EvictionModel.flat(40.0, seed=7)
        vec = model.times_to_eviction("Standard_Z9", ["a", "b"], [0, 4],
                                      [2, 2])
        assert vec[0] == model.time_to_eviction("Standard_Z9", "a", 0,
                                                nodes=2)
        assert vec[1] == model.time_to_eviction("Standard_Z9", "b", 4,
                                                nodes=2)

    def test_vectorized_zero_rate_returns_none(self):
        model = EvictionModel.flat(0.0)
        assert model.times_to_eviction(HB, ["t00001"], [0], [1]) is None


def _start_compute(service, pool_id="pool-x", nodes=2, wall=100.0):
    service.create_pool(pool_id, HB, target_nodes=nodes, spot=True)
    service.create_job("job-x", pool_id)
    task = BatchTask(
        task_id="compute-1", kind=TaskKind.COMPUTE,
        executor=lambda ctx: TaskOutput(exit_code=0, stdout="",
                                        wall_time_s=wall),
        required_nodes=nodes,
    )
    service.submit_task("job-x", task)
    return service.start_task("job-x", "compute-1")


class TestBatchInterrupt:
    @pytest.fixture
    def service(self):
        return Deployer().deploy(make_config()).batch

    def test_spot_pool_bills_discounted_rate(self, service):
        service.create_pool("pool-spot", HB, spot=True)
        service.create_pool("pool-od", HB)
        spot = service.get_pool("pool-spot")
        ondemand = service.get_pool("pool-od")
        assert spot.spot and not ondemand.spot
        assert spot.hourly_price == pytest.approx(
            ondemand.hourly_price * 0.30
        )

    def test_interrupt_reclaims_node_and_bills_partial(self, service):
        task = _start_compute(service, nodes=2, wall=100.0)
        started = service.clock.now
        service.clock.advance(40.0)
        entry = service.interrupt_task("job-x", "compute-1")
        pool = service.get_pool("pool-x")
        assert task.state is TaskState.PREEMPTED
        assert task.finished_at == started + 40.0
        assert entry.wall_time_s == pytest.approx(40.0)
        assert entry.cost_usd == pytest.approx(
            2 * pool.hourly_price * 40.0 / 3600.0
        )
        # One node gone, the survivor back to idle.
        assert pool.current_nodes == 1
        assert pool.preemption_count == 1
        states = sorted(n.state.value for n in pool.nodes)
        assert states == ["gone", "idle"]

    def test_interrupt_requires_running_task(self, service):
        task = _start_compute(service, wall=10.0)
        service.clock.advance(10.0)
        service.complete_task("job-x", "compute-1")
        assert task.state is TaskState.COMPLETED
        with pytest.raises(BatchError):
            service.interrupt_task("job-x", "compute-1")

    def test_interrupt_after_natural_finish_rejected(self, service):
        _start_compute(service, wall=10.0)
        service.clock.advance(10.0)
        with pytest.raises(BatchError, match="already finished"):
            service.interrupt_task("job-x", "compute-1")

    def test_pool_deletable_after_interrupt(self, service):
        _start_compute(service, nodes=2, wall=100.0)
        service.clock.advance(1.0)
        service.interrupt_task("job-x", "compute-1")
        service.delete_pool("pool-x")
        assert service.get_pool.__self__.pools["pool-x"].state \
            is PoolState.DELETED

    def test_quota_returned_on_preemption(self, service):
        _start_compute(service, nodes=2, wall=100.0)
        pool = service.get_pool("pool-x")
        sub = pool.subscription
        avail_before = sub.cores_available(pool.region, pool.sku.family)
        service.clock.advance(1.0)
        service.interrupt_task("job-x", "compute-1")
        assert sub.cores_available(pool.region, pool.sku.family) \
            == avail_before + pool.sku.cores

    def test_preempt_node_guards(self, service):
        service.create_pool("pool-x", HB, target_nodes=1)
        pool = service.get_pool("pool-x")
        node = pool.nodes[0]  # idle after the blocking resize
        assert node.state is NodeState.IDLE
        with pytest.raises(PoolStateError):
            pool.preempt_node(node)  # only running nodes are reclaimed

    def test_billing_stops_at_eviction(self, service):
        _start_compute(service, nodes=2, wall=100.0)
        pool = service.get_pool("pool-x")
        service.clock.advance(10.0)
        service.interrupt_task("job-x", "compute-1")
        node_seconds_before = pool.meter.accrued_node_seconds
        service.clock.advance(100.0)
        # Only the surviving node keeps accruing.
        assert pool.meter.accrued_node_seconds == pytest.approx(
            node_seconds_before + 100.0
        )


class TestSlurmInterrupt:
    @pytest.fixture
    def cluster(self):
        from repro.slurmsim.cluster import SlurmCluster

        deployment = Deployer().deploy(make_config())
        return SlurmCluster(
            provider=deployment.provider,
            subscription=deployment.provider.get_subscription(
                "test-subscription"
            ),
            region="southcentralus",
        )

    def _start(self, cluster, wall=100.0, nodes=2):
        from repro.slurmsim.cluster import JobCompletion

        cluster.create_partition("part-x", HB, spot=True)
        part = cluster.get_partition("part-x")
        part.power_up(nodes)
        return cluster.start_job(
            "run-x", "part-x", nodes,
            lambda hosts, fs, wd: JobCompletion(
                exit_code=0, stdout="", wall_time_s=wall),
        )

    def test_spot_partition_bills_discounted_rate(self, cluster):
        cluster.create_partition("part-spot", HB, spot=True)
        cluster.create_partition("part-od", HB)
        assert cluster.get_partition("part-spot").hourly_price \
            == pytest.approx(
                cluster.get_partition("part-od").hourly_price * 0.30)

    def test_interrupt_kills_job_and_powers_down_node(self, cluster):
        from repro.slurmsim.jobs import JobState

        job = self._start(cluster, wall=100.0, nodes=2)
        cluster.clock.advance(30.0)
        cluster.interrupt_job(job.job_id)
        part = cluster.get_partition("part-x")
        assert job.state is JobState.PREEMPTED
        assert job.elapsed_s == pytest.approx(30.0)
        assert part.powered_up == 1
        assert part.preemption_count == 1
        with pytest.raises(KeyError):
            cluster.pending_completion(job.job_id)

    def test_interrupt_requires_running_job(self, cluster):
        from repro.errors import BackendError

        job = self._start(cluster, wall=10.0)
        cluster.clock.advance(10.0)
        cluster.complete_job(job.job_id)
        with pytest.raises(BackendError):
            cluster.interrupt_job(job.job_id)

    def test_interrupt_after_natural_end_rejected(self, cluster):
        from repro.errors import BackendError

        job = self._start(cluster, wall=10.0)
        cluster.clock.advance(10.0)
        with pytest.raises(BackendError, match="already finished"):
            cluster.interrupt_job(job.job_id)
