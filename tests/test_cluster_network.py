"""Interconnect model tests."""

import pytest

from repro.cloud.skus import get_sku
from repro.cluster.network import (
    LOOPBACK,
    network_for_sku,
)


@pytest.fixture
def hdr():
    return network_for_sku(get_sku("Standard_HB120rs_v3"))


@pytest.fixture
def eth():
    return network_for_sku(get_sku("Standard_D64s_v5"))


class TestPointToPoint:
    def test_latency_floor(self, hdr):
        assert hdr.ptp_time(0) == pytest.approx(hdr.effective_latency)

    def test_bandwidth_dominates_large_messages(self, hdr):
        t = hdr.ptp_time(25e9)  # 25 GB at 25 GB/s ~ 1 s
        assert t == pytest.approx(1.0, rel=0.01)

    def test_negative_size_rejected(self, hdr):
        with pytest.raises(ValueError):
            hdr.ptp_time(-1)

    def test_ethernet_slower_than_ib(self, hdr, eth):
        assert eth.ptp_time(1e6) > hdr.ptp_time(1e6)
        assert eth.effective_latency > hdr.effective_latency

    def test_non_rdma_pays_software_overhead(self, eth):
        assert eth.effective_latency > eth.latency_s
        assert eth.effective_bandwidth < eth.bandwidth_Bps


class TestCollectives:
    def test_allreduce_single_rank_free(self, hdr):
        assert hdr.allreduce_time(1e6, 1) == 0.0

    def test_allreduce_grows_with_ranks(self, hdr):
        assert hdr.allreduce_time(8, 1920) > hdr.allreduce_time(8, 16)

    def test_allreduce_small_message_latency_bound(self, hdr):
        # Recursive doubling: ~log2(p) * alpha.
        t = hdr.allreduce_time(8, 1024)
        assert t == pytest.approx(10 * hdr.effective_latency, rel=0.2)

    def test_allreduce_large_message_bandwidth_bound(self, hdr):
        # Ring: ~2 * n/beta, independent of p for large p.
        t64 = hdr.allreduce_time(1e9, 64)
        t128 = hdr.allreduce_time(1e9, 128)
        assert t128 < t64 * 1.2

    def test_bcast_log_scaling(self, hdr):
        t2 = hdr.bcast_time(1e3, 2)
        t16 = hdr.bcast_time(1e3, 16)
        assert t16 == pytest.approx(4 * t2, rel=0.01)

    def test_alltoall_grows_linearly(self, hdr):
        t4 = hdr.alltoall_time(1e4, 4)
        t8 = hdr.alltoall_time(1e4, 8)
        assert t8 > t4

    def test_barrier(self, hdr):
        assert hdr.barrier_time(1) == 0.0
        assert hdr.barrier_time(1024) == pytest.approx(
            10 * hdr.effective_latency
        )

    def test_halo_exchange_zero_neighbors(self, hdr):
        assert hdr.halo_exchange_time(1e6, 0) == 0.0

    def test_halo_exchange_scales_with_bytes(self, hdr):
        small = hdr.halo_exchange_time(1e3, 6)
        large = hdr.halo_exchange_time(1e7, 6)
        assert large > small


class TestSkuMapping:
    def test_hdr_parameters(self, hdr):
        assert hdr.rdma
        assert hdr.bandwidth_Bps == pytest.approx(25e9)

    def test_no_interconnect_gets_slow_fallback(self):
        # Construct a SKU-less fallback through a SKU with None interconnect.
        from dataclasses import replace

        sku = replace(get_sku("Standard_D64s_v5"), interconnect=None)
        net = network_for_sku(sku)
        assert not net.rdma
        assert net.latency_s > 10e-6

    def test_loopback_is_fast(self):
        assert LOOPBACK.ptp_time(0) < 1e-6
