"""Batch pool lifecycle tests."""

import pytest

from repro.batch.node import NodeState, boot_time_for
from repro.batch.pool import BatchPool, PoolState
from repro.clock import SimClock
from repro.cloud.skus import get_sku
from repro.cloud.subscription import Subscription
from repro.errors import PoolStateError, QuotaExceeded


def make_pool(sku_name="Standard_HB120rs_v3", clock=None, sub=None):
    clock = clock or SimClock()
    sub = sub or Subscription(name="test")
    return BatchPool(
        pool_id="pool-test",
        sku=get_sku(sku_name),
        region="southcentralus",
        subscription=sub,
        clock=clock,
        hourly_price=3.60,
        base_boot_s=150.0,
    ), clock, sub


class TestBootTime:
    def test_deterministic(self):
        assert boot_time_for("p", 0, 150.0) == boot_time_for("p", 0, 150.0)

    def test_within_jitter_band(self):
        for i in range(20):
            boot = boot_time_for("p", i, 150.0)
            assert 120.0 <= boot <= 180.0

    def test_varies_per_node(self):
        boots = {boot_time_for("p", i, 150.0) for i in range(10)}
        assert len(boots) > 1


class TestResize:
    def test_grow_advances_clock_by_slowest_boot(self):
        pool, clock, _ = make_pool()
        pool.resize(4)
        assert pool.current_nodes == 4
        boots = [n.boot_seconds for n in pool.nodes]
        assert clock.now == pytest.approx(max(boots))
        assert all(n.state is NodeState.IDLE for n in pool.nodes)

    def test_grow_respects_quota(self):
        pool, _, sub = make_pool()
        sub.quota.set_limit("southcentralus", pool.sku.family, 240)
        pool.resize(2)
        with pytest.raises(QuotaExceeded):
            pool.resize(3)

    def test_shrink_releases_quota(self):
        pool, _, sub = make_pool()
        pool.resize(4)
        pool.resize(1)
        assert pool.current_nodes == 1
        assert sub.quota.used_for("southcentralus", pool.sku.family) == 120

    def test_shrink_to_zero(self):
        pool, _, _ = make_pool()
        pool.resize(4)
        pool.resize(0)
        assert pool.current_nodes == 0

    def test_resize_same_size_noop(self):
        pool, clock, _ = make_pool()
        pool.resize(2)
        before = clock.now
        pool.resize(2)
        assert clock.now == before

    def test_negative_target_rejected(self):
        pool, _, _ = make_pool()
        with pytest.raises(ValueError):
            pool.resize(-1)

    def test_running_nodes_not_evictable(self):
        pool, _, _ = make_pool()
        pool.resize(2)
        pool.acquire_nodes(2)
        with pytest.raises(PoolStateError, match="not evictable"):
            pool.resize(0)

    def test_resize_count_tracked(self):
        pool, _, _ = make_pool()
        pool.resize(1)
        pool.resize(3)
        assert pool.resize_count == 2


class TestLeasing:
    def test_acquire_release(self):
        pool, _, _ = make_pool()
        pool.resize(3)
        nodes = pool.acquire_nodes(2)
        assert len(pool.idle_nodes) == 1
        assert len(pool.running_nodes) == 2
        pool.release_nodes(nodes)
        assert len(pool.idle_nodes) == 3

    def test_acquire_more_than_idle_fails(self):
        pool, _, _ = make_pool()
        pool.resize(1)
        with pytest.raises(PoolStateError, match="only 1 idle"):
            pool.acquire_nodes(2)


class TestDelete:
    def test_delete_releases_everything(self):
        pool, _, sub = make_pool()
        pool.resize(4)
        pool.delete()
        assert pool.state is PoolState.DELETED
        assert sub.quota.used_for("southcentralus", pool.sku.family) == 0

    def test_deleted_pool_rejects_ops(self):
        pool, _, _ = make_pool()
        pool.delete()
        with pytest.raises(PoolStateError):
            pool.resize(1)

    def test_delete_with_running_tasks_rejected(self):
        pool, _, _ = make_pool()
        pool.resize(1)
        pool.acquire_nodes(1)
        with pytest.raises(PoolStateError, match="running tasks"):
            pool.delete()


class TestBilling:
    def test_boot_time_is_billed(self):
        """Nodes bill from allocation, not from readiness."""
        pool, clock, _ = make_pool()
        pool.resize(2)
        assert pool.accrued_cost_usd > 0

    def test_idle_time_is_billed(self):
        pool, clock, _ = make_pool()
        pool.resize(1)
        cost_after_boot = pool.accrued_cost_usd
        clock.advance(3600)
        assert pool.accrued_cost_usd == pytest.approx(
            cost_after_boot + 3.60
        )

    def test_no_billing_after_shrink_to_zero(self):
        pool, clock, _ = make_pool()
        pool.resize(1)
        pool.resize(0)
        cost = pool.accrued_cost_usd
        clock.advance(3600)
        assert pool.accrued_cost_usd == cost
