"""DoE ordering and SmartSampler tests."""

import pytest

from repro.appkit.plugins import get_plugin
from repro.backends.azurebatch import AzureBatchBackend
from repro.core.advisor import Advisor
from repro.core.collector import DataCollector
from repro.core.dataset import Dataset
from repro.core.deployer import Deployer
from repro.core.scenarios import Scenario, generate_scenarios
from repro.core.taskdb import TaskDB
from repro.errors import SamplingError
from repro.sampling.doe import cheapest_first, extremes_first, lhs_subset
from repro.sampling.planner import SamplerPolicy, SmartSampler
from tests.conftest import make_config


def scen(sku, nnodes, sid=None, inputs=None):
    return Scenario(
        scenario_id=sid or f"{sku}-{nnodes}",
        sku_name=sku, nnodes=nnodes, ppn=8, appname="lammps",
        appinputs=inputs or {"BOXFACTOR": "10"},
    )


GRID = [scen(sku, n) for sku in ("Standard_HB120rs_v3", "Standard_HC44rs")
        for n in (1, 2, 4, 8, 16)]


class TestOrderings:
    def test_cheapest_first_sorted_by_rate(self):
        prices = {"Standard_HB120rs_v3": 3.6, "Standard_HC44rs": 3.168}
        ordered = cheapest_first(GRID, prices)
        rates = [prices[s.sku_name] * s.nnodes for s in ordered]
        assert rates == sorted(rates)

    def test_cheapest_first_missing_price(self):
        with pytest.raises(SamplingError):
            cheapest_first(GRID, {})

    def test_extremes_first_brackets_each_sku(self):
        ordered = extremes_first(GRID)
        v3 = [s.nnodes for s in ordered
              if s.sku_name == "Standard_HB120rs_v3"]
        # Endpoints measured before any interior point.
        assert set(v3[:2]) == {1, 16}
        assert sorted(v3) == [1, 2, 4, 8, 16]

    def test_extremes_first_preserves_population(self):
        ordered = extremes_first(GRID)
        assert sorted(s.scenario_id for s in ordered) == \
            sorted(s.scenario_id for s in GRID)

    def test_lhs_subset_size_and_uniqueness(self):
        subset = lhs_subset(GRID, budget=5, seed=1)
        assert len(subset) == 5
        assert len({s.scenario_id for s in subset}) == 5

    def test_lhs_budget_geq_population(self):
        assert lhs_subset(GRID, budget=100) == list(GRID)

    def test_lhs_invalid_budget(self):
        with pytest.raises(SamplingError):
            lhs_subset(GRID, budget=0)

    def test_lhs_deterministic_per_seed(self):
        a = [s.scenario_id for s in lhs_subset(GRID, 4, seed=3)]
        b = [s.scenario_id for s in lhs_subset(GRID, 4, seed=3)]
        assert a == b


class TestSamplerPolicy:
    def test_validation(self):
        with pytest.raises(SamplingError):
            SamplerPolicy(probe_runs=2)
        with pytest.raises(SamplingError):
            SamplerPolicy(min_r_squared=1.5)


class TestSmartSamplerEndToEnd:
    """The headline property: fewer executions, same Pareto front."""

    def sweep(self, smart: bool):
        config = make_config(
            skus=["Standard_HC44rs", "Standard_HB120rs_v2",
                  "Standard_HB120rs_v3"],
            nnodes=[2, 3, 4, 6, 8, 12, 16],
            appinputs={"BOXFACTOR": ["30"]},
        )
        deployment = Deployer().deploy(config)
        scenarios = generate_scenarios(config)
        sampler = None
        if smart:
            prices = {
                s: deployment.provider.prices.hourly_price(s, config.region)
                for s in config.skus
            }
            sampler = SmartSampler.for_scenarios(scenarios, prices)
        collector = DataCollector(
            backend=AzureBatchBackend(service=deployment.batch),
            script=get_plugin("lammps"),
            dataset=Dataset(),
            taskdb=TaskDB(),
            sampler=sampler,
        )
        report = collector.collect(scenarios)
        return report, collector.dataset

    def test_sampler_reduces_executions(self):
        full_report, _ = self.sweep(smart=False)
        smart_report, _ = self.sweep(smart=True)
        assert smart_report.executed < full_report.executed
        assert smart_report.skipped + smart_report.predicted > 0

    def test_sampler_saves_cost(self):
        full_report, _ = self.sweep(smart=False)
        smart_report, _ = self.sweep(smart=True)
        assert smart_report.task_cost_usd < full_report.task_cost_usd

    def test_front_covered_within_tolerance(self):
        """The smart front must 1.1-cover the full front: for every true
        front member there is a smart-front point no more than 10% worse in
        both objectives.  (Exact membership is too strict: the paper accepts
        prediction error — 'our aim is not to determine the exact execution
        times and costs for all scenarios, but to generate a Pareto front'.)
        """
        _, full_data = self.sweep(smart=False)
        _, smart_data = self.sweep(smart=True)
        full_rows = Advisor(full_data).advise()
        smart_rows = Advisor(smart_data).advise()
        for row in full_rows:
            assert any(
                s.exec_time_s <= row.exec_time_s * 1.10
                and s.cost_usd <= row.cost_usd * 1.10
                for s in smart_rows
            ), f"front member not covered: {row}"

    def test_every_point_estimated_accurately(self):
        """Each scenario in the grid must have an estimate (measured or
        predicted) within 10% of the true measured value."""
        _, full_data = self.sweep(smart=False)
        _, smart_data = self.sweep(smart=True)
        truth = {(p.sku, p.nnodes): p.exec_time_s for p in full_data}
        estimates = {(p.sku, p.nnodes): p.exec_time_s for p in smart_data}
        for key, est in estimates.items():
            assert est == pytest.approx(truth[key], rel=0.10)


class TestSmartSamplerDecisions:
    def test_probe_phase_runs(self):
        sampler = SmartSampler(hourly_prices={"Standard_HB120rs_v3": 3.6})
        decision = sampler.decide(scen("Standard_HB120rs_v3", 2))
        assert decision.action == "run"

    def test_prediction_after_probes(self):
        sampler = SmartSampler(
            hourly_prices={"Standard_HB120rs_v3": 3.6},
            policy=SamplerPolicy(probe_runs=3, min_r_squared=0.9,
                                 extrapolation=1.0, enable_discard=False,
                                 enable_bottleneck=False),
        )
        from repro.core.dataset import DataPoint

        for n, t in [(2, 100.0), (4, 52.0), (16, 16.0)]:
            sampler.observe(DataPoint(
                appname="lammps", sku="Standard_HB120rs_v3", nnodes=n,
                ppn=8, exec_time_s=t, cost_usd=0.1,
                appinputs={"BOXFACTOR": "10"},
            ))
        decision = sampler.decide(scen("Standard_HB120rs_v3", 8))
        assert decision.action == "predict"
        assert 20 < decision.predicted_time_s < 40
        # Out of interpolation range -> run.
        decision32 = sampler.decide(scen("Standard_HB120rs_v3", 32))
        assert decision32.action == "run"

    def test_decisions_logged(self):
        sampler = SmartSampler(hourly_prices={"Standard_HB120rs_v3": 3.6})
        sampler.decide(scen("Standard_HB120rs_v3", 2))
        assert len(sampler.decisions_log) == 1
