"""Plot-data extraction and SVG renderer tests."""

import os
import xml.etree.ElementTree as ET

import pytest

from repro.core.dataset import DataPoint, Dataset
from repro.core.plotdata import (
    default_subtitle,
    efficiency,
    exectime_vs_cost,
    exectime_vs_nodes,
    pareto_scatter,
    speedup,
)
from repro.core.plots import PLOT_TYPES, ascii_table, build_plot, generate_plots
from repro.core.svg import ChartGeometry, nice_ticks, render_chart
from repro.errors import DatasetError


def dp(sku, nnodes, t, c, atoms="864000000"):
    return DataPoint(appname="lammps", sku=sku, nnodes=nnodes, ppn=120,
                     exec_time_s=t, cost_usd=c,
                     appinputs={"BOXFACTOR": "30"},
                     app_vars={"LAMMPSATOMS": atoms})


@pytest.fixture
def dataset():
    """Two SKUs with paper-like curves."""
    return Dataset([
        dp("Standard_HB120rs_v3", 2, 257, 0.514),
        dp("Standard_HB120rs_v3", 4, 133, 0.531),
        dp("Standard_HB120rs_v3", 8, 68, 0.548),
        dp("Standard_HB120rs_v3", 16, 36, 0.569),
        dp("Standard_HC44rs", 2, 1764, 3.10),
        dp("Standard_HC44rs", 16, 201, 2.83),
    ])


class TestSeriesExtraction:
    def test_exectime_vs_nodes_series(self, dataset):
        data = exectime_vs_nodes(dataset)
        assert data.xlabel == "Number of VMs"
        labels = [s.label for s in data.series]
        assert labels == ["hb120rs_v3", "hc44rs"]
        v3 = data.series_by_label("hb120rs_v3")
        assert v3.xs == [2, 4, 8, 16]
        assert v3.ys == [257, 133, 68, 36]

    def test_subtitle_matches_paper_format(self, dataset):
        """The paper's plots carry 'atoms=860M'-style subtitles."""
        assert default_subtitle(dataset) == "atoms=864M"

    def test_cost_plot_axes(self, dataset):
        data = exectime_vs_cost(dataset)
        assert data.xlabel == "Execution time (seconds)"
        assert data.ylabel == "Cost (USD)"

    def test_speedup_reference_is_smallest_run(self, dataset):
        data = speedup(dataset)
        v3 = data.series_by_label("hb120rs_v3")
        # Reference: 2 nodes, 257 s. speedup(16) = 2*257/36.
        assert v3.points[0] == (2.0, pytest.approx(2.0))
        assert dict(v3.points)[16.0] == pytest.approx(2 * 257 / 36)

    def test_efficiency_is_speedup_over_nodes(self, dataset):
        eff = efficiency(dataset).series_by_label("hb120rs_v3")
        spd = speedup(dataset).series_by_label("hb120rs_v3")
        for (n_e, e), (n_s, s) in zip(eff.points, spd.points):
            assert e == pytest.approx(s / n_e)

    def test_empty_dataset_raises(self):
        with pytest.raises(DatasetError):
            exectime_vs_nodes(Dataset())

    def test_pareto_scatter(self, dataset):
        scatter, front = pareto_scatter(dataset)
        assert front.label == "Pareto Front"
        assert len(front.points) <= len(scatter.series[0].points)
        xs = front.xs
        assert xs == sorted(xs)


class TestNiceTicks:
    def test_covers_range(self):
        ticks = nice_ticks(0, 100)
        assert ticks[0] <= 0 and ticks[-1] >= 99

    def test_reasonable_count(self):
        assert 3 <= len(nice_ticks(0, 37)) <= 10

    def test_degenerate_range(self):
        assert len(nice_ticks(5, 5)) >= 2

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError):
            nice_ticks(float("nan"), 1)


class TestSvgRenderer:
    def test_valid_xml(self, dataset):
        svg = render_chart(exectime_vs_nodes(dataset))
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_contains_series_and_labels(self, dataset):
        svg = render_chart(exectime_vs_nodes(dataset))
        assert "hb120rs_v3" in svg
        assert "Number of VMs" in svg
        assert "atoms=864M" in svg
        assert "polyline" in svg

    def test_deterministic(self, dataset):
        a = render_chart(exectime_vs_nodes(dataset))
        b = render_chart(exectime_vs_nodes(dataset))
        assert a == b

    def test_overlay_rendered(self, dataset):
        scatter, front = pareto_scatter(dataset)
        svg = render_chart(scatter, overlay=front)
        assert "Pareto Front" in svg

    def test_custom_geometry(self, dataset):
        svg = render_chart(exectime_vs_nodes(dataset),
                           geometry=ChartGeometry(width=900, height=500))
        assert 'width="900"' in svg


class TestGeneratePlots:
    def test_writes_all_chart_types(self, dataset, tmp_path):
        generated = generate_plots(dataset, str(tmp_path))
        kinds = [g.kind for g in generated]
        assert kinds == list(PLOT_TYPES) + ["pareto"]
        for item in generated:
            assert os.path.exists(item.path)
            ET.parse(item.path)  # well-formed XML

    def test_subset_of_kinds(self, dataset, tmp_path):
        generated = generate_plots(dataset, str(tmp_path),
                                   kinds=["speedup"], include_pareto=False)
        assert [g.kind for g in generated] == ["speedup"]

    def test_empty_dataset_rejected(self, tmp_path):
        with pytest.raises(DatasetError):
            generate_plots(Dataset(), str(tmp_path))

    def test_unknown_kind_rejected(self, dataset):
        with pytest.raises(DatasetError, match="unknown plot type"):
            build_plot(dataset, "heatmap")

    def test_ascii_table(self, dataset):
        text = ascii_table(exectime_vs_nodes(dataset))
        assert "Exectime" in text
        assert "hb120rs_v3" in text
