"""RemoteSession client tests against a live in-process server.

Socket-level behaviour: typed results decoding, HTTP error mapping to
:class:`RemoteError`, connect/read timeouts, and JobHandle waiting.
"""

import socket
import threading

import pytest

from repro.api.results import AdviceResult, SessionInfo
from repro.client import (
    JobHandle,
    RemoteError,
    RemoteJobFailed,
    RemoteSession,
    RemoteTimeout,
)
from repro.errors import ConfigError
from repro.service.app import make_server
from repro.service.jobs import JobManager
from repro.service.router import ServiceState
from repro.api.session import AdvisorSession
from tests.conftest import make_config


@pytest.fixture
def server(tmp_path):
    srv = make_server(str(tmp_path / "state"), port=0, workers=2)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()
    srv.state.close()
    thread.join(timeout=10)


@pytest.fixture
def remote(server):
    port = server.server_address[1]
    return RemoteSession(f"http://127.0.0.1:{port}", timeout=10)


def deploy(remote, prefix="remoterg", **overrides):
    return remote.deploy(make_config(rgprefix=prefix, **overrides).to_dict())


class TestTypedSurface:
    def test_deploy_returns_session_info(self, remote):
        info = deploy(remote)
        assert isinstance(info, SessionInfo)
        assert info.name == "remoterg-000"
        assert info.scenario_count == 2

    def test_deploy_rejects_non_mapping(self, remote):
        with pytest.raises(ConfigError):
            remote.deploy(42)

    def test_deploy_from_local_yaml_path(self, remote, tmp_path):
        path = tmp_path / "config.yaml"
        path.write_text(make_config(rgprefix="yamlrg").to_yaml())
        info = remote.deploy(str(path))
        assert info.name == "yamlrg-000"

    def test_list_info_shutdown(self, remote):
        info = deploy(remote)
        assert [d.name for d in remote.list_deployments()] == [info.name]
        assert remote.info(info.name).appname == "lammps"
        remote.shutdown(info.name)
        assert remote.list_deployments() == []

    def test_collect_wait_advise(self, remote):
        info = deploy(remote)
        job = remote.collect(deployment=info.name)
        assert isinstance(job, JobHandle)
        record = job.wait(timeout=60)
        assert record.state == "done"
        result = job.result()
        assert result.completed == 2
        advice = remote.advise(deployment=info.name)
        assert isinstance(advice, AdviceResult)
        assert advice.rows
        # The remote result decodes to the same types an in-process
        # advise would produce.
        assert advice.rows[0].sku

    def test_predict_and_compare_and_plot(self, remote):
        info_a = deploy(remote, prefix="cmpxrg", nnodes=[1, 2, 4])
        info_b = deploy(remote, prefix="cmpyrg", nnodes=[1, 2, 4])
        remote.collect(deployment=info_a.name).wait(timeout=60)
        remote.collect(deployment=info_b.name).wait(timeout=60)
        prediction = remote.predict(deployment=info_a.name)
        assert prediction.trained_on == 3
        comparison = remote.compare(info_a.name, info_b.name)
        assert comparison.matched == 3
        plots = remote.plot(deployment=info_a.name)
        assert len(plots.paths) == 5

    def test_health_and_metrics(self, remote):
        assert remote.health()["status"] == "ok"
        remote.health()
        text = remote.metrics_text()
        assert 'route="/healthz"' in text


class TestErrorMapping:
    def test_unknown_deployment_maps_to_remote_error_404(self, remote):
        with pytest.raises(RemoteError) as err:
            remote.info("ghost-000")
        assert err.value.status == 404
        assert "ghost-000" in str(err.value)

    def test_bad_request_maps_to_400(self, remote):
        with pytest.raises(RemoteError) as err:
            remote.advise(deployment="")  # missing name -> ConfigError
        assert err.value.status == 400

    def test_unknown_job_maps_to_404(self, remote):
        with pytest.raises(RemoteError) as err:
            remote.job("job-nope")
        assert err.value.status == 404

    def test_connection_refused_is_remote_error_status_0(self):
        # Bind-then-close guarantees a dead port.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        remote = RemoteSession(f"http://127.0.0.1:{port}", timeout=2)
        with pytest.raises(RemoteError) as err:
            remote.health()
        assert err.value.status == 0
        assert not isinstance(err.value, RemoteTimeout)


class TestTimeouts:
    def test_read_timeout_raises_remote_timeout(self):
        """A server that accepts but never answers must not hang the
        client past its timeout."""
        silent = socket.socket()
        silent.bind(("127.0.0.1", 0))
        silent.listen(1)
        port = silent.getsockname()[1]
        try:
            remote = RemoteSession(f"http://127.0.0.1:{port}", timeout=0.3)
            with pytest.raises(RemoteTimeout):
                remote.health()
        finally:
            silent.close()

    def test_job_wait_timeout(self, tmp_path):
        """JobHandle.wait gives up with RemoteTimeout, not a hang."""
        gate = threading.Event()

        class BlockedSession:
            def collect(self, request, progress=None):
                gate.wait(timeout=30)
                from repro.api.results import CollectResult

                return CollectResult(deployment=request.deployment)

        state_dir = str(tmp_path / "state")
        info = AdvisorSession(state_dir=state_dir).deploy(
            make_config(rgprefix="slowrg"))
        state = ServiceState(
            session=AdvisorSession(state_dir=state_dir),
            jobs=JobManager(jobs_dir=str(tmp_path / "state" / "jobs"),
                            session_factory=BlockedSession, workers=1),
        )
        server = make_server(state_dir, port=0, state=state)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            port = server.server_address[1]
            remote = RemoteSession(f"http://127.0.0.1:{port}", timeout=5)
            job = remote.collect(deployment=info.name)
            with pytest.raises(RemoteTimeout):
                job.wait(timeout=0.4, poll=0.05)
            gate.set()
            assert job.wait(timeout=30).state == "done"
        finally:
            gate.set()
            server.shutdown()
            server.server_close()
            state.close()
            thread.join(timeout=10)

    def test_submit_for_unknown_deployment_is_404(self, remote):
        # Validated at submit time, under the same lock as shutdown.
        with pytest.raises(RemoteError) as err:
            remote.collect(deployment="ghost-000")
        assert err.value.status == 404
        assert "ghost-000" in str(err.value)

    def test_wait_raises_on_failed_job(self, tmp_path):
        """A job that fails server-side surfaces as RemoteJobFailed."""
        from repro.errors import BackendError

        class FailingSession:
            def collect(self, request, progress=None):
                raise BackendError("pool exploded")

        state_dir = str(tmp_path / "state")
        control = AdvisorSession(state_dir=state_dir)
        info = control.deploy(make_config(rgprefix="failrg"))
        state = ServiceState(
            session=AdvisorSession(state_dir=state_dir),
            jobs=JobManager(jobs_dir=str(tmp_path / "state" / "jobs"),
                            session_factory=FailingSession, workers=1),
        )
        server = make_server(state_dir, port=0, state=state)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            port = server.server_address[1]
            remote = RemoteSession(f"http://127.0.0.1:{port}", timeout=5)
            job = remote.collect(deployment=info.name)
            with pytest.raises(RemoteJobFailed) as err:
                job.wait(timeout=30)
            assert "pool exploded" in str(err.value)
            assert job.refresh().state == "failed"
            with pytest.raises(RemoteJobFailed):
                job.result()
            # raise_on_failure=False returns the failed record instead.
            record = job.wait(timeout=30, raise_on_failure=False)
            assert record.state == "failed"
            assert "pool exploded" in record.error
        finally:
            server.shutdown()
            server.server_close()
            state.close()
            thread.join(timeout=10)


class TestCancelOverTheWire:
    def test_cancel_queued_job(self, tmp_path):
        gate = threading.Event()
        started = threading.Event()

        class BlockedSession:
            def collect(self, request, progress=None):
                started.set()
                gate.wait(timeout=30)
                from repro.api.results import CollectResult

                return CollectResult(deployment=request.deployment)

        state_dir = str(tmp_path / "state")
        control = AdvisorSession(state_dir=state_dir)
        info_a = control.deploy(make_config(rgprefix="cxarg"))
        info_b = control.deploy(make_config(rgprefix="cxbrg"))
        state = ServiceState(
            session=AdvisorSession(state_dir=state_dir),
            jobs=JobManager(jobs_dir=str(tmp_path / "state" / "jobs"),
                            session_factory=BlockedSession, workers=1),
        )
        server = make_server(state_dir, port=0, state=state)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            port = server.server_address[1]
            remote = RemoteSession(f"http://127.0.0.1:{port}", timeout=5)
            blocker = remote.collect(deployment=info_a.name)
            assert started.wait(timeout=10)
            queued = remote.collect(deployment=info_b.name)
            record = queued.cancel()
            assert record.state == "cancelled"
            gate.set()
            assert blocker.wait(timeout=30).state == "done"
        finally:
            gate.set()
            server.shutdown()
            server.server_close()
            state.close()
            thread.join(timeout=10)


class TestSpotOverTheWire:
    """Acceptance: spot collection and risk-adjusted advice work
    end-to-end through RemoteSession, sockets included."""

    def test_spot_collect_and_advise(self, remote):
        from repro.api import AdviseRequest, CollectRequest

        info = deploy(remote, prefix="spotwire",
                      nnodes=[1, 2], appinputs={"BOXFACTOR": ["16"]})
        job = remote.collect(CollectRequest(
            deployment=info.name,
            capacity="spot",
            recovery="checkpoint_restart",
            checkpoint_interval_s=5.0,
            checkpoint_overhead_s=1.0,
            eviction_rate=120.0,
            eviction_seed=5,
        ))
        record = job.wait(timeout=60)
        assert record.state == "done"
        result = job.result()
        assert result.capacity == "spot"
        assert result.recovery == "checkpoint_restart"
        assert result.preemptions > 0
        assert result.wasted_node_s > 0

        advice = remote.advise(AdviseRequest(
            deployment=info.name, capacity="spot",
            recovery="checkpoint_restart",
        ))
        assert advice.capacity == "spot"
        assert advice.rows
        for row in advice.rows:
            assert row.capacity == "spot"
            assert row.makespan_s >= row.exec_time_s
            assert row.p95_makespan_s > 0

    def test_spot_request_validation_maps_to_remote_error(self, remote):
        from repro.errors import RemoteError

        info = deploy(remote, prefix="spotwirebad")
        with pytest.raises(RemoteError) as excinfo:
            remote._call("POST", "/v1/jobs/collect", body={
                "deployment": info.name, "capacity": "flex",
            })
        assert excinfo.value.status == 400


class TestConditionalGets:
    def test_etag_cached_and_304_reuses_body(self, remote):
        info = deploy(remote, prefix="etagrg")
        job = remote.collect(deployment=info.name)
        job.wait(timeout=60)

        first = remote.datapoints(info.name)
        assert remote._etag_cache  # the ETag was remembered per URL
        second = remote.datapoints(info.name)
        assert second.points == first.points
        # The wire said 304 for the revalidation; the body came from the
        # client cache.
        metrics = remote._call("GET", "/metrics", raw=True)
        assert 'route="/v1/datapoints",status="304"' in metrics

    def test_advice_conditional_get_roundtrip(self, remote):
        info = deploy(remote, prefix="etagadvrg")
        remote.collect(deployment=info.name).wait(timeout=60)
        query = {"deployment": info.name}
        first = AdviceResult.from_dict(
            remote._call("GET", "/v1/advice", query=query))
        second = AdviceResult.from_dict(
            remote._call("GET", "/v1/advice", query=query))
        assert second.rows == first.rows
        metrics = remote._call("GET", "/metrics", raw=True)
        assert 'route="/v1/advice",status="304"' in metrics

    def test_etag_cache_is_bounded(self, remote):
        remote._etag_cache.clear()
        for i in range(remote.ETAG_CACHE_SIZE + 10):
            with remote._etag_lock:
                remote._etag_cache[f"http://x/{i}"] = ('"e"', "{}")
        # A real GET with an ETag triggers the LRU trim.
        deploy(remote, prefix="lrurg")
        remote.collect(deployment="lrurg-000").wait(timeout=60)
        remote.datapoints("lrurg-000")
        assert len(remote._etag_cache) <= remote.ETAG_CACHE_SIZE


class TestRefusedRetries:
    def test_connection_refused_is_retried(self, remote, monkeypatch):
        import urllib.error
        import urllib.request as urlreq

        real = urlreq.urlopen
        calls = {"n": 0}

        def flaky(request, timeout=None):
            calls["n"] += 1
            if calls["n"] <= 2:
                raise urllib.error.URLError(
                    ConnectionRefusedError(111, "Connection refused"))
            return real(request, timeout=timeout)

        monkeypatch.setattr(urlreq, "urlopen", flaky)
        remote.backoff_s = 0.001
        health = remote.health()
        assert health["status"] == "ok"
        assert calls["n"] == 3

    def test_retries_exhausted_raises_remote_error(self, remote,
                                                   monkeypatch):
        import urllib.error
        import urllib.request as urlreq

        def always_refused(request, timeout=None):
            raise urllib.error.URLError(
                ConnectionRefusedError(111, "Connection refused"))

        monkeypatch.setattr(urlreq, "urlopen", always_refused)
        remote.backoff_s = 0.001
        remote.retries = 2
        with pytest.raises(RemoteError):
            remote.health()

    def test_non_refused_errors_are_not_retried(self, remote,
                                                monkeypatch):
        import urllib.error
        import urllib.request as urlreq

        calls = {"n": 0}

        def reset(request, timeout=None):
            calls["n"] += 1
            raise urllib.error.URLError(
                ConnectionResetError(104, "Connection reset by peer"))

        monkeypatch.setattr(urlreq, "urlopen", reset)
        with pytest.raises(RemoteError):
            remote.health()
        assert calls["n"] == 1
