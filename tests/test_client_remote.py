"""RemoteSession client tests against a live in-process server.

Socket-level behaviour: typed results decoding, HTTP error mapping to
:class:`RemoteError`, connect/read timeouts, and JobHandle waiting.
"""

import socket
import threading

import pytest

from repro.api.results import AdviceResult, SessionInfo
from repro.client import (
    JobHandle,
    RemoteError,
    RemoteJobFailed,
    RemoteSession,
    RemoteTimeout,
)
from repro.errors import ConfigError
from repro.service.app import make_server
from repro.service.jobs import JobManager
from repro.service.router import ServiceState
from repro.api.session import AdvisorSession
from tests.conftest import make_config


@pytest.fixture
def server(tmp_path):
    srv = make_server(str(tmp_path / "state"), port=0, workers=2)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()
    srv.state.close()
    thread.join(timeout=10)


@pytest.fixture
def remote(server):
    port = server.server_address[1]
    return RemoteSession(f"http://127.0.0.1:{port}", timeout=10)


def deploy(remote, prefix="remoterg", **overrides):
    return remote.deploy(make_config(rgprefix=prefix, **overrides).to_dict())


class TestTypedSurface:
    def test_deploy_returns_session_info(self, remote):
        info = deploy(remote)
        assert isinstance(info, SessionInfo)
        assert info.name == "remoterg-000"
        assert info.scenario_count == 2

    def test_deploy_rejects_non_mapping(self, remote):
        with pytest.raises(ConfigError):
            remote.deploy(42)

    def test_deploy_from_local_yaml_path(self, remote, tmp_path):
        path = tmp_path / "config.yaml"
        path.write_text(make_config(rgprefix="yamlrg").to_yaml())
        info = remote.deploy(str(path))
        assert info.name == "yamlrg-000"

    def test_list_info_shutdown(self, remote):
        info = deploy(remote)
        assert [d.name for d in remote.list_deployments()] == [info.name]
        assert remote.info(info.name).appname == "lammps"
        remote.shutdown(info.name)
        assert remote.list_deployments() == []

    def test_collect_wait_advise(self, remote):
        info = deploy(remote)
        job = remote.collect(deployment=info.name)
        assert isinstance(job, JobHandle)
        record = job.wait(timeout=60)
        assert record.state == "done"
        result = job.result()
        assert result.completed == 2
        advice = remote.advise(deployment=info.name)
        assert isinstance(advice, AdviceResult)
        assert advice.rows
        # The remote result decodes to the same types an in-process
        # advise would produce.
        assert advice.rows[0].sku

    def test_predict_and_compare_and_plot(self, remote):
        info_a = deploy(remote, prefix="cmpxrg", nnodes=[1, 2, 4])
        info_b = deploy(remote, prefix="cmpyrg", nnodes=[1, 2, 4])
        remote.collect(deployment=info_a.name).wait(timeout=60)
        remote.collect(deployment=info_b.name).wait(timeout=60)
        prediction = remote.predict(deployment=info_a.name)
        assert prediction.trained_on == 3
        comparison = remote.compare(info_a.name, info_b.name)
        assert comparison.matched == 3
        plots = remote.plot(deployment=info_a.name)
        assert len(plots.paths) == 5

    def test_health_and_metrics(self, remote):
        assert remote.health()["status"] == "ok"
        remote.health()
        text = remote.metrics_text()
        assert 'route="/healthz"' in text


class TestErrorMapping:
    def test_unknown_deployment_maps_to_remote_error_404(self, remote):
        with pytest.raises(RemoteError) as err:
            remote.info("ghost-000")
        assert err.value.status == 404
        assert "ghost-000" in str(err.value)

    def test_bad_request_maps_to_400(self, remote):
        with pytest.raises(RemoteError) as err:
            remote.advise(deployment="")  # missing name -> ConfigError
        assert err.value.status == 400

    def test_unknown_job_maps_to_404(self, remote):
        with pytest.raises(RemoteError) as err:
            remote.job("job-nope")
        assert err.value.status == 404

    def test_connection_refused_is_remote_error_status_0(self):
        # Bind-then-close guarantees a dead port.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        remote = RemoteSession(f"http://127.0.0.1:{port}", timeout=2)
        with pytest.raises(RemoteError) as err:
            remote.health()
        assert err.value.status == 0
        assert not isinstance(err.value, RemoteTimeout)


class TestTimeouts:
    def test_read_timeout_raises_remote_timeout(self):
        """A server that accepts but never answers must not hang the
        client past its timeout."""
        silent = socket.socket()
        silent.bind(("127.0.0.1", 0))
        silent.listen(1)
        port = silent.getsockname()[1]
        try:
            remote = RemoteSession(f"http://127.0.0.1:{port}", timeout=0.3)
            with pytest.raises(RemoteTimeout):
                remote.health()
        finally:
            silent.close()

    def test_job_wait_timeout(self, tmp_path):
        """JobHandle.wait gives up with RemoteTimeout, not a hang."""
        gate = threading.Event()

        class BlockedSession:
            def collect(self, request, progress=None):
                gate.wait(timeout=30)
                from repro.api.results import CollectResult

                return CollectResult(deployment=request.deployment)

        state_dir = str(tmp_path / "state")
        info = AdvisorSession(state_dir=state_dir).deploy(
            make_config(rgprefix="slowrg"))
        state = ServiceState(
            session=AdvisorSession(state_dir=state_dir),
            jobs=JobManager(jobs_dir=str(tmp_path / "state" / "jobs"),
                            session_factory=BlockedSession, workers=1),
        )
        server = make_server(state_dir, port=0, state=state)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            port = server.server_address[1]
            remote = RemoteSession(f"http://127.0.0.1:{port}", timeout=5)
            job = remote.collect(deployment=info.name)
            with pytest.raises(RemoteTimeout):
                job.wait(timeout=0.4, poll=0.05)
            gate.set()
            assert job.wait(timeout=30).state == "done"
        finally:
            gate.set()
            server.shutdown()
            server.server_close()
            state.close()
            thread.join(timeout=10)

    def test_submit_for_unknown_deployment_is_404(self, remote):
        # Validated at submit time, under the same lock as shutdown.
        with pytest.raises(RemoteError) as err:
            remote.collect(deployment="ghost-000")
        assert err.value.status == 404
        assert "ghost-000" in str(err.value)

    def test_wait_raises_on_failed_job(self, tmp_path):
        """A job that fails server-side surfaces as RemoteJobFailed."""
        from repro.errors import BackendError

        class FailingSession:
            def collect(self, request, progress=None):
                raise BackendError("pool exploded")

        state_dir = str(tmp_path / "state")
        control = AdvisorSession(state_dir=state_dir)
        info = control.deploy(make_config(rgprefix="failrg"))
        state = ServiceState(
            session=AdvisorSession(state_dir=state_dir),
            jobs=JobManager(jobs_dir=str(tmp_path / "state" / "jobs"),
                            session_factory=FailingSession, workers=1),
        )
        server = make_server(state_dir, port=0, state=state)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            port = server.server_address[1]
            remote = RemoteSession(f"http://127.0.0.1:{port}", timeout=5)
            job = remote.collect(deployment=info.name)
            with pytest.raises(RemoteJobFailed) as err:
                job.wait(timeout=30)
            assert "pool exploded" in str(err.value)
            assert job.refresh().state == "failed"
            with pytest.raises(RemoteJobFailed):
                job.result()
            # raise_on_failure=False returns the failed record instead.
            record = job.wait(timeout=30, raise_on_failure=False)
            assert record.state == "failed"
            assert "pool exploded" in record.error
        finally:
            server.shutdown()
            server.server_close()
            state.close()
            thread.join(timeout=10)


class TestCancelOverTheWire:
    def test_cancel_queued_job(self, tmp_path):
        gate = threading.Event()
        started = threading.Event()

        class BlockedSession:
            def collect(self, request, progress=None):
                started.set()
                gate.wait(timeout=30)
                from repro.api.results import CollectResult

                return CollectResult(deployment=request.deployment)

        state_dir = str(tmp_path / "state")
        control = AdvisorSession(state_dir=state_dir)
        info_a = control.deploy(make_config(rgprefix="cxarg"))
        info_b = control.deploy(make_config(rgprefix="cxbrg"))
        state = ServiceState(
            session=AdvisorSession(state_dir=state_dir),
            jobs=JobManager(jobs_dir=str(tmp_path / "state" / "jobs"),
                            session_factory=BlockedSession, workers=1),
        )
        server = make_server(state_dir, port=0, state=state)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            port = server.server_address[1]
            remote = RemoteSession(f"http://127.0.0.1:{port}", timeout=5)
            blocker = remote.collect(deployment=info_a.name)
            assert started.wait(timeout=10)
            queued = remote.collect(deployment=info_b.name)
            record = queued.cancel()
            assert record.state == "cancelled"
            gate.set()
            assert blocker.wait(timeout=30).state == "done"
        finally:
            gate.set()
            server.shutdown()
            server.server_close()
            state.close()
            thread.join(timeout=10)


class TestSpotOverTheWire:
    """Acceptance: spot collection and risk-adjusted advice work
    end-to-end through RemoteSession, sockets included."""

    def test_spot_collect_and_advise(self, remote):
        from repro.api import AdviseRequest, CollectRequest

        info = deploy(remote, prefix="spotwire",
                      nnodes=[1, 2], appinputs={"BOXFACTOR": ["16"]})
        job = remote.collect(CollectRequest(
            deployment=info.name,
            capacity="spot",
            recovery="checkpoint_restart",
            checkpoint_interval_s=5.0,
            checkpoint_overhead_s=1.0,
            eviction_rate=120.0,
            eviction_seed=5,
        ))
        record = job.wait(timeout=60)
        assert record.state == "done"
        result = job.result()
        assert result.capacity == "spot"
        assert result.recovery == "checkpoint_restart"
        assert result.preemptions > 0
        assert result.wasted_node_s > 0

        advice = remote.advise(AdviseRequest(
            deployment=info.name, capacity="spot",
            recovery="checkpoint_restart",
        ))
        assert advice.capacity == "spot"
        assert advice.rows
        for row in advice.rows:
            assert row.capacity == "spot"
            assert row.makespan_s >= row.exec_time_s
            assert row.p95_makespan_s > 0

    def test_spot_request_validation_maps_to_remote_error(self, remote):
        from repro.errors import RemoteError

        info = deploy(remote, prefix="spotwirebad")
        with pytest.raises(RemoteError) as excinfo:
            remote._call("POST", "/v1/jobs/collect", body={
                "deployment": info.name, "capacity": "flex",
            })
        assert excinfo.value.status == 400
