"""Cross-input curve transfer and collector retry tests."""

import pytest

from repro.appkit.context import AppRunContext
from repro.appkit.script import AppScript
from repro.backends.azurebatch import AzureBatchBackend
from repro.core.collector import DataCollector
from repro.core.dataset import DataPoint, Dataset
from repro.core.deployer import Deployer
from repro.core.scenarios import Scenario, generate_scenarios
from repro.core.taskdb import TaskDB
from repro.sampling.planner import (
    SamplerPolicy,
    SmartSampler,
    work_estimator_for_app,
)
from tests.conftest import make_config


def point(sku, nnodes, t, bf):
    return DataPoint(appname="lammps", sku=sku, nnodes=nnodes, ppn=120,
                     exec_time_s=t, cost_usd=0.1,
                     appinputs={"BOXFACTOR": bf})


def scen(sku, nnodes, bf):
    return Scenario(scenario_id=f"{sku}-{nnodes}-{bf}", sku_name=sku,
                    nnodes=nnodes, ppn=120, appname="lammps",
                    appinputs={"BOXFACTOR": bf})


class TestWorkEstimator:
    def test_lammps_work_scales_cubically(self):
        estimate = work_estimator_for_app("lammps")
        w10 = estimate({"BOXFACTOR": "10"})
        w20 = estimate({"BOXFACTOR": "20"})
        assert w20 / w10 == pytest.approx(8.0)


class TestCrossInputTransfer:
    def make_sampler(self, enable_transfer=True):
        policy = SamplerPolicy(
            enable_discard=False, enable_bottleneck=False,
            enable_transfer=enable_transfer, min_r_squared=0.9,
            extrapolation=2.0,
        )
        return SmartSampler(
            hourly_prices={"Standard_HB120rs_v3": 3.6},
            policy=policy,
            work_fn=work_estimator_for_app("lammps"),
        )

    def seed_base_curve(self, sampler, bf="20"):
        """Measured curve for one input combo (near-ideal scaling)."""
        for n, t in [(2, 400.0), (4, 205.0), (8, 105.0), (16, 55.0)]:
            sampler.observe(point("Standard_HB120rs_v3", n, t, bf))

    def test_transfer_predicts_sibling_input(self):
        sampler = self.make_sampler()
        self.seed_base_curve(sampler, bf="20")
        # A different BOXFACTOR with zero probes of its own.
        decision = sampler.decide(scen("Standard_HB120rs_v3", 4, "25"))
        assert decision.action == "predict"
        # Work ratio (25/20)^3 ~ 1.95: prediction lands near 205 * 1.95.
        assert decision.predicted_time_s == pytest.approx(205 * 1.953,
                                                          rel=0.25)

    def test_transfer_disabled_runs_probes(self):
        sampler = self.make_sampler(enable_transfer=False)
        self.seed_base_curve(sampler, bf="20")
        decision = sampler.decide(scen("Standard_HB120rs_v3", 4, "25"))
        assert decision.action == "run"

    def test_no_transfer_across_skus(self):
        sampler = SmartSampler(
            hourly_prices={"Standard_HB120rs_v3": 3.6,
                           "Standard_HC44rs": 3.168},
            policy=SamplerPolicy(enable_discard=False,
                                 enable_bottleneck=False),
            work_fn=work_estimator_for_app("lammps"),
        )
        self.seed_base_curve(sampler, bf="20")
        decision = sampler.decide(scen("Standard_HC44rs", 4, "20"))
        assert decision.action == "run"

    def test_for_scenarios_attaches_estimator_automatically(self):
        config = make_config(appinputs={"BOXFACTOR": ["10", "12"]})
        scenarios = generate_scenarios(config)
        sampler = SmartSampler.for_scenarios(
            scenarios, {"Standard_HB120rs_v3": 3.6}
        )
        assert sampler.work_fn is not None

    def test_end_to_end_multi_input_savings(self):
        """A two-input sweep: the second input's curve comes mostly free."""
        config = make_config(
            nnodes=[2, 3, 4, 8],
            appinputs={"BOXFACTOR": ["20", "24"]},
        )
        deployment = Deployer().deploy(config)
        scenarios = generate_scenarios(config)
        sampler = SmartSampler.for_scenarios(
            scenarios, {"Standard_HB120rs_v3": 3.6},
            policy=SamplerPolicy(enable_discard=False,
                                 enable_bottleneck=False,
                                 min_r_squared=0.95),
        )
        collector = DataCollector(
            backend=AzureBatchBackend(service=deployment.batch),
            script=__import__("repro.appkit.plugins",
                              fromlist=["get_plugin"]).get_plugin("lammps"),
            dataset=Dataset(),
            taskdb=TaskDB(),
            sampler=sampler,
        )
        report = collector.collect(scenarios)
        assert report.predicted >= 3  # at least the sibling curve
        # Predictions stay within 20% of a full-sweep ground truth.
        truth_data = Dataset()
        truth_config = make_config(
            nnodes=[2, 3, 4, 8], appinputs={"BOXFACTOR": ["20", "24"]},
            rgprefix="truth",
        )
        truth_dep = Deployer().deploy(truth_config)
        truth_collector = DataCollector(
            backend=AzureBatchBackend(service=truth_dep.batch),
            script=__import__("repro.appkit.plugins",
                              fromlist=["get_plugin"]).get_plugin("lammps"),
            dataset=truth_data,
            taskdb=TaskDB(),
        )
        truth_collector.collect(generate_scenarios(truth_config))
        truth = {(p.sku, p.nnodes, p.inputs_key()): p.exec_time_s
                 for p in truth_data}
        for p in collector.dataset:
            key = (p.sku, p.nnodes, p.inputs_key())
            assert p.exec_time_s == pytest.approx(truth[key], rel=0.20)


class FlakyScript:
    """An AppScript whose run fails on its first N attempts per scenario."""

    def __init__(self, failures_before_success: int):
        self.failures = failures_before_success
        self.attempts = {}

    def build(self) -> AppScript:
        def run(ctx: AppRunContext) -> int:
            key = ctx.getenv("NNODES")
            seen = self.attempts.get(key, 0)
            self.attempts[key] = seen + 1
            if seen < self.failures:
                ctx.echo("transient failure")
                ctx.echo("reason: node lost during execution")
                return 1
            ctx.sleep(10.0)
            ctx.emit_var("APPEXECTIME", "10.0")
            return 0

        return AppScript(appname="lammps", setup=lambda ctx: 0, run=run,
                         setup_seconds=1.0)


class TestRetryFailed:
    def run_collect(self, retry: int, failures: int):
        config = make_config(nnodes=[2])
        deployment = Deployer().deploy(config)
        flaky = FlakyScript(failures_before_success=failures)
        collector = DataCollector(
            backend=AzureBatchBackend(service=deployment.batch),
            script=flaky.build(),
            dataset=Dataset(),
            taskdb=TaskDB(),
            retry_failed=retry,
        )
        return collector, collector.collect(generate_scenarios(config))

    def test_no_retry_fails(self):
        collector, report = self.run_collect(retry=0, failures=1)
        assert report.failed == 1
        assert collector.taskdb.counts()["failed"] == 1

    def test_retry_recovers_transient_failure(self):
        collector, report = self.run_collect(retry=1, failures=1)
        assert report.failed == 0
        assert report.completed == 1
        assert collector.taskdb.counts()["completed"] == 1

    def test_retry_budget_exhausted(self):
        _, report = self.run_collect(retry=2, failures=5)
        assert report.failed == 1
