"""Main configuration (Listing 1) tests."""

import pytest

from repro.core.config import MainConfig
from repro.errors import ConfigError
from tests.conftest import make_config

#: YAML mirroring the paper's Listing 1 (the duplicate mesh key expressed
#: as a list, which is the sweep the example intends).
LISTING1_YAML = """
subscription: mysubscription
skus:
  - Standard_HC44rs
  - Standard_HB120rs_v2
  - Standard_HB120rs_v3
rgprefix: hpcadvisortest1
appsetupurl: https://example.org/openfoam.sh
nnodes: [1, 2, 3, 4, 8, 16]
appname: openfoam
tags:
  version: v1
region: southcentralus
createjumpbox: true
ppr: 100
appinputs:
  mesh:
    - "80 24 24"
    - "60 16 16"
"""


class TestListing1:
    def test_parses(self):
        config = MainConfig.from_yaml(LISTING1_YAML)
        assert config.subscription == "mysubscription"
        assert len(config.skus) == 3
        assert config.nnodes == [1, 2, 3, 4, 8, 16]
        assert config.appname == "openfoam"
        assert config.createjumpbox
        assert config.ppr == 100
        assert config.appinputs == {"mesh": ["80 24 24", "60 16 16"]}

    def test_scenario_count_is_36(self):
        """Paper: 'This generates 3x6x2 scenarios.'"""
        config = MainConfig.from_yaml(LISTING1_YAML)
        assert config.scenario_count == 36

    def test_yaml_roundtrip(self):
        config = MainConfig.from_yaml(LISTING1_YAML)
        again = MainConfig.from_yaml(config.to_yaml())
        assert again == config


class TestValidation:
    def test_missing_required_key(self):
        with pytest.raises(ConfigError, match="missing required"):
            MainConfig.from_dict({"subscription": "x"})

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigError, match="unknown configuration key"):
            make_config(bogus_key="x")

    def test_empty_skus(self):
        with pytest.raises(ConfigError):
            make_config(skus=[])

    def test_single_sku_as_string(self):
        config = make_config(skus="Standard_HB120rs_v3")
        assert config.skus == ["Standard_HB120rs_v3"]

    def test_invalid_nnodes(self):
        with pytest.raises(ConfigError):
            make_config(nnodes=[0])
        with pytest.raises(ConfigError):
            make_config(nnodes=["four"])
        with pytest.raises(ConfigError):
            make_config(nnodes="4")

    def test_duplicate_nnodes(self):
        with pytest.raises(ConfigError, match="duplicate"):
            make_config(nnodes=[4, 4])

    def test_ppr_bounds(self):
        with pytest.raises(ConfigError):
            make_config(ppr=0)
        with pytest.raises(ConfigError):
            make_config(ppr=101)
        assert make_config(ppr=50).ppr == 50

    def test_peervpn_requires_vpn_fields(self):
        with pytest.raises(ConfigError, match="peervpn requires"):
            make_config(peervpn=True)
        config = make_config(peervpn=True, vpnrg="vpn-rg", vpnvnet="vpn-vnet")
        assert config.peervpn

    def test_scalar_appinput_becomes_list(self):
        config = make_config(appinputs={"BOXFACTOR": "30"})
        assert config.appinputs == {"BOXFACTOR": ["30"]}

    def test_empty_appinput_list_rejected(self):
        with pytest.raises(ConfigError):
            make_config(appinputs={"BOXFACTOR": []})

    def test_appinputs_not_mapping_rejected(self):
        with pytest.raises(ConfigError):
            make_config(appinputs=["BOXFACTOR"])

    def test_invalid_yaml(self):
        with pytest.raises(ConfigError, match="invalid YAML"):
            MainConfig.from_yaml("{{{")

    def test_empty_yaml(self):
        with pytest.raises(ConfigError, match="empty"):
            MainConfig.from_yaml("")

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigError, match="cannot read"):
            MainConfig.from_file(str(tmp_path / "ghost.yaml"))

    def test_from_file(self, tmp_path):
        path = tmp_path / "config.yaml"
        path.write_text(LISTING1_YAML)
        assert MainConfig.from_file(str(path)).scenario_count == 36


class TestCounts:
    def test_no_inputs_one_combination(self):
        config = make_config(appinputs={})
        assert config.input_combinations == 1
        assert config.scenario_count == len(config.skus) * len(config.nnodes)

    def test_multi_param_product(self):
        config = make_config(
            appinputs={"a": ["1", "2"], "b": ["x", "y", "z"]}
        )
        assert config.input_combinations == 6
