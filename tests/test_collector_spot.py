"""Spot-capacity sweeps through the collector: recovery policies,
eviction accounting, and the determinism goldens the ISSUE demands."""

import pytest

from repro.appkit.plugins import get_plugin
from repro.backends.azurebatch import AzureBatchBackend, pool_id_for
from repro.backends.slurm import SlurmBackend, partition_for
from repro.cloud.eviction import EvictionModel
from repro.core.collector import DataCollector
from repro.core.dataset import Dataset
from repro.core.deployer import Deployer
from repro.core.scenarios import generate_scenarios
from repro.core.taskdb import TaskDB, TaskStatus
from repro.errors import BackendError, ConfigError
from tests.conftest import make_config

TWO_SKUS = ["Standard_HB120rs_v3", "Standard_HC44rs"]

#: Eviction pressure strong enough to interrupt second-scale tasks.
BRUTAL = 600.0
#: Pressure that interrupts sometimes but always lets work finish.
FIRM = 120.0


def spot_config(**overrides):
    base = dict(skus=TWO_SKUS, nnodes=[1, 2],
                appinputs={"BOXFACTOR": ["16"]})
    base.update(overrides)
    return make_config(**base)


def build(config, backend_kind="azurebatch", capacity="spot", **kwargs):
    deployment = Deployer().deploy(config)
    if backend_kind == "azurebatch":
        backend = AzureBatchBackend(service=deployment.batch,
                                    capacity=capacity)
    else:
        from repro.slurmsim.cluster import SlurmCluster

        cluster = SlurmCluster(
            provider=deployment.provider,
            subscription=deployment.provider.get_subscription(
                config.subscription
            ),
            region=config.region,
        )
        backend = SlurmBackend(cluster=cluster, capacity=capacity)
    collector = DataCollector(
        backend=backend,
        script=get_plugin(config.appname),
        dataset=Dataset(),
        taskdb=TaskDB(),
        deployment_name="spot-test",
        capacity=capacity,
        **kwargs,
    )
    return collector, deployment


def full_dicts(dataset, drop=()):
    out = []
    for p in dataset.points():
        d = p.to_dict()
        for key in drop:
            d.pop(key)
        out.append(str(sorted(d.items())))
    return sorted(out)


def measurements(dataset):
    return sorted(
        (p.sku, p.nnodes, p.exec_time_s, p.cost_usd, p.preemptions,
         p.wasted_node_s, p.makespan_s)
        for p in dataset
    )


def assert_measurements_equal(dataset_a, dataset_b):
    """Exact on identity/counts/app time; 1e-9-relative on the floats
    derived from absolute clock subtraction (different schedules shift
    the timeline, which costs the last ulp of ``now - started``)."""
    rows_a, rows_b = measurements(dataset_a), measurements(dataset_b)
    assert len(rows_a) == len(rows_b)
    for row_a, row_b in zip(rows_a, rows_b):
        sku_a, n_a, exec_a, cost_a, pre_a, wasted_a, span_a = row_a
        sku_b, n_b, exec_b, cost_b, pre_b, wasted_b, span_b = row_b
        assert (sku_a, n_a, pre_a) == (sku_b, n_b, pre_b)
        assert exec_a == exec_b
        assert cost_a == pytest.approx(cost_b, rel=1e-9)
        assert wasted_a == pytest.approx(wasted_b, rel=1e-9, abs=1e-9)
        assert span_a == pytest.approx(span_b, rel=1e-9)


class TestRecoveryPolicies:
    @pytest.mark.parametrize("backend_kind", ["azurebatch", "slurm"])
    def test_checkpoint_restart_completes_under_pressure(self, backend_kind):
        collector, _ = build(
            spot_config(), backend_kind,
            recovery="checkpoint_restart",
            checkpoint_interval_s=5.0, checkpoint_overhead_s=1.0,
            eviction=EvictionModel.flat(FIRM, seed=3),
            max_preemptions=500,
        )
        report = collector.collect(generate_scenarios(spot_config()))
        assert report.failed == 0
        assert report.capacity == "spot"
        assert report.recovery == "checkpoint_restart"
        assert report.preemptions > 0
        assert report.wasted_node_s > 0

    def test_fail_policy_fails_on_first_eviction(self):
        collector, _ = build(
            spot_config(), recovery="fail",
            eviction=EvictionModel.flat(BRUTAL, seed=3),
        )
        report = collector.collect(generate_scenarios(spot_config()))
        assert report.failed > 0
        failed = [r for r in collector.taskdb.all()
                  if r.status is TaskStatus.FAILED]
        for record in failed:
            assert record.preemptions == 1
            assert "spot capacity reclaimed" in record.failure_reason

    def test_restart_gives_up_at_max_preemptions(self):
        collector, _ = build(
            spot_config(skus=TWO_SKUS[:1], nnodes=[1]),
            recovery="restart",
            eviction=EvictionModel.flat(5000.0, seed=1),
            max_preemptions=7,
        )
        report = collector.collect(
            generate_scenarios(spot_config(skus=TWO_SKUS[:1], nnodes=[1]))
        )
        assert report.failed == 1
        assert report.preemptions == 7
        assert "gave up after 7 spot preemption(s)" in report.failures[0]

    def test_restart_wastes_every_interrupted_attempt(self):
        config = spot_config(skus=TWO_SKUS[:1], nnodes=[2])
        collector, _ = build(
            config, recovery="restart",
            eviction=EvictionModel.flat(FIRM, seed=9),
            max_preemptions=500,
        )
        report = collector.collect(generate_scenarios(config))
        assert report.failed == 0
        point = collector.dataset.points()[0]
        if point.preemptions:
            assert point.wasted_node_s > 0
        # Restart never banks progress: the recorded app time is the
        # full nominal runtime regardless of interruptions.
        ondemand, _ = build(config, capacity="ondemand")
        ondemand.collect(generate_scenarios(config))
        assert point.exec_time_s == pytest.approx(
            ondemand.dataset.points()[0].exec_time_s
        )

    def test_checkpoint_wastes_less_than_restart(self):
        config = spot_config(appinputs={"BOXFACTOR": ["30"]}, nnodes=[2])
        kwargs = dict(
            eviction=EvictionModel.flat(FIRM, seed=5), max_preemptions=500,
            checkpoint_interval_s=10.0, checkpoint_overhead_s=1.0,
        )
        restart, _ = build(config, recovery="restart", **kwargs)
        restart_report = restart.collect(generate_scenarios(config))
        checkpoint, _ = build(config, recovery="checkpoint_restart",
                              **kwargs)
        checkpoint_report = checkpoint.collect(generate_scenarios(config))
        assert restart_report.preemptions > 0
        # Same eviction draws land on both sweeps (same seed/keys); the
        # checkpointing sweep salvages work the restart sweep redoes.
        assert (checkpoint_report.wasted_node_s
                < restart_report.wasted_node_s)

    def test_effective_cost_decomposes_exactly(self):
        config = spot_config(skus=TWO_SKUS[:1], nnodes=[2],
                             appinputs={"BOXFACTOR": ["30"]})
        collector, deployment = build(
            config, recovery="checkpoint_restart",
            checkpoint_interval_s=10.0, checkpoint_overhead_s=2.0,
            eviction=EvictionModel.flat(FIRM, seed=2), max_preemptions=500,
        )
        collector.collect(generate_scenarios(config))
        point = collector.dataset.points()[0]
        assert point.preemptions > 0
        price = deployment.provider.prices.hourly_price(
            point.sku, config.region, spot=True
        )
        billed_node_s = point.exec_time_s * point.nnodes + point.wasted_node_s
        assert point.cost_usd == pytest.approx(
            price * billed_node_s / 3600.0, rel=1e-9
        )

    def test_spot_pools_and_partitions_live_under_distinct_ids(self):
        assert pool_id_for("Standard_HB120rs_v3", "spot") \
            == "pool-spot-hb120rs_v3"
        assert partition_for("Standard_HB120rs_v3", "spot") \
            == "part-spot-hb120rs_v3"
        collector, deployment = build(
            spot_config(skus=TWO_SKUS[:1], nnodes=[1]),
            eviction=EvictionModel.flat(0.0),
        )
        collector.collect(
            generate_scenarios(spot_config(skus=TWO_SKUS[:1], nnodes=[1]))
        )
        assert "pool-spot-hb120rs_v3" in deployment.batch.pools
        assert deployment.batch.pools["pool-spot-hb120rs_v3"].spot

    def test_pool_regrows_after_eviction(self):
        config = spot_config(skus=TWO_SKUS[:1], nnodes=[2],
                             appinputs={"BOXFACTOR": ["30"]})
        collector, deployment = build(
            config, recovery="checkpoint_restart",
            checkpoint_interval_s=10.0, checkpoint_overhead_s=1.0,
            eviction=EvictionModel.flat(FIRM, seed=2), max_preemptions=500,
        )
        report = collector.collect(generate_scenarios(config))
        assert report.completed == 1
        pool = deployment.batch.pools["pool-spot-hb120rs_v3"]
        assert pool.preemption_count == report.preemptions
        # Each replacement node booted: provisioning overhead grew beyond
        # the initial bring-up of two nodes.
        assert collector.backend.provisioning_overhead_s > 0

    def test_retry_draws_fresh_eviction_times(self):
        """Regression: eviction draws are keyed on a sweep-cumulative
        per-scenario counter, not an attempt index local to one
        execution.  A ``retry_failed`` re-run therefore continues the
        draw sequence instead of replaying the draws that already killed
        the scenario.

        At this seed draw 0 evicts the 75 s task after ~10 s and draw 1
        survives (~204 s): the first execution fails under
        ``recovery="fail"`` and the retry completes.  The old code
        re-drew draw 0 on the retry, so the re-run was evicted at the
        same instant and the scenario could never recover.
        """
        config = spot_config(skus=TWO_SKUS[:1], nnodes=[1])
        collector, _ = build(
            config, recovery="fail", retry_failed=1,
            eviction=EvictionModel.flat(60.0, seed=11),
        )
        report = collector.collect(generate_scenarios(config))
        assert report.completed == 1
        assert report.failed == 0
        # One draw per execution: the failed first run plus the retry.
        assert collector._spot_draws == {"t00000": 2}
        record = collector.taskdb.all()[0]
        assert record.status is TaskStatus.COMPLETED

    def test_makespan_includes_lost_attempts(self):
        config = spot_config(skus=TWO_SKUS[:1], nnodes=[2],
                             appinputs={"BOXFACTOR": ["30"]})
        collector, _ = build(
            config, recovery="checkpoint_restart",
            checkpoint_interval_s=10.0, checkpoint_overhead_s=1.0,
            eviction=EvictionModel.flat(FIRM, seed=2), max_preemptions=500,
        )
        collector.collect(generate_scenarios(config))
        point = collector.dataset.points()[0]
        assert point.preemptions > 0
        assert point.makespan_s > point.exec_time_s


class TestSpotGuards:
    def test_spot_requires_preemption_capable_backend(self):
        from tests.test_collector_concurrent import BlockingStubBackend

        collector = DataCollector(
            backend=BlockingStubBackend(), script=get_plugin("lammps"),
            dataset=Dataset(), taskdb=TaskDB(), capacity="spot",
        )
        with pytest.raises(BackendError, match="preemption"):
            collector.collect(generate_scenarios(make_config()))

    def test_invalid_capacity_rejected(self):
        collector, _ = build(spot_config(), capacity="flex")
        with pytest.raises(ConfigError, match="capacity"):
            collector.collect(generate_scenarios(spot_config()))

    def test_invalid_recovery_rejected(self):
        collector, _ = build(spot_config(), recovery="pray")
        with pytest.raises(ConfigError, match="recovery"):
            collector.collect(generate_scenarios(spot_config()))

    def test_invalid_checkpoint_interval_rejected(self):
        collector, _ = build(spot_config(), checkpoint_interval_s=0.0)
        with pytest.raises(ConfigError, match="checkpoint_interval"):
            collector.collect(generate_scenarios(spot_config()))


class TestDeterminismGoldens:
    """Same ``eviction_seed`` => identical outcome, any schedule."""

    def sweep(self, parallel=1, seed=11, sequential=False,
              monkeypatch=None):
        config = spot_config(appinputs={"BOXFACTOR": ["16", "30"]})
        collector, _ = build(
            config, recovery="checkpoint_restart",
            checkpoint_interval_s=5.0, checkpoint_overhead_s=1.0,
            eviction=EvictionModel.flat(FIRM, seed=seed),
            max_preemptions=500, max_parallel_pools=parallel,
        )
        if sequential:
            monkeypatch.setattr(
                AzureBatchBackend, "supports_concurrency",
                property(lambda self: False),
            )
        report = collector.collect(generate_scenarios(config))
        return report, collector

    def test_scheduled_equals_sequential_byte_identical(self, monkeypatch):
        """The event-driven walk at 1 pool reproduces the blocking walk
        exactly — eviction timestamps included."""
        _, scheduled = self.sweep(parallel=1)
        _, sequential = self.sweep(sequential=True, monkeypatch=monkeypatch)
        assert full_dicts(scheduled.dataset) == full_dicts(sequential.dataset)
        assert ([r.to_dict() for r in scheduled.taskdb.all()]
                == [r.to_dict() for r in sequential.taskdb.all()])

    def test_same_seed_identical_report_across_parallelism(self, monkeypatch):
        """ISSUE golden: same eviction_seed => identical CollectionReport
        across max_parallel_pools=1 and >1 (makespan/timestamps aside)."""
        report_1, collector_1 = self.sweep(parallel=1)
        report_2, collector_2 = self.sweep(parallel=2)
        for field in ("executed", "completed", "failed", "preemptions",
                      "capacity", "recovery", "max_parallel_pools"):
            value_1, value_2 = (getattr(report_1, field),
                                getattr(report_2, field))
            if field == "max_parallel_pools":
                assert (value_1, value_2) == (1, 2)
            else:
                assert value_1 == value_2, field
        assert report_1.task_cost_usd == pytest.approx(
            report_2.task_cost_usd)
        assert report_1.wasted_node_s == pytest.approx(
            report_2.wasted_node_s)
        assert_measurements_equal(collector_1.dataset, collector_2.dataset)
        # Concurrency still wins wall-clock even with evictions.
        assert report_2.makespan_s < report_1.makespan_s

    def test_same_seed_reproduces_byte_identically(self):
        _, first = self.sweep(parallel=2, seed=11)
        _, second = self.sweep(parallel=2, seed=11)
        assert full_dicts(first.dataset) == full_dicts(second.dataset)

    def test_different_seed_changes_evictions(self):
        report_a, _ = self.sweep(parallel=1, seed=11)
        report_b, _ = self.sweep(parallel=1, seed=12)
        assert report_a.preemptions != report_b.preemptions

    def test_rate_zero_reproduces_ondemand_byte_identically(self):
        """ISSUE golden: eviction rate 0.0 == the non-spot run, byte for
        byte, once the tier label and the spot discount are factored out."""
        config = spot_config()
        spot, spot_dep = build(config, eviction=EvictionModel.flat(0.0))
        spot_dep.provider.prices.spot_discount = 0.0
        spot.collect(generate_scenarios(config))

        ondemand, _ = build(config, capacity="ondemand")
        ondemand.collect(generate_scenarios(config))

        assert full_dicts(spot.dataset, drop=("capacity",)) \
            == full_dicts(ondemand.dataset, drop=("capacity",))
        assert all(p.capacity == "spot" for p in spot.dataset)
        assert all(p.capacity == "ondemand" for p in ondemand.dataset)

    def test_no_eviction_model_means_no_evictions(self):
        config = spot_config(skus=TWO_SKUS[:1], nnodes=[1])
        collector, _ = build(config, eviction=None)
        report = collector.collect(generate_scenarios(config))
        assert report.preemptions == 0
        assert report.completed == 1
