"""GUI tests: page rendering plus one live HTTP round-trip.

Pages render from an :class:`repro.api.AdvisorSession`; ``make_server``
also still accepts a bare ``StateStore`` (backward compatibility), which
one test exercises.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.api import AdvisorSession
from repro.core.statefiles import StateStore
from repro.gui import pages
from repro.gui.server import make_server
from tests.conftest import make_config


@pytest.fixture
def session(tmp_path):
    return AdvisorSession(state_dir=str(tmp_path))


@pytest.fixture
def session_with_data(session):
    config = make_config(nnodes=[1, 2])
    info = session.deploy(config)
    session.collect(deployment=info.name)
    return session, info.name


class TestPages:
    def test_index_empty(self, session):
        html = pages.render_index(session)
        assert "No deployments yet" in html

    def test_index_lists_deployments(self, session_with_data):
        session, name = session_with_data
        html = pages.render_index(session)
        assert name in html
        assert "advice" in html

    def test_deployment_page(self, session_with_data):
        session, name = session_with_data
        html = pages.render_deployment(session, name)
        assert name in html
        assert "lammps" in html
        assert "Collected points: 2" in html

    def test_plots_page_embeds_svgs(self, session_with_data):
        session, name = session_with_data
        html = pages.render_plots(session, name)
        assert html.count("<svg") == 4

    def test_advice_page_table(self, session_with_data):
        session, name = session_with_data
        html = pages.render_advice(session, name)
        assert "hb120rs_v3" in html
        assert "Exectime" in html

    def test_advice_sorted_by_cost(self, session_with_data):
        session, name = session_with_data
        html = pages.render_advice(session, name, sort_by="cost")
        assert "Pareto front" in html


class TestHttpServer:
    def test_live_roundtrip(self, session_with_data):
        session, name = session_with_data
        server = make_server(session, host="127.0.0.1", port=0)
        port = server.server_address[1]
        thread = threading.Thread(target=server.handle_request)
        thread.start()
        try:
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/", timeout=5
            ) as response:
                assert response.status == 200
                body = response.read().decode()
            assert name in body
        finally:
            thread.join(timeout=5)
            server.server_close()

    def test_404_for_unknown_page(self, session):
        server = make_server(session, host="127.0.0.1", port=0)
        port = server.server_address[1]
        thread = threading.Thread(target=server.handle_request)
        thread.start()
        try:
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/nope", timeout=5
                )
            assert err.value.code == 404
        finally:
            thread.join(timeout=5)
            server.server_close()

    def test_advice_page_over_http(self, session_with_data):
        session, name = session_with_data
        server = make_server(session, host="127.0.0.1", port=0)
        port = server.server_address[1]
        thread = threading.Thread(target=server.handle_request)
        thread.start()
        try:
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/advice/{name}?sort=cost", timeout=5
            ) as response:
                body = response.read().decode()
            assert "hb120rs_v3" in body
        finally:
            thread.join(timeout=5)
            server.server_close()

    def test_make_server_accepts_legacy_state_store(self, session_with_data):
        session, name = session_with_data
        store = StateStore(root=session.store.root)
        server = make_server(store, host="127.0.0.1", port=0)
        try:
            assert isinstance(server.RequestHandlerClass.session,
                              AdvisorSession)
        finally:
            server.server_close()


def _one_request(server, method, path, port):
    thread = threading.Thread(target=server.handle_request)
    thread.start()
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", method=method
    )
    try:
        with urllib.request.urlopen(request, timeout=5) as response:
            return response.status, response.read().decode()
    finally:
        thread.join(timeout=5)


class TestHealthAnd405:
    def test_healthz_endpoint(self, session):
        server = make_server(session, host="127.0.0.1", port=0)
        port = server.server_address[1]
        try:
            status, body = _one_request(server, "GET", "/healthz", port)
            assert status == 200
            payload = json.loads(body)
            assert payload["status"] == "ok"
        finally:
            server.server_close()

    @pytest.mark.parametrize("method", ["POST", "PUT", "DELETE", "PATCH"])
    def test_non_get_methods_are_405(self, session, method):
        server = make_server(session, host="127.0.0.1", port=0)
        port = server.server_address[1]
        try:
            thread = threading.Thread(target=server.handle_request)
            thread.start()
            request = urllib.request.Request(
                f"http://127.0.0.1:{port}/", method=method
            )
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(request, timeout=5)
            assert err.value.code == 405
            thread.join(timeout=5)
        finally:
            server.server_close()


class TestApiMount:
    """The GUI reuses the service router for its JSON data needs."""

    def test_api_deployments_lists_json(self, session_with_data):
        session, name = session_with_data
        server = make_server(session, host="127.0.0.1", port=0)
        port = server.server_address[1]
        try:
            status, body = _one_request(
                server, "GET", "/api/v1/deployments", port)
            assert status == 200
            payload = json.loads(body)
            assert [d["name"] for d in payload["deployments"]] == [name]
        finally:
            server.server_close()

    def test_api_advice_matches_html_page_data(self, session_with_data):
        session, name = session_with_data
        server = make_server(session, host="127.0.0.1", port=0)
        port = server.server_address[1]
        try:
            status, body = _one_request(
                server, "GET", f"/api/v1/advice?deployment={name}", port)
            assert status == 200
            payload = json.loads(body)
            assert payload["deployment"] == name
            assert payload["rows"]
        finally:
            server.server_close()

    def test_api_jobs_unavailable_on_gui_mount(self, session):
        server = make_server(session, host="127.0.0.1", port=0)
        port = server.server_address[1]
        try:
            thread = threading.Thread(target=server.handle_request)
            thread.start()
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/api/v1/jobs", timeout=5)
            assert err.value.code == 503
            thread.join(timeout=5)
        finally:
            server.server_close()


class TestSweepTimelineEvictionMarkers:
    def test_markers_shown_for_spot_sweeps(self, tmp_path):
        from repro.api import AdvisorSession, CollectRequest
        from repro.gui.pages import render_deployment

        session = AdvisorSession(state_dir=str(tmp_path / "state"))
        info = session.deploy(make_config(rgprefix="guispot",
                                          appinputs={"BOXFACTOR": ["16"]}))
        result = session.collect(CollectRequest(
            deployment=info.name, capacity="spot",
            recovery="checkpoint_restart",
            checkpoint_interval_s=5.0, checkpoint_overhead_s=1.0,
            eviction_rate=150.0, eviction_seed=3,
        ))
        assert result.preemptions > 0
        html = render_deployment(session, info.name)
        assert "Evictions" in html
        assert "&#9889;" in html  # the lightning marker
        assert "spot capacity" in html

    def test_no_marker_column_for_ondemand_sweeps(self, tmp_path):
        from repro.api import AdvisorSession, CollectRequest
        from repro.gui.pages import render_deployment

        session = AdvisorSession(state_dir=str(tmp_path / "state"))
        info = session.deploy(make_config(rgprefix="guiod"))
        session.collect(CollectRequest(deployment=info.name))
        html = render_deployment(session, info.name)
        assert "Evictions" not in html
        assert "&#9889;" not in html
