"""GUI tests: page rendering plus one live HTTP round-trip."""

import threading
import urllib.request

import pytest

from repro.appkit.plugins import get_plugin
from repro.backends.azurebatch import AzureBatchBackend
from repro.core.collector import DataCollector
from repro.core.dataset import Dataset
from repro.core.deployer import Deployer
from repro.core.scenarios import generate_scenarios
from repro.core.statefiles import StateStore
from repro.core.taskdb import TaskDB
from repro.gui import pages
from repro.gui.server import make_server
from tests.conftest import make_config


@pytest.fixture
def store(tmp_path):
    return StateStore(root=str(tmp_path))


@pytest.fixture
def store_with_data(store):
    config = make_config(nnodes=[1, 2])
    deployment = Deployer().deploy(config)
    store.save_deployment(deployment)
    collector = DataCollector(
        backend=AzureBatchBackend(service=deployment.batch),
        script=get_plugin("lammps"),
        dataset=Dataset(path=store.dataset_path(deployment.name)),
        taskdb=TaskDB(path=store.taskdb_path(deployment.name)),
        deployment_name=deployment.name,
    )
    collector.collect(generate_scenarios(config))
    return store, deployment.name


class TestPages:
    def test_index_empty(self, store):
        html = pages.render_index(store)
        assert "No deployments yet" in html

    def test_index_lists_deployments(self, store_with_data):
        store, name = store_with_data
        html = pages.render_index(store)
        assert name in html
        assert "advice" in html

    def test_deployment_page(self, store_with_data):
        store, name = store_with_data
        html = pages.render_deployment(store, name)
        assert name in html
        assert "lammps" in html
        assert "Collected points: 2" in html

    def test_plots_page_embeds_svgs(self, store_with_data):
        store, name = store_with_data
        html = pages.render_plots(store, name)
        assert html.count("<svg") == 4

    def test_advice_page_table(self, store_with_data):
        store, name = store_with_data
        html = pages.render_advice(store, name)
        assert "hb120rs_v3" in html
        assert "Exectime" in html

    def test_advice_sorted_by_cost(self, store_with_data):
        store, name = store_with_data
        html = pages.render_advice(store, name, sort_by="cost")
        assert "Pareto front" in html


class TestHttpServer:
    def test_live_roundtrip(self, store_with_data):
        store, name = store_with_data
        server = make_server(store, host="127.0.0.1", port=0)
        port = server.server_address[1]
        thread = threading.Thread(target=server.handle_request)
        thread.start()
        try:
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/", timeout=5
            ) as response:
                assert response.status == 200
                body = response.read().decode()
            assert name in body
        finally:
            thread.join(timeout=5)
            server.server_close()

    def test_404_for_unknown_page(self, store):
        server = make_server(store, host="127.0.0.1", port=0)
        port = server.server_address[1]
        thread = threading.Thread(target=server.handle_request)
        thread.start()
        try:
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/nope", timeout=5
                )
            assert err.value.code == 404
        finally:
            thread.join(timeout=5)
            server.server_close()

    def test_advice_page_over_http(self, store_with_data):
        store, name = store_with_data
        server = make_server(store, host="127.0.0.1", port=0)
        port = server.server_address[1]
        thread = threading.Thread(target=server.handle_request)
        thread.start()
        try:
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/advice/{name}?sort=cost", timeout=5
            ) as response:
                body = response.read().decode()
            assert "hb120rs_v3" in body
        finally:
            thread.join(timeout=5)
            server.server_close()
