"""repro.api request/result types: validation and JSON round-tripping."""

import json

import pytest

from repro.api import (
    AdviceResult,
    AdviseRequest,
    CollectRequest,
    CollectResult,
    PlotRequest,
    PlotResult,
    PredictRequest,
    PredictResult,
    RecipeRequest,
    RecipeResult,
    SessionInfo,
)
from repro.core.advisor import AdviceRow
from repro.errors import ConfigError


def round_trip(obj):
    return type(obj).from_dict(json.loads(json.dumps(obj.to_dict())))


ROW = AdviceRow(exec_time_s=34.0, cost_usd=0.544, nnodes=16,
                sku="Standard_HB120rs_v3", ppn=120,
                appinputs={"BOXFACTOR": "30"})

SPOT_ROW = AdviceRow(exec_time_s=34.0, cost_usd=0.21, nnodes=16,
                     sku="Standard_HB120rs_v3", ppn=120,
                     appinputs={"BOXFACTOR": "30"}, capacity="spot",
                     preemptions=3, makespan_s=61.5, p95_makespan_s=140.0)

SAMPLES = [
    CollectRequest(deployment="d-000", smart_sampling=True, budget_usd=9.5,
                   sampling_policy="aggressive", noise=0.02, seed=7),
    CollectRequest(deployment="d-000", capacity="spot",
                   recovery="checkpoint_restart",
                   checkpoint_interval_s=120.0, checkpoint_overhead_s=12.0,
                   eviction_rate=25.0, eviction_seed=42),
    AdviseRequest(deployment="d-000", capacity="spot", recovery="restart",
                  eviction_rate=40.0, checkpoint_interval_s=90.0,
                  checkpoint_overhead_s=9.0),
    CollectResult(deployment="d-000", capacity="spot",
                  recovery="checkpoint_restart", preemptions=17,
                  wasted_node_s=432.5, executed=4, completed=3, failed=1),
    AdviceResult(deployment="d-000", appname="lammps", capacity="spot",
                 rows=(SPOT_ROW,), dataset_points=8),
    AdviseRequest(deployment="d-000", appname="lammps",
                  filters={"BOXFACTOR": "30"}, nnodes=(3, 4, 8),
                  sku="hb120rs_v3", sort_by="cost", max_rows=5),
    PlotRequest(deployment="d-000", output_dir="/tmp/x",
                filters={"mesh": "40 16 16"}, subtitle="sub"),
    PredictRequest(deployment="d-000", inputs={"BOXFACTOR": "30"},
                   nnodes=(4, 8), model="knn"),
    RecipeRequest(deployment="d-000", row=1, sort_by="cost",
                  extra_env={"A": "1"}, region="eastus"),
    SessionInfo(name="d-000", region="eastus", appname="lammps",
                scenario_count=6, storage_account="sa", jumpbox="jb",
                dataset_points=4),
    CollectResult(deployment="d-000", backend="slurm", executed=3,
                  completed=2, failed=1, task_cost_usd=1.25,
                  failures=("s1: boom",), dataset_points=2,
                  sampler_decisions=("s0: run",), budget_spent_usd=1.25),
    AdviceResult(deployment="d-000", appname="lammps", sort_by="time",
                 rows=(ROW,), dataset_points=12),
    PredictResult(deployment="d-000", appname="lammps", model="ridge",
                  inputs={"BOXFACTOR": "30"}, rows=(ROW,), trained_on=30,
                  cv_mape=0.041),
    PlotResult(deployment="d-000", output_dir="/tmp/x",
               paths=("/tmp/x/plot_cost.svg",), kinds=("cost",)),
    RecipeResult(deployment="d-000", row=ROW, slurm_script="#!/bin/bash",
                 cluster_recipe="vm_type: x"),
]


@pytest.mark.parametrize(
    "obj", SAMPLES, ids=lambda o: type(o).__name__
)
def test_json_round_trip(obj):
    assert round_trip(obj) == obj


def test_to_json_from_json():
    req = CollectRequest(deployment="d", budget_usd=3.0)
    assert CollectRequest.from_json(req.to_json()) == req


def test_from_dict_rejects_unknown_keys():
    with pytest.raises(ConfigError, match="unknown"):
        AdviseRequest.from_dict({"deployment": "d", "bogus": 1})


def test_from_json_rejects_invalid_payloads():
    with pytest.raises(ConfigError, match="invalid"):
        CollectRequest.from_json("{not json")
    with pytest.raises(ConfigError, match="mapping"):
        CollectRequest.from_dict([1, 2])


class TestValidation:
    def test_collect_request_rejects_negative_noise(self):
        with pytest.raises(ConfigError):
            CollectRequest(deployment="d", noise=-1.0)

    def test_collect_request_rejects_negative_retries(self):
        with pytest.raises(ConfigError):
            CollectRequest(deployment="d", retry_failed=-1)

    def test_advise_request_rejects_bad_sort(self):
        with pytest.raises(ConfigError, match="sort_by"):
            AdviseRequest(deployment="d", sort_by="speed")

    def test_predict_request_rejects_bad_model(self):
        with pytest.raises(ConfigError, match="model"):
            PredictRequest(deployment="d", model="forest")

    def test_recipe_request_rejects_negative_row(self):
        with pytest.raises(ConfigError, match="row"):
            RecipeRequest(deployment="d", row=-1)

    def test_collect_request_rejects_bad_capacity(self):
        with pytest.raises(ConfigError, match="capacity"):
            CollectRequest(deployment="d", capacity="flex")

    def test_collect_request_rejects_bad_recovery(self):
        with pytest.raises(ConfigError, match="recovery"):
            CollectRequest(deployment="d", recovery="pray")

    def test_collect_request_rejects_bad_checkpoint_geometry(self):
        with pytest.raises(ConfigError, match="checkpoint_interval"):
            CollectRequest(deployment="d", checkpoint_interval_s=0.0)
        with pytest.raises(ConfigError, match="checkpoint_overhead"):
            CollectRequest(deployment="d", checkpoint_overhead_s=-1.0)
        with pytest.raises(ConfigError, match="eviction_rate"):
            CollectRequest(deployment="d", eviction_rate=-2.0)

    def test_advise_request_rejects_bad_capacity(self):
        with pytest.raises(ConfigError, match="capacity"):
            AdviseRequest(deployment="d", capacity="flex")

    def test_advise_request_rejects_fail_recovery(self):
        # `fail` has no expected-value model; the what-if refuses it.
        with pytest.raises(ConfigError, match="recovery"):
            AdviseRequest(deployment="d", recovery="fail")

    def test_advise_request_empty_capacity_means_as_measured(self):
        assert AdviseRequest(deployment="d").capacity == ""

    def test_collect_request_defaults_to_ondemand(self):
        req = CollectRequest(deployment="d")
        assert req.capacity == "ondemand"
        assert req.eviction_rate is None
        assert req.eviction_seed == 0


class TestAdviceResultHelpers:
    slow_cheap = AdviceRow(exec_time_s=100.0, cost_usd=0.1, nnodes=1,
                           sku="Standard_HC44rs")
    fast_dear = AdviceRow(exec_time_s=10.0, cost_usd=1.0, nnodes=8,
                          sku="Standard_HB120rs_v3")

    def test_fastest_and_cheapest(self):
        result = AdviceResult(deployment="d",
                              rows=(self.fast_dear, self.slow_cheap))
        assert result.fastest == self.fast_dear
        assert result.cheapest == self.slow_cheap
        assert result.best == self.fast_dear

    def test_resorted_by_cost(self):
        result = AdviceResult(deployment="d", sort_by="time",
                              rows=(self.fast_dear, self.slow_cheap))
        by_cost = result.resorted("cost")
        assert by_cost.rows[0] == self.slow_cheap
        assert by_cost.sort_by == "cost"

    def test_render_table_marks_predictions(self):
        pred = AdviceRow(exec_time_s=5.0, cost_usd=0.5, nnodes=2,
                         sku="Standard_HC44rs", predicted=True)
        table = AdviceResult(deployment="d", rows=(pred,)).render_table()
        assert "*" in table

    def test_empty_result_helpers(self):
        result = AdviceResult(deployment="d")
        assert result.best is None
        assert result.fastest is None
        assert result.cheapest is None
