"""Machine model and cache-pressure tests."""

import pytest

from repro.cloud.skus import get_sku
from repro.perf.cache import (
    ARCH_CACHE_PROFILES,
    CacheProfile,
    cache_slowdown,
)
from repro.perf.machine import MachineModel


class TestMachineModel:
    def test_compute_scale_full_node(self):
        machine = MachineModel(get_sku("Standard_HB120rs_v3"))
        assert machine.compute_scale(120, cpu_fraction=1.0) == pytest.approx(1.0)

    def test_compute_scale_monotone_in_ppn(self):
        machine = MachineModel(get_sku("Standard_HB120rs_v3"))
        values = [machine.compute_scale(p, 0.5) for p in (1, 30, 60, 120)]
        assert values == sorted(values)

    def test_bandwidth_bound_saturates_at_half_cores(self):
        """Pure bandwidth-bound work gets full throughput at ppn=cores/2."""
        machine = MachineModel(get_sku("Standard_HB120rs_v3"))
        assert machine.compute_scale(60, cpu_fraction=0.0) == pytest.approx(1.0)
        assert machine.compute_scale(120, cpu_fraction=0.0) == pytest.approx(1.0)

    def test_cpu_bound_scales_linearly(self):
        machine = MachineModel(get_sku("Standard_HB120rs_v3"))
        assert machine.compute_scale(60, cpu_fraction=1.0) == pytest.approx(0.5)

    def test_ppn_bounds_validated(self):
        machine = MachineModel(get_sku("Standard_HC44rs"))
        with pytest.raises(ValueError):
            machine.compute_scale(0, 0.5)
        with pytest.raises(ValueError):
            machine.compute_scale(45, 0.5)

    def test_cpu_fraction_validated(self):
        machine = MachineModel(get_sku("Standard_HC44rs"))
        with pytest.raises(ValueError):
            machine.compute_scale(4, 1.5)

    def test_fits_in_memory(self):
        machine = MachineModel(get_sku("Standard_HB120rs_v3"))  # 448 GiB
        assert machine.fits_in_memory(100e9)
        assert not machine.fits_in_memory(400e9)  # x1.6 safety > 448 GiB


class TestCacheProfile:
    def test_slowdown_at_least_one(self):
        profile = CacheProfile("saturating", amp=0.5, ws_ref_l3_multiple=10)
        assert profile.slowdown(0, 512e6) == 1.0
        assert profile.slowdown(1e12, 512e6) >= 1.0

    def test_saturating_bounded(self):
        profile = CacheProfile("saturating", amp=0.5, ws_ref_l3_multiple=10)
        assert profile.slowdown(1e15, 512e6) <= 1.5 + 1e-9

    def test_power_unbounded(self):
        profile = CacheProfile("power", amp=0.5, ws_ref_l3_multiple=10)
        assert profile.slowdown(1e13, 512e6) > 2.0

    def test_monotone_in_working_set(self):
        for profile in ARCH_CACHE_PROFILES.values():
            values = [profile.slowdown(ws, 512e6)
                      for ws in (1e8, 1e9, 1e10, 1e11)]
            assert values == sorted(values)

    def test_unknown_form_rejected(self):
        with pytest.raises(ValueError):
            CacheProfile("exponential", amp=0.5, ws_ref_l3_multiple=10)

    def test_negative_amp_rejected(self):
        with pytest.raises(ValueError):
            CacheProfile("power", amp=-1, ws_ref_l3_multiple=10)

    def test_invalid_inputs_rejected(self):
        profile = CacheProfile("power", amp=0.5, ws_ref_l3_multiple=10)
        with pytest.raises(ValueError):
            profile.slowdown(-1, 512e6)
        with pytest.raises(ValueError):
            profile.slowdown(1e9, 0)


class TestArchProfiles:
    def test_rome_has_strongest_penalty(self):
        """Rome's profile produces the paper's Fig. 4/5 superlinearity."""
        ws_full = 55e9  # the 864M-atom LAMMPS working set
        ws_16 = ws_full / 16
        rome = get_sku("Standard_HB120rs_v2")
        milan = get_sku("Standard_HB120rs_v3")
        rome_gain = cache_slowdown(rome, ws_full) / cache_slowdown(rome, ws_16)
        milan_gain = cache_slowdown(milan, ws_full) / cache_slowdown(milan, ws_16)
        assert rome_gain > 1.5  # strongly superlinear
        assert milan_gain < 1.1  # near-linear
