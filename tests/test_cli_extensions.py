"""Tests for the CLI extensions: --report, --budget, --spot, predict."""

import pytest

from repro.cli.main import main
from repro.core.cost import reprice_dataset, spot_savings_summary
from repro.cloud.pricing import PriceCatalog
from repro.core.dataset import DataPoint, Dataset

CONFIG = """
subscription: ext
skus:
  - Standard_HB120rs_v3
rgprefix: extrg
appsetupurl: https://example.org/lammps.sh
nnodes: [2, 3, 4, 8]
appname: lammps
region: southcentralus
ppr: 100
appinputs:
  BOXFACTOR: ["25"]
"""


@pytest.fixture
def collected(tmp_path):
    config_path = tmp_path / "config.yaml"
    config_path.write_text(CONFIG)
    state = str(tmp_path / "state")
    assert main(["--state-dir", state, "deploy", "create", "-c",
                 str(config_path)]) == 0
    assert main(["--state-dir", state, "collect", "-n", "extrg-000"]) == 0
    return state


class TestCollectExtensions:
    def test_report_flag(self, tmp_path, capsys):
        config_path = tmp_path / "config.yaml"
        config_path.write_text(CONFIG)
        state = str(tmp_path / "state")
        main(["--state-dir", state, "deploy", "create", "-c",
              str(config_path)])
        assert main(["--state-dir", state, "collect", "-n", "extrg-000",
                     "--report"]) == 0
        out = capsys.readouterr().out
        assert "Sweep report for extrg-000" in out
        assert "best time" in out

    def test_budget_flag_limits_spend(self, tmp_path, capsys):
        config_path = tmp_path / "config.yaml"
        config_path.write_text(CONFIG)
        state = str(tmp_path / "state")
        main(["--state-dir", state, "deploy", "create", "-c",
              str(config_path)])
        assert main(["--state-dir", state, "collect", "-n", "extrg-000",
                     "--budget", "0.8"]) == 0
        out = capsys.readouterr().out
        assert "skipped" in out

    def test_retry_flag_accepted(self, tmp_path, capsys):
        config_path = tmp_path / "config.yaml"
        config_path.write_text(CONFIG)
        state = str(tmp_path / "state")
        main(["--state-dir", state, "deploy", "create", "-c",
              str(config_path)])
        assert main(["--state-dir", state, "collect", "-n", "extrg-000",
                     "--retry-failed", "2"]) == 0


class TestAdviceSpot:
    def test_spot_section_printed(self, collected, capsys):
        assert main(["--state-dir", collected, "advice", "-n", "extrg-000",
                     "--spot"]) == 0
        out = capsys.readouterr().out
        assert "What-if: spot capacity (risk-adjusted)" in out
        assert "spot assumes" in out


class TestPredictCommand:
    def test_predicts_new_input(self, collected, capsys):
        assert main(["--state-dir", collected, "predict", "-n", "extrg-000",
                     "--input", "BOXFACTOR=30",
                     "--nnodes", "3", "4", "8", "16"]) == 0
        out = capsys.readouterr().out
        assert "predicted advice for lammps (BOXFACTOR=30)" in out
        assert "0 executions" in out
        assert "hb120rs_v3 *" in out

    def test_defaults_to_dataset_inputs(self, collected, capsys):
        assert main(["--state-dir", collected, "predict",
                     "-n", "extrg-000"]) == 0
        out = capsys.readouterr().out
        assert "BOXFACTOR=25" in out

    def test_knn_backend(self, collected, capsys):
        assert main(["--state-dir", collected, "predict", "-n", "extrg-000",
                     "--backend", "knn"]) == 0

    def test_requires_collected_data(self, tmp_path, capsys):
        assert main(["--state-dir", str(tmp_path), "predict",
                     "-n", "ghost"]) == 2

    def test_json_output(self, collected, capsys):
        import json

        assert main(["--state-dir", collected, "predict", "-n", "extrg-000",
                     "--input", "BOXFACTOR=30", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["deployment"] == "extrg-000"
        assert payload["model"] == "ridge"
        assert payload["inputs"] == {"BOXFACTOR": "30"}
        assert payload["rows"] and payload["rows"][0]["predicted"] is True


class TestParallelPoolsFlag:
    def test_parallel_pools_accepted_and_reported(self, tmp_path, capsys):
        config_path = tmp_path / "config.yaml"
        config_path.write_text(CONFIG.replace(
            "skus:\n  - Standard_HB120rs_v3",
            "skus:\n  - Standard_HB120rs_v3\n  - Standard_HC44rs",
        ))
        state = str(tmp_path / "state")
        assert main(["--state-dir", state, "deploy", "create", "-c",
                     str(config_path)]) == 0
        assert main(["--state-dir", state, "collect", "-n", "extrg-000",
                     "--parallel-pools", "2"]) == 0
        out = capsys.readouterr().out
        assert "sweep makespan" in out
        assert "2 parallel pool(s)" in out

    def test_parallel_pools_in_json_result(self, tmp_path, capsys):
        import json

        config_path = tmp_path / "config.yaml"
        config_path.write_text(CONFIG)
        state = str(tmp_path / "state")
        assert main(["--state-dir", state, "deploy", "create", "-c",
                     str(config_path)]) == 0
        capsys.readouterr()
        assert main(["--state-dir", state, "collect", "-n", "extrg-000",
                     "--parallel-pools", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["max_parallel_pools"] == 2
        assert payload["makespan_s"] > 0

    def test_invalid_parallel_pools_rejected(self, tmp_path, capsys):
        config_path = tmp_path / "config.yaml"
        config_path.write_text(CONFIG)
        state = str(tmp_path / "state")
        main(["--state-dir", state, "deploy", "create", "-c",
              str(config_path)])
        assert main(["--state-dir", state, "collect", "-n", "extrg-000",
                     "--parallel-pools", "0"]) == 2
        assert "max_parallel_pools" in capsys.readouterr().err


def dp(nnodes, t, sku="Standard_HB120rs_v3"):
    return DataPoint(appname="lammps", sku=sku, nnodes=nnodes, ppn=120,
                     exec_time_s=t,
                     cost_usd=nnodes * 3.6 * t / 3600.0,
                     appinputs={"BOXFACTOR": "30"})


class TestRepricing:
    def test_spot_reprices_down(self):
        data = Dataset([dp(16, 36.0), dp(3, 173.0)])
        spot = reprice_dataset(data, PriceCatalog(), spot=True)
        for before, after in zip(data, spot):
            assert after.cost_usd == pytest.approx(before.cost_usd * 0.30)
            assert after.exec_time_s == before.exec_time_s

    def test_reprice_against_other_region(self):
        data = Dataset([dp(16, 36.0)])
        eu = reprice_dataset(data, PriceCatalog(), region="westeurope")
        assert eu.points()[0].cost_usd > data.points()[0].cost_usd

    def test_summary_renders(self):
        data = Dataset([dp(16, 36.0), dp(3, 173.0)])
        text = spot_savings_summary(data, PriceCatalog())
        assert "on-demand" in text
        assert "hb120rs_v3" in text


class TestGuiBottlenecksPage:
    def test_page_renders(self, collected):
        from repro.api import AdvisorSession
        from repro.gui.pages import render_bottlenecks

        session = AdvisorSession(state_dir=collected)
        html = render_bottlenecks(session, "extrg-000")
        assert "Bottleneck" in html
        assert "hb120rs_v3" in html.lower() or "HB120rs_v3" in html


class TestMachineReadableSatellites:
    """--json on the last commands without machine-readable output."""

    def test_deploy_list_json(self, collected, capsys):
        import json

        assert main(["--state-dir", collected, "deploy", "list",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [d["name"] for d in payload["deployments"]] == ["extrg-000"]
        assert payload["deployments"][0]["appname"] == "lammps"

    def test_deploy_list_json_empty(self, tmp_path, capsys):
        import json

        assert main(["--state-dir", str(tmp_path / "s"), "deploy", "list",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["deployments"] == []
        assert payload["total"] == 0

    def test_plot_json(self, collected, capsys, tmp_path):
        import json

        out_dir = str(tmp_path / "plots")
        assert main(["--state-dir", collected, "plot", "-n", "extrg-000",
                     "-o", out_dir, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["deployment"] == "extrg-000"
        assert payload["output_dir"] == out_dir
        assert len(payload["paths"]) == len(payload["kinds"])
        assert "pareto" in payload["kinds"]


class TestServiceCli:
    """serve + the remote-client trio submit/status/result."""

    @pytest.fixture
    def service(self, collected):
        import threading

        from repro.service.app import make_server

        server = make_server(collected, port=0, workers=2)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield f"http://127.0.0.1:{server.server_address[1]}"
        server.shutdown()
        server.server_close()
        server.state.close()
        thread.join(timeout=10)

    def test_parser_accepts_service_commands(self):
        from repro.cli.main import build_parser

        parser = build_parser()
        for argv in (
            ["serve", "--port", "0"],
            ["submit", "--url", "http://x", "-n", "d-000", "--wait"],
            ["status", "--url", "http://x"],
            ["status", "--url", "http://x", "job-123"],
            ["result", "--url", "http://x", "job-123"],
        ):
            parser.parse_args(argv)  # must not raise

    def test_submit_status_result_round_trip(self, service, capsys):
        import json

        assert main(["submit", "--url", service, "-n", "extrg-000",
                     "--wait", "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["state"] == "done"

        assert main(["status", "--url", service]) == 0
        out = capsys.readouterr().out
        assert record["id"] in out
        assert "done" in out

        assert main(["result", "--url", service, record["id"]]) == 0
        out = capsys.readouterr().out
        assert "collection finished" in out
        assert "dataset" in out

    def test_submit_without_wait_then_result(self, service, capsys):
        assert main(["submit", "--url", service, "-n", "extrg-000"]) == 0
        out = capsys.readouterr().out
        job_id = out.split()[1].rstrip(":")
        assert job_id.startswith("job-")
        assert main(["result", "--url", service, job_id, "--json"]) == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["deployment"] == "extrg-000"

    def test_status_unknown_job_reports_error(self, service, capsys):
        assert main(["status", "--url", service, "job-nope"]) == 2
        assert "error" in capsys.readouterr().err



class TestSpotCli:
    """Acceptance: `collect/advice --capacity spot --recovery ...` returns
    advice whose expected cost reflects simulated evictions."""

    def spot_collect(self, tmp_path):
        config_path = tmp_path / "config.yaml"
        config_path.write_text(CONFIG)
        state = str(tmp_path / "state")
        assert main(["--state-dir", state, "deploy", "create", "-c",
                     str(config_path)]) == 0
        assert main(["--state-dir", state, "collect", "-n", "extrg-000",
                     "--capacity", "spot", "--recovery",
                     "checkpoint_restart",
                     "--checkpoint-interval", "5",
                     "--checkpoint-overhead", "1",
                     "--eviction-rate", "30", "--eviction-seed", "3"]) == 0
        return state

    def test_spot_collect_reports_preemptions(self, tmp_path, capsys):
        self.spot_collect(tmp_path)
        out = capsys.readouterr().out
        assert "spot capacity:" in out
        assert "preemption(s)" in out
        assert "recovery: checkpoint_restart" in out

    def test_spot_advice_reflects_simulated_evictions(self, tmp_path,
                                                      capsys):
        import json

        from repro.api.results import AdviceResult

        state = self.spot_collect(tmp_path)
        capsys.readouterr()
        assert main(["--state-dir", state, "advice", "-n", "extrg-000",
                     "--capacity", "spot", "--recovery",
                     "checkpoint_restart", "--json"]) == 0
        result = AdviceResult.from_dict(
            json.loads(capsys.readouterr().out)
        )
        assert result.capacity == "spot"
        assert result.rows
        for row in result.rows:
            assert row.capacity == "spot"
            # Expected completion includes the eviction recovery time.
            assert row.makespan_s >= row.exec_time_s
        assert any(row.preemptions > 0 for row in result.rows)

    def test_spot_advice_table_renders_risk_columns(self, tmp_path,
                                                    capsys):
        state = self.spot_collect(tmp_path)
        capsys.readouterr()
        assert main(["--state-dir", state, "advice", "-n", "extrg-000",
                     "--capacity", "spot"]) == 0
        out = capsys.readouterr().out
        assert "E[Span](s)" in out
        assert "P95(s)" in out
        assert "[spot]" in out

    def test_ondemand_what_if_strips_spot_dynamics(self, tmp_path, capsys):
        import json

        from repro.api.results import AdviceResult

        state = self.spot_collect(tmp_path)
        capsys.readouterr()
        assert main(["--state-dir", state, "advice", "-n", "extrg-000",
                     "--capacity", "ondemand", "--json"]) == 0
        result = AdviceResult.from_dict(
            json.loads(capsys.readouterr().out)
        )
        assert result.capacity == "ondemand"
        for row in result.rows:
            assert row.preemptions == 0


class TestDataCommand:
    """The `data` subcommand: paginated, store-pushed point listings."""

    def test_table_with_pagination(self, collected, capsys):
        assert main(["--state-dir", collected, "data", "-n", "extrg-000",
                     "--limit", "2", "--offset", "1"]) == 0
        out = capsys.readouterr().out
        assert "2 of 4 matching point(s), offset 1" in out
        assert out.count("lammps") == 2

    def test_json_page_round_trips(self, collected, capsys):
        import json

        from repro.api.results import DataPointsResult

        assert main(["--state-dir", collected, "data", "-n", "extrg-000",
                     "--nnodes", "2", "4", "--json"]) == 0
        result = DataPointsResult.from_dict(
            json.loads(capsys.readouterr().out)
        )
        assert result.total == 2
        assert sorted(p.nnodes for p in result.points) == [2, 4]

    def test_count_only_page(self, collected, capsys):
        assert main(["--state-dir", collected, "data", "-n", "extrg-000",
                     "--limit", "0", "--json"]) == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["total"] == 4
        assert payload["points"] == []

    def test_no_matches(self, collected, capsys):
        assert main(["--state-dir", collected, "data", "-n", "extrg-000",
                     "--sku", "nosuchsku"]) == 0
        assert "(no matching data points)" in capsys.readouterr().out


class TestStoreSelection:
    def test_store_flag_forces_jsonl_layout(self, tmp_path, capsys):
        import os

        config_path = tmp_path / "config.yaml"
        config_path.write_text(CONFIG)
        state = str(tmp_path / "state")
        assert main(["--store", "jsonl", "--state-dir", state, "deploy",
                     "create", "-c", str(config_path)]) == 0
        assert main(["--store", "jsonl", "--state-dir", state, "collect",
                     "-n", "extrg-000"]) == 0
        assert os.path.exists(
            os.path.join(state, "dataset-extrg-000.jsonl"))
        assert not os.path.exists(
            os.path.join(state, "store-extrg-000.sqlite"))
        # The override is per-invocation: it must not leak.
        from repro.store import resolve_backend

        assert resolve_backend() == os.environ.get("REPRO_STORE", "sqlite")

    def test_shutdown_purge_flag(self, collected, capsys):
        import os

        assert main(["--state-dir", collected, "deploy", "shutdown",
                     "-n", "extrg-000", "--purge-data"]) == 0
        out = capsys.readouterr().out
        assert "purged" in out
        leftovers = [f for f in os.listdir(collected)
                     if "extrg-000" in f]
        assert leftovers == []

    def test_deploy_list_pagination(self, collected, capsys):
        assert main(["--state-dir", collected, "deploy", "list",
                     "--limit", "1"]) == 0
        out = capsys.readouterr().out
        assert "extrg-000" in out
