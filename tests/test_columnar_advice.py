"""Columnar advice read path: equivalence and invalidation (ISSUE 10).

The columnar engine carries a hard contract: for any corpus and any
request, ``engine="columnar"`` returns *byte-identical* results to the
legacy per-DataPoint oracle (``engine="objects"``) — including error
messages.  Hypothesis drives random corpora and request shapes through
both engines over both store backends; separate tests pin snapshot
invalidation (append -> stale snapshot rebuilt) and the agreement
between the service ETag and the snapshot generation.
"""

from __future__ import annotations

import json
import os
import tempfile

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api.requests import ADVICE_ENGINE_CHOICES, AdviseRequest
from repro.api.session import AdvisorSession
from repro.core.columnar import (ADVICE_ENGINES, compare_snapshots,
                                 describe_advice_engines,
                                 resolve_advice_engine)
from repro.core.compare import compare_datasets
from repro.core.dataset import Dataset, DataPoint
from repro.core.query import Query
from repro.core.statefiles import StateStore
from repro.errors import AdvisorError, ReproError
from repro.predict.predictor import PerformancePredictor
from repro.store.snapshot import (ColumnarSnapshot, SnapshotCache,
                                  snapshot_for_store, snapshot_status)
from tests.conftest import make_config

SKUS = ("Standard_HB120rs_v3", "Standard_HC44rs")
STORE_BACKENDS = ("sqlite", "jsonl")

# -- corpus / request strategies -------------------------------------------------

_exec_times = st.floats(min_value=1.0, max_value=1e5, allow_nan=False)
_costs = st.floats(min_value=0.0, max_value=500.0, allow_nan=False)


@st.composite
def datapoints(draw):
    exec_time = draw(_exec_times)
    spot = draw(st.booleans())
    return DataPoint(
        appname=draw(st.sampled_from(["lammps", "gromacs"])),
        sku=draw(st.sampled_from(SKUS)),
        nnodes=draw(st.integers(min_value=1, max_value=8)),
        ppn=draw(st.sampled_from([4, 100])),
        exec_time_s=exec_time,
        cost_usd=draw(_costs),
        appinputs={"BOXFACTOR": draw(st.sampled_from(["4", "8"]))},
        capacity="spot" if spot else "ondemand",
        preemptions=draw(st.integers(0, 3)) if spot else 0,
        makespan_s=exec_time * 1.25 if spot else 0.0,
        predicted=draw(st.booleans()),
        timestamp=float(draw(st.integers(0, 10_000))),
    )


corpora = st.lists(datapoints(), min_size=0, max_size=12)

advise_params = st.fixed_dictionaries({
    "appname": st.sampled_from([None, "lammps", "nothere"]),
    "sort_by": st.sampled_from(["time", "cost"]),
    "max_rows": st.sampled_from([None, 2]),
    "capacity": st.sampled_from(["", "ondemand", "spot"]),
    "nnodes": st.sampled_from([(), (2, 4)]),
    "eviction_rate": st.sampled_from([None, 12.0]),
})


def advise_outcome(session, name: str, engine: str, params) -> tuple:
    """The advice result (normalized) or the exact error it raised."""
    try:
        result = session.advise(AdviseRequest(deployment=name,
                                              engine=engine, **params))
    except ReproError as exc:
        return ("error", type(exc).__name__, str(exc))
    payload = result.to_dict()
    assert payload.pop("engine") == engine
    assert payload.pop("engine_fallback") == ""
    return ("ok", json.dumps(payload, sort_keys=True))


class TestEngineRegistry:
    def test_request_choices_mirror_core_engines(self):
        assert ADVICE_ENGINE_CHOICES == ADVICE_ENGINES

    def test_auto_resolves_to_columnar(self):
        assert resolve_advice_engine("auto")[0] == "columnar"

    def test_bad_engine_is_rejected_everywhere(self):
        with pytest.raises(AdvisorError):
            resolve_advice_engine("fortran")
        with pytest.raises(ReproError):
            AdviseRequest(deployment="d", engine="fortran")

    def test_described_engines_cover_choices(self):
        described = {row["engine"] for row in describe_advice_engines()}
        assert described == set(ADVICE_ENGINES)


class TestAdviceEquivalence:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(points=corpora, params=advise_params)
    def test_objects_and_columnar_agree(self, points, params):
        """Both engines, both store backends, spot and on-demand:
        identical rows or identical errors."""
        with tempfile.TemporaryDirectory() as root:
            for backend in STORE_BACKENDS:
                store = StateStore(root=os.path.join(root, backend),
                                   store_backend=backend)
                session = AdvisorSession(store=store)
                info = session.deploy(make_config(skus=list(SKUS)))
                session.data_store(info.name).append_points(points)
                objects = advise_outcome(session, info.name, "objects",
                                         params)
                columnar = advise_outcome(session, info.name, "columnar",
                                          params)
                assert objects == columnar, (backend, params)


class TestCompareEquivalence:
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(points_a=corpora, points_b=corpora,
           query=st.sampled_from([None, Query(appname="lammps"),
                                  Query(nnodes=(1, 2, 4))]))
    def test_snapshot_compare_matches_dataset_compare(
            self, points_a, points_b, query):
        snap_a = ColumnarSnapshot.from_points(points_a)
        snap_b = ColumnarSnapshot.from_points(points_b)
        q = query or Query()
        legacy = compare_datasets(Dataset(points_a).query(q),
                                  Dataset(points_b).query(q))
        columnar = compare_snapshots(snap_a.view(q), snap_b.view(q))
        assert legacy == columnar


class TestPredictEquivalence:
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(points=corpora,
           model=st.sampled_from(["ridge", "knn"]))
    def test_fit_columns_matches_fit(self, points, model):
        dataset = Dataset(points)
        snap = ColumnarSnapshot.from_points(points)

        from repro.core.scenarios import Scenario

        probe_scenario = Scenario(scenario_id="probe", sku_name=SKUS[0],
                                  nnodes=2, ppn=4, appname="lammps",
                                  appinputs={"BOXFACTOR": "4"})

        def run(fit, source):
            predictor = PerformancePredictor(backend=model)
            try:
                fit(predictor, source)
            except ReproError as exc:
                return ("error", type(exc).__name__, str(exc))
            return ("ok", predictor._spec,
                    float(predictor.predict_time(probe_scenario)))

        legacy = run(lambda p, s: p.fit(s), dataset)
        columnar = run(lambda p, s: p.fit_columns(s), snap)
        assert legacy == columnar


class TestSnapshotInvalidation:
    def _store(self, root, backend):
        store = StateStore(root=root, store_backend=backend)
        session = AdvisorSession(store=store)
        info = session.deploy(make_config(skus=list(SKUS)))
        return session, session.data_store(info.name), info.name

    @pytest.mark.parametrize("backend", STORE_BACKENDS)
    def test_append_rebuilds_stale_snapshot(self, tmp_path, backend):
        _, data, _ = self._store(str(tmp_path), backend)
        data.append_points([DataPoint(appname="lammps", sku=SKUS[0],
                                      nnodes=2, ppn=4, exec_time_s=10.0,
                                      cost_usd=1.0)])
        cache = SnapshotCache()
        first = snapshot_for_store(data, cache=cache)
        assert first.n == 1
        assert snapshot_for_store(data, cache=cache) is first  # LRU hit

        data.append_points([DataPoint(appname="lammps", sku=SKUS[1],
                                      nnodes=4, ppn=4, exec_time_s=9.0,
                                      cost_usd=2.0)])
        status = snapshot_status(data, cache=cache)
        assert status["cached"] and not status["fresh"]
        rebuilt = snapshot_for_store(data, cache=cache)
        assert rebuilt is not first
        assert rebuilt.n == 2
        assert snapshot_status(data, cache=cache)["fresh"]

    @pytest.mark.parametrize("backend", STORE_BACKENDS)
    def test_snapshot_generation_is_the_etag_generation(self, tmp_path,
                                                        backend):
        """The snapshot carries the exact ``dataset_signature`` the
        service response cache keys ETags on, so a fresh snapshot and a
        fresh ETag can never disagree about the corpus generation."""
        _, data, _ = self._store(str(tmp_path), backend)
        data.append_points([DataPoint(appname="lammps", sku=SKUS[0],
                                      nnodes=2, ppn=4, exec_time_s=10.0,
                                      cost_usd=1.0)])
        cache = SnapshotCache()
        snap = snapshot_for_store(data, cache=cache)
        assert snap.signature == data.dataset_signature()
        data.append_points([DataPoint(appname="lammps", sku=SKUS[0],
                                      nnodes=4, ppn=4, exec_time_s=8.0,
                                      cost_usd=2.0)])
        assert snap.signature != data.dataset_signature()
        assert (snapshot_for_store(data, cache=cache).signature
                == data.dataset_signature())


class TestServiceEtagAgreement:
    def test_append_moves_etag_and_advice_together(self, tmp_path):
        """A write invalidates the response cache and the snapshot in
        the same request: the ETag changes and the new advice reflects
        the appended point (no stale snapshot behind a fresh ETag)."""
        from repro.service.app import build_state
        from repro.service.router import Router

        state = build_state(str(tmp_path / "state"), workers=1)
        try:
            router = Router(state)
            config = make_config(skus=list(SKUS))
            response = router.handle(
                "POST", "/v1/deployments",
                json.dumps({"config": config.to_dict()}))
            assert response.status == 201, response.payload
            name = response.payload["name"]
            session = AdvisorSession(store=StateStore(
                root=str(tmp_path / "state")))
            session.data_store(name).append_points([DataPoint(
                appname="lammps", sku=SKUS[0], nnodes=2, ppn=4,
                exec_time_s=100.0, cost_usd=5.0)])

            first = router.handle("GET", f"/v1/advice?deployment={name}")
            assert first.status == 200
            etag = first.headers["ETag"]
            assert len(first.payload["rows"]) == 1

            # A strictly better point must both change the ETag and
            # appear in the recomputed advice.
            session.data_store(name).append_points([DataPoint(
                appname="lammps", sku=SKUS[1], nnodes=2, ppn=4,
                exec_time_s=50.0, cost_usd=1.0)])
            second = router.handle(
                "GET", f"/v1/advice?deployment={name}",
                headers={"If-None-Match": etag})
            assert second.status == 200
            assert second.headers["ETag"] != etag
            assert len(second.payload["rows"]) == 1
            assert second.payload["rows"][0]["exec_time_s"] == 50.0
        finally:
            state.close()

    def test_engine_param_selects_engine(self, tmp_path):
        from repro.service.app import build_state
        from repro.service.router import Router

        state = build_state(str(tmp_path / "state"), workers=1)
        try:
            router = Router(state)
            config = make_config(skus=list(SKUS))
            response = router.handle(
                "POST", "/v1/deployments",
                json.dumps({"config": config.to_dict()}))
            name = response.payload["name"]
            session = AdvisorSession(store=StateStore(
                root=str(tmp_path / "state")))
            session.data_store(name).append_points([DataPoint(
                appname="lammps", sku=SKUS[0], nnodes=2, ppn=4,
                exec_time_s=100.0, cost_usd=5.0)])
            payloads = {}
            for engine in ("objects", "columnar", "auto"):
                got = router.handle(
                    "GET",
                    f"/v1/advice?deployment={name}&engine={engine}")
                assert got.status == 200, got.payload
                payloads[engine] = dict(got.payload)
            assert payloads["objects"].pop("engine") == "objects"
            assert payloads["columnar"].pop("engine") == "columnar"
            assert payloads["auto"].pop("engine") == "columnar"
            for payload in payloads.values():
                payload.pop("engine_fallback")
            assert (payloads["objects"] == payloads["columnar"]
                    == payloads["auto"])
            bad = router.handle(
                "GET", f"/v1/advice?deployment={name}&engine=fortran")
            assert bad.status == 400
        finally:
            state.close()
