"""Unit-helper tests."""

import pytest

from repro import units


class TestByteSizes:
    def test_decimal_sizes(self):
        assert units.KB == 1_000
        assert units.GB == 1_000_000_000

    def test_binary_sizes(self):
        assert units.KiB == 1024
        assert units.GiB == 1024**3

    def test_gib_helper(self):
        assert units.gib(2) == 2 * 1024**3

    def test_mib_helper(self):
        assert units.mib(1.5) == 1.5 * 1024**2


class TestBandwidth:
    def test_gbps_is_bits(self):
        # 200 Gb/s HDR InfiniBand = 25 GB/s.
        assert units.Gbps(200) == pytest.approx(25e9)

    def test_gbyteps(self):
        assert units.GBps(350) == 350e9

    def test_mbps(self):
        assert units.MBps(100) == 100e6


class TestDurations:
    def test_us(self):
        assert units.us(1.6) == pytest.approx(1.6e-6)

    def test_ms(self):
        assert units.ms(5) == pytest.approx(5e-3)

    def test_minutes_hours(self):
        assert units.minutes(2) == 120
        assert units.hours(1.5) == 5400


class TestFormatting:
    def test_fmt_bytes_small(self):
        assert units.fmt_bytes(512) == "512 B"

    def test_fmt_bytes_mib(self):
        assert "MiB" in units.fmt_bytes(5 * 1024**2)

    def test_fmt_bytes_huge_uses_tib(self):
        assert "TiB" in units.fmt_bytes(50 * 1024**4)

    def test_fmt_duration_seconds(self):
        assert units.fmt_duration(42) == "42s"

    def test_fmt_duration_minutes(self):
        assert units.fmt_duration(125) == "2m 05s"

    def test_fmt_duration_hours(self):
        assert units.fmt_duration(3723) == "1h 02m 03s"

    def test_fmt_duration_negative(self):
        assert units.fmt_duration(-60) == "-1m 00s"

    def test_fmt_duration_subsecond(self):
        assert units.fmt_duration(0.25) == "0.25s"

    def test_fmt_usd_matches_paper_tables(self):
        # Listing 4 row 1: 16 nodes x $3.60/h x 36 s.
        assert units.fmt_usd(16 * 3.60 * 36 / 3600) == "0.5760"
