"""Property-based tests over the performance models and samplers."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.cloud.skus import get_sku
from repro.cluster.network import NetworkModel
from repro.perf.cache import ARCH_CACHE_PROFILES
from repro.perf.comm import imbalance_factor
from repro.perf.registry import get_model
from repro.sampling.perffactor import fit_scaling_law

V3 = get_sku("Standard_HB120rs_v3")


@given(
    nodes=st.integers(min_value=1, max_value=64),
    bf=st.integers(min_value=1, max_value=30),
)
@settings(max_examples=60, deadline=None)
def test_lammps_time_positive_and_finite(nodes, bf):
    result = get_model("lammps").simulate(V3, nodes, 120,
                                          {"BOXFACTOR": str(bf)})
    if result.succeeded:
        assert result.exec_time_s > 0
        assert result.exec_time_s < 1e9


@given(
    bf=st.integers(min_value=5, max_value=30),
    n1=st.integers(min_value=1, max_value=32),
    n2=st.integers(min_value=1, max_value=32),
)
@settings(max_examples=60, deadline=None)
def test_lammps_work_conservation(bf, n1, n2):
    """Node-seconds never improve by more than the cache bound allows."""
    assume(n1 < n2)
    model = get_model("lammps")
    r1 = model.simulate(V3, n1, 120, {"BOXFACTOR": str(bf)})
    r2 = model.simulate(V3, n2, 120, {"BOXFACTOR": str(bf)})
    assume(r1.succeeded and r2.succeeded)
    ns1 = n1 * r1.exec_time_s
    ns2 = n2 * r2.exec_time_s
    # Milan's saturating cache profile bounds superlinearity at amp=0.05.
    assert ns2 > ns1 / 1.06


@given(
    message=st.floats(min_value=0, max_value=1e9, allow_nan=False),
    ranks=st.integers(min_value=1, max_value=4096),
)
def test_allreduce_nonnegative_and_monotone_in_size(message, ranks):
    net = NetworkModel(latency_s=2e-6, bandwidth_Bps=25e9)
    t = net.allreduce_time(message, ranks)
    assert t >= 0
    assert net.allreduce_time(message * 2 + 1, ranks) >= t


@given(
    ws=st.floats(min_value=0, max_value=1e13, allow_nan=False),
    l3=st.floats(min_value=1e6, max_value=1e10, allow_nan=False),
)
def test_cache_profiles_bounded_below_by_one(ws, l3):
    for profile in ARCH_CACHE_PROFILES.values():
        assert profile.slowdown(ws, l3) >= 1.0


@given(
    ranks=st.integers(min_value=1, max_value=100_000),
    coeff=st.floats(min_value=0, max_value=0.2, allow_nan=False),
)
def test_imbalance_factor_at_least_one(ranks, coeff):
    assert imbalance_factor(ranks, coeff) >= 1.0


@given(
    a=st.floats(min_value=0, max_value=1e4, allow_nan=False),
    b=st.floats(min_value=0, max_value=1e3, allow_nan=False),
    c=st.floats(min_value=0, max_value=10, allow_nan=False),
)
@settings(max_examples=60)
def test_scaling_law_fit_recovers_exact_data(a, b, c):
    """Noise-free samples from the model family fit with R^2 ~ 1."""
    assume(a + b + c > 0.01)
    points = [(float(n), a / n + b + c * n) for n in (1, 2, 4, 8, 16)]
    law = fit_scaling_law(points)
    for n, t in points:
        assert abs(law.predict(n) - t) <= max(0.02 * t, 1e-6)


@given(st.integers(min_value=1, max_value=120))
def test_compute_scale_bounded(ppn):
    from repro.perf.machine import MachineModel

    machine = MachineModel(V3)
    for fraction in (0.0, 0.3, 1.0):
        scale = machine.compute_scale(ppn, fraction)
        assert 0 < scale <= 1.0


@given(
    sigma=st.floats(min_value=0.001, max_value=0.5, allow_nan=False),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=40)
def test_noise_deterministic_and_positive(sigma, seed):
    from repro.perf.noise import NoiseModel

    noise = NoiseModel(sigma=sigma, seed=seed)
    value = noise.factor("scenario", 4)
    assert value > 0
    assert noise.factor("scenario", 4) == value
