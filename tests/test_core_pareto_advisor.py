"""Pareto front and advisor tests."""

import pytest

from repro.core.advisor import Advisor
from repro.core.dataset import DataPoint, Dataset
from repro.core.pareto import (
    dominates,
    is_dominated,
    pareto_front,
    pareto_indices,
    pareto_select,
)
from repro.errors import AdvisorError


class TestDomination:
    def test_strictly_better(self):
        assert dominates((1, 1), (2, 2))

    def test_better_in_one_equal_other(self):
        assert dominates((1, 2), (2, 2))
        assert dominates((2, 1), (2, 2))

    def test_equal_points_do_not_dominate(self):
        assert not dominates((1, 1), (1, 1))

    def test_tradeoff_no_domination(self):
        assert not dominates((1, 3), (3, 1))
        assert not dominates((3, 1), (1, 3))

    def test_is_dominated(self):
        others = [(1, 1), (5, 5)]
        assert is_dominated((2, 2), others)
        assert not is_dominated((0.5, 2), others)


class TestParetoFront:
    def test_paper_fig6_shape(self):
        """A cloud of scenarios: the front is the lower-left staircase."""
        points = [(0.9, 0.2), (0.7, 0.3), (0.5, 0.45), (0.3, 0.8),
                  (0.8, 0.5), (0.6, 0.6), (0.9, 0.9), (0.4, 0.9)]
        front = pareto_front(points)
        assert front == [(0.3, 0.8), (0.5, 0.45), (0.7, 0.3), (0.9, 0.2)]

    def test_empty(self):
        assert pareto_front([]) == []

    def test_single(self):
        assert pareto_front([(1, 2)]) == [(1, 2)]

    def test_all_on_front(self):
        points = [(1, 4), (2, 3), (3, 2), (4, 1)]
        assert pareto_front(points) == points

    def test_duplicates_all_kept(self):
        points = [(1, 1), (1, 1), (2, 2)]
        assert pareto_front(points) == [(1, 1), (1, 1)]

    def test_equal_x_keeps_min_y_only(self):
        points = [(1, 5), (1, 2), (3, 1)]
        assert pareto_front(points) == [(1, 2), (3, 1)]

    def test_equal_y_keeps_min_x_only(self):
        points = [(1, 2), (4, 2), (0.5, 7)]
        assert pareto_front(points) == [(0.5, 7), (1, 2)]

    def test_indices_refer_to_originals(self):
        points = [(2, 2), (1, 1), (3, 3)]
        assert pareto_indices(points) == [1]

    def test_select_preserves_items(self):
        items = [{"t": 2, "c": 2}, {"t": 1, "c": 3}, {"t": 3, "c": 1},
                 {"t": 3, "c": 3}]
        chosen = pareto_select(items, key=lambda i: (i["t"], i["c"]))
        assert {"t": 3, "c": 3} not in chosen
        assert len(chosen) == 3

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            pareto_indices([(1, 2, 3)])


def dp(t, c, nnodes, sku="Standard_HB120rs_v3", predicted=False, **kw):
    return DataPoint(appname="lammps", sku=sku, nnodes=nnodes, ppn=120,
                     exec_time_s=t, cost_usd=c, predicted=predicted, **kw)


class TestAdvisor:
    def paper_dataset(self):
        """Listing 4's data plus dominated points from other SKUs."""
        return Dataset([
            dp(36, 0.576, 16),
            dp(69, 0.552, 8),
            dp(132, 0.528, 4),
            dp(173, 0.519, 3),
            dp(45, 0.720, 16, sku="Standard_HB120rs_v2"),
            dp(200, 2.816, 16, sku="Standard_HC44rs"),
        ])

    def test_advice_matches_listing4_rows(self):
        rows = Advisor(self.paper_dataset()).advise(sort_by="time")
        assert [(r.exec_time_s, r.nnodes, r.sku_short) for r in rows] == [
            (36, 16, "hb120rs_v3"),
            (69, 8, "hb120rs_v3"),
            (132, 4, "hb120rs_v3"),
            (173, 3, "hb120rs_v3"),
        ]

    def test_sort_by_cost(self):
        rows = Advisor(self.paper_dataset()).advise(sort_by="cost")
        assert rows[0].cost_usd == pytest.approx(0.519)
        assert [r.cost_usd for r in rows] == sorted(r.cost_usd for r in rows)

    def test_invalid_sort(self):
        with pytest.raises(AdvisorError):
            Advisor(self.paper_dataset()).advise(sort_by="speed")

    def test_max_rows(self):
        rows = Advisor(self.paper_dataset()).advise(max_rows=2)
        assert len(rows) == 2

    def test_empty_filter_raises(self):
        with pytest.raises(AdvisorError, match="no completed data points"):
            Advisor(self.paper_dataset()).advise(appname="openfoam")

    def test_render_table_format(self):
        advisor = Advisor(self.paper_dataset())
        table = advisor.render_table(advisor.advise())
        lines = table.splitlines()
        assert "Exectime(s)" in lines[0]
        assert "Cost($)" in lines[0]
        # Row 1 matches Listing 4 row 1.
        assert lines[1].split() == ["36", "0.5760", "16", "hb120rs_v3"]

    def test_predicted_rows_flagged(self):
        data = self.paper_dataset()
        data.append(dp(20, 0.6, 32, predicted=True))
        advisor = Advisor(data)
        table = advisor.render_table(advisor.advise())
        assert "*" in table
        assert "predicted" in table

    def test_advice_rows_are_nondominated(self):
        rows = Advisor(self.paper_dataset()).advise()
        points = [(r.exec_time_s, r.cost_usd) for r in rows]
        for p in points:
            assert not is_dominated(p, [q for q in points if q != p])

    def test_render_empty(self):
        assert "no advice" in Advisor(self.paper_dataset()).render_table([])
