"""Property-based tests for the Pareto front (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pareto import dominates, is_dominated, pareto_front

finite = st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                   allow_infinity=False)
points_strategy = st.lists(st.tuples(finite, finite), min_size=0, max_size=60)


@given(points_strategy)
def test_front_is_subset(points):
    front = pareto_front(points)
    remaining = list(points)
    for p in front:
        assert p in remaining
        remaining.remove(p)  # respects multiplicity


@given(points_strategy)
def test_front_members_not_dominated(points):
    front = pareto_front(points)
    for p in front:
        assert not is_dominated(p, points)


@given(points_strategy)
def test_non_members_are_dominated(points):
    front = pareto_front(points)
    front_multiset = list(front)
    leftovers = list(points)
    for p in front_multiset:
        leftovers.remove(p)
    for p in leftovers:
        assert is_dominated(p, front)


@given(points_strategy)
def test_idempotent(points):
    once = pareto_front(points)
    twice = pareto_front(once)
    assert sorted(once) == sorted(twice)


@given(points_strategy)
def test_sorted_by_first_objective(points):
    front = pareto_front(points)
    xs = [p[0] for p in front]
    assert xs == sorted(xs)


@given(points_strategy)
def test_second_objective_strictly_decreasing(points):
    front = pareto_front(points)
    # Along the front, as time increases cost must strictly decrease
    # (otherwise the later point would be dominated), except exact duplicates.
    for (x1, y1), (x2, y2) in zip(front, front[1:]):
        if (x1, y1) == (x2, y2):
            continue
        assert x2 > x1
        assert y2 < y1


@given(points_strategy, st.tuples(finite, finite))
def test_adding_dominated_point_never_changes_front(points, candidate):
    front_before = pareto_front(points)
    if front_before and is_dominated(candidate, front_before):
        front_after = pareto_front(points + [candidate])
        assert sorted(front_after) == sorted(front_before)


@given(points_strategy)
@settings(max_examples=50)
def test_matches_bruteforce(points):
    front = pareto_front(points)
    brute = [p for p in points
             if not any(dominates(q, p) for q in points)]
    assert sorted(front) == sorted(brute)


@given(st.tuples(finite, finite), st.tuples(finite, finite))
def test_domination_antisymmetric(a, b):
    assert not (dominates(a, b) and dominates(b, a))


@given(st.tuples(finite, finite))
def test_no_self_domination(a):
    assert not dominates(a, a)
