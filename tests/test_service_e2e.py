"""End-to-end acceptance: the advisor as a service, purely over the wire.

Everything here drives deploy -> collect -> advise through
:class:`~repro.client.RemoteSession` against a live in-process server on
an ephemeral port — no direct session access — including N >= 4
concurrent collect jobs across deployments and job state surviving a
full server stop/restart.
"""

import threading

import pytest

from repro.client import RemoteSession
from repro.service.app import make_server
from tests.conftest import make_config


class LiveServer:
    """A running service over a state dir; restartable."""

    def __init__(self, state_dir: str, workers: int = 4):
        self.state_dir = state_dir
        self.workers = workers
        self.server = None
        self.thread = None

    def start(self) -> "LiveServer":
        self.server = make_server(self.state_dir, port=0,
                                  workers=self.workers)
        self.thread = threading.Thread(target=self.server.serve_forever,
                                       daemon=True)
        self.thread.start()
        return self

    @property
    def url(self) -> str:
        return f"http://127.0.0.1:{self.server.server_address[1]}"

    def stop(self) -> None:
        self.server.shutdown()
        self.server.server_close()
        self.server.state.close()
        self.thread.join(timeout=10)

    def restart(self) -> "LiveServer":
        self.stop()
        return self.start()


@pytest.fixture
def live(tmp_path):
    server = LiveServer(str(tmp_path / "state")).start()
    yield server
    server.stop()


def test_full_flow_with_concurrent_jobs_and_restart(live):
    remote = RemoteSession(live.url, timeout=15)

    # -- deploy 4 independent sweeps, purely over the wire ------------------
    infos = [
        remote.deploy(make_config(
            rgprefix=f"e2e{chr(ord('a') + i)}rg",
            nnodes=[1, 2],
        ).to_dict())
        for i in range(4)
    ]
    assert len({info.name for info in infos}) == 4

    # -- submit 4 collect jobs at once, then wait for all of them -----------
    jobs = [remote.collect(deployment=info.name) for info in infos]
    states = {job.record.state for job in jobs}
    assert states <= {"queued", "running"}  # all submitted asynchronously
    for job in jobs:
        record = job.wait(timeout=120)
        assert record.state == "done", record.error
        assert record.progress["total"] == 2

    # -- every deployment collected exactly its own scenarios ---------------
    for info, job in zip(infos, jobs):
        result = job.result()
        assert result.deployment == info.name
        assert result.completed == 2
        assert result.dataset_points == 2

    # -- advice over the wire, per deployment -------------------------------
    advices = {}
    for info in infos:
        advice = remote.advise(deployment=info.name)
        assert advice.deployment == info.name
        assert advice.dataset_points == 2
        assert len(advice.rows) >= 1
        advices[info.name] = advice

    # -- job state survives a full server stop/restart ----------------------
    job_ids = {job.id for job in jobs}
    live.restart()
    reborn = RemoteSession(live.url, timeout=15)
    listed = reborn.jobs()
    assert {record.id for record in listed} == job_ids
    assert {record.state for record in listed} == {"done"}
    # ... and so does everything the jobs produced.
    for info in infos:
        again = reborn.advise(deployment=info.name)
        assert again.rows == advices[info.name].rows

    # -- health/metrics reflect the restart boundary ------------------------
    health = reborn.health()
    assert health["status"] == "ok"
    assert health["jobs"]["done"] == 4


def _forge_crashed_job(state_dir: str, job_id: str, attempts: int) -> None:
    """Rewrite a finished job as if its worker died mid-run: running,
    expired lease, ``attempts`` claims already burned."""
    import json
    import os
    import sqlite3

    from repro.fleet.jobstore import fleet_db_path

    conn = sqlite3.connect(fleet_db_path(state_dir))
    try:
        (payload,) = conn.execute(
            "SELECT payload FROM jobs WHERE id = ?", (job_id,)).fetchone()
        record = json.loads(payload)
        record.update(state="running", finished_at=None, result=None,
                      worker_id="ghost-worker", lease_expires_at=1.0,
                      attempts=attempts)
        conn.execute(
            "UPDATE jobs SET state = 'running', worker_id = 'ghost-worker',"
            " lease_expires_at = 1.0, attempts = ?, payload = ?"
            " WHERE id = ?",
            (attempts, json.dumps(record), job_id),
        )
        conn.commit()
    finally:
        conn.close()
    assert os.path.exists(fleet_db_path(state_dir))


def _wait_finished(remote: RemoteSession, job_id: str, timeout: float = 60.0):
    import time

    deadline = time.monotonic() + timeout
    while True:
        record = remote.job(job_id)
        if record.finished:
            return record
        assert time.monotonic() < deadline, \
            f"job {job_id} still {record.state} after {timeout}s"
        time.sleep(0.05)


def test_restart_reclaims_interrupted_running_job(live):
    """A job whose worker died mid-run is *re-claimed* after a restart —
    it completes on the surviving server instead of going stale."""
    remote = RemoteSession(live.url, timeout=15)
    info = remote.deploy(make_config(rgprefix="reclaimrg").to_dict())
    job = remote.collect(deployment=info.name)
    job.wait(timeout=120)

    live.stop()
    _forge_crashed_job(live.state_dir, job.id, attempts=1)
    live.start()

    reborn = RemoteSession(live.url, timeout=15)
    recovered = _wait_finished(reborn, job.id)
    assert recovered.state == "done", recovered.error
    assert recovered.attempts == 2  # the original claim plus the re-claim
    assert reborn.advise(deployment=info.name).rows


def test_restart_parks_crash_looping_job_as_stale(live):
    """A job that burned through max_attempts claims must come back as
    `stale` — visible, terminal, and not hanging any client."""
    remote = RemoteSession(live.url, timeout=15)
    info = remote.deploy(make_config(rgprefix="stalerg").to_dict())
    job = remote.collect(deployment=info.name)
    job.wait(timeout=120)

    live.stop()
    _forge_crashed_job(live.state_dir, job.id, attempts=5)
    live.start()

    reborn = RemoteSession(live.url, timeout=15)
    stale = _wait_finished(reborn, job.id)
    assert stale.state == "stale"
    assert "giving up" in stale.error
    assert stale.finished  # a client wait() returns instead of hanging
    # The collected data is still there: advice keeps working.
    assert reborn.advise(deployment=info.name).rows
