"""End-to-end acceptance: the advisor as a service, purely over the wire.

Everything here drives deploy -> collect -> advise through
:class:`~repro.client.RemoteSession` against a live in-process server on
an ephemeral port — no direct session access — including N >= 4
concurrent collect jobs across deployments and job state surviving a
full server stop/restart.
"""

import threading

import pytest

from repro.client import RemoteSession
from repro.service.app import make_server
from tests.conftest import make_config


class LiveServer:
    """A running service over a state dir; restartable."""

    def __init__(self, state_dir: str, workers: int = 4):
        self.state_dir = state_dir
        self.workers = workers
        self.server = None
        self.thread = None

    def start(self) -> "LiveServer":
        self.server = make_server(self.state_dir, port=0,
                                  workers=self.workers)
        self.thread = threading.Thread(target=self.server.serve_forever,
                                       daemon=True)
        self.thread.start()
        return self

    @property
    def url(self) -> str:
        return f"http://127.0.0.1:{self.server.server_address[1]}"

    def stop(self) -> None:
        self.server.shutdown()
        self.server.server_close()
        self.server.state.close()
        self.thread.join(timeout=10)

    def restart(self) -> "LiveServer":
        self.stop()
        return self.start()


@pytest.fixture
def live(tmp_path):
    server = LiveServer(str(tmp_path / "state")).start()
    yield server
    server.stop()


def test_full_flow_with_concurrent_jobs_and_restart(live):
    remote = RemoteSession(live.url, timeout=15)

    # -- deploy 4 independent sweeps, purely over the wire ------------------
    infos = [
        remote.deploy(make_config(
            rgprefix=f"e2e{chr(ord('a') + i)}rg",
            nnodes=[1, 2],
        ).to_dict())
        for i in range(4)
    ]
    assert len({info.name for info in infos}) == 4

    # -- submit 4 collect jobs at once, then wait for all of them -----------
    jobs = [remote.collect(deployment=info.name) for info in infos]
    states = {job.record.state for job in jobs}
    assert states <= {"queued", "running"}  # all submitted asynchronously
    for job in jobs:
        record = job.wait(timeout=120)
        assert record.state == "done", record.error
        assert record.progress["total"] == 2

    # -- every deployment collected exactly its own scenarios ---------------
    for info, job in zip(infos, jobs):
        result = job.result()
        assert result.deployment == info.name
        assert result.completed == 2
        assert result.dataset_points == 2

    # -- advice over the wire, per deployment -------------------------------
    advices = {}
    for info in infos:
        advice = remote.advise(deployment=info.name)
        assert advice.deployment == info.name
        assert advice.dataset_points == 2
        assert len(advice.rows) >= 1
        advices[info.name] = advice

    # -- job state survives a full server stop/restart ----------------------
    job_ids = {job.id for job in jobs}
    live.restart()
    reborn = RemoteSession(live.url, timeout=15)
    listed = reborn.jobs()
    assert {record.id for record in listed} == job_ids
    assert {record.state for record in listed} == {"done"}
    # ... and so does everything the jobs produced.
    for info in infos:
        again = reborn.advise(deployment=info.name)
        assert again.rows == advices[info.name].rows

    # -- health/metrics reflect the restart boundary ------------------------
    health = reborn.health()
    assert health["status"] == "ok"
    assert health["jobs"]["done"] == 4


def test_restart_surfaces_interrupted_running_job_as_stale(tmp_path, live):
    """A job that was mid-flight when the server died must come back as
    `stale` — visible, terminal, and not hanging any client."""
    import json
    import os

    remote = RemoteSession(live.url, timeout=15)
    info = remote.deploy(make_config(rgprefix="stalerg").to_dict())
    job = remote.collect(deployment=info.name)
    job.wait(timeout=120)

    # Forge the crash: rewrite the finished record as if the server had
    # died mid-run (the job manager is down between stop() and start()).
    live.stop()
    jobs_dir = os.path.join(live.state_dir, "jobs")
    path = os.path.join(jobs_dir, f"{job.id}.json")
    with open(path) as fh:
        record = json.load(fh)
    record.update(state="running", finished_at=None, result=None)
    with open(path, "w") as fh:
        json.dump(record, fh)
    live.start()

    reborn = RemoteSession(live.url, timeout=15)
    stale = reborn.job(job.id)
    assert stale.state == "stale"
    assert "restarted" in stale.error
    assert stale.finished  # a client wait() returns instead of hanging
    # The collected data is still there: advice keeps working.
    assert reborn.advise(deployment=info.name).rows
