"""Shared-filesystem simulation tests."""

import pytest

from repro.cluster.filesystem import FilesystemError, SharedFilesystem


class TestDirectories:
    def test_root_exists(self):
        fs = SharedFilesystem()
        assert fs.isdir("/")

    def test_mkdir_with_parents(self):
        fs = SharedFilesystem()
        fs.mkdir("/mnt/nfs/jobs/t0001")
        assert fs.isdir("/mnt/nfs/jobs")
        assert fs.isdir("/mnt/nfs/jobs/t0001")

    def test_mkdir_no_parents_fails(self):
        fs = SharedFilesystem()
        with pytest.raises(FilesystemError, match="parent"):
            fs.mkdir("/a/b/c", parents=False)

    def test_mkdir_over_file_fails(self):
        fs = SharedFilesystem()
        fs.write_text("/data", "x")
        with pytest.raises(FilesystemError):
            fs.mkdir("/data")

    def test_rmtree(self):
        fs = SharedFilesystem()
        fs.write_text("/jobs/a/log", "1")
        fs.write_text("/jobs/b/log", "2")
        removed = fs.rmtree("/jobs/a")
        assert removed == 1
        assert not fs.exists("/jobs/a/log")
        assert fs.exists("/jobs/b/log")

    def test_rmtree_missing(self):
        with pytest.raises(FilesystemError):
            SharedFilesystem().rmtree("/ghost")


class TestFiles:
    def test_write_read_roundtrip(self):
        fs = SharedFilesystem()
        fs.write_text("/mnt/in.lj.txt", "variable x index 1")
        assert fs.read_text("/mnt/in.lj.txt") == "variable x index 1"

    def test_relative_paths_normalised(self):
        fs = SharedFilesystem()
        fs.write_text("a/b.txt", "data")
        assert fs.read_text("/a/b.txt") == "data"

    def test_overwrite(self):
        fs = SharedFilesystem()
        fs.write_text("/f", "old")
        fs.write_text("/f", "new")
        assert fs.read_text("/f") == "new"

    def test_append(self):
        fs = SharedFilesystem()
        fs.append_text("/log", "line1\n")
        fs.append_text("/log", "line2\n")
        assert fs.read_text("/log") == "line1\nline2\n"

    def test_read_missing(self):
        with pytest.raises(FilesystemError, match="no such file"):
            SharedFilesystem().read_text("/ghost")

    def test_remove(self):
        fs = SharedFilesystem()
        fs.write_text("/f", "x")
        fs.remove("/f")
        assert not fs.isfile("/f")
        with pytest.raises(FilesystemError):
            fs.remove("/f")

    def test_write_to_directory_fails(self):
        fs = SharedFilesystem()
        fs.mkdir("/d")
        with pytest.raises(FilesystemError, match="is a directory"):
            fs.write_text("/d", "x")

    def test_quota_enforced(self):
        fs = SharedFilesystem(quota_bytes=10)
        fs.write_text("/small", "12345")
        with pytest.raises(FilesystemError, match="quota"):
            fs.write_text("/big", "x" * 20)

    def test_quota_counts_replacement_not_sum(self):
        fs = SharedFilesystem(quota_bytes=10)
        fs.write_text("/f", "x" * 9)
        fs.write_text("/f", "y" * 10)  # replaces, still within quota
        assert fs.used_bytes == 10


class TestListing:
    def test_listdir(self):
        fs = SharedFilesystem()
        fs.write_text("/jobs/t1/log", "a")
        fs.write_text("/jobs/t2/log", "b")
        fs.mkdir("/jobs/empty")
        assert fs.listdir("/jobs") == ["empty", "t1", "t2"]

    def test_listdir_missing(self):
        with pytest.raises(FilesystemError):
            SharedFilesystem().listdir("/ghost")

    def test_walk_files(self):
        fs = SharedFilesystem()
        fs.write_text("/a/1", "x")
        fs.write_text("/a/b/2", "y")
        fs.write_text("/c/3", "z")
        walked = dict(fs.walk_files("/a"))
        assert set(walked) == {"/a/1", "/a/b/2"}

    def test_stats(self):
        fs = SharedFilesystem()
        fs.write_text("/a", "12345")
        assert fs.used_bytes == 5
        assert fs.file_count == 1
