"""Store-backend equivalence: JsonlStore and SqliteStore are one store.

Hypothesis round-trip properties prove that for any corpus and any
query, the two engines return identical results, that JSONL -> SQLite
migration is lossless, and that the JSONL backend's bytes are exactly
what the legacy ``Dataset.save``/``TaskDB.save`` path wrote.
"""

import json
import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.dataset import DataPoint, Dataset
from repro.core.query import Query
from repro.core.scenarios import Scenario
from repro.core.taskdb import TaskDB, TaskRecord, TaskStatus
from repro.store import (
    JsonlStore,
    SqliteStore,
    open_deployment_store,
    resolve_backend,
    set_default_backend,
)

# -- strategies -------------------------------------------------------------------

_APPS = ("lammps", "openfoam", "wrf")
_SKUS = ("Standard_HB120rs_v3", "Standard_HC44rs", "Standard_D32s_v5")
_KEYS = ("BOXFACTOR", "mesh", "steps")

_safe_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",), max_codepoint=0x2FF),
    max_size=8,
)


def _points():
    return st.builds(
        DataPoint,
        appname=st.sampled_from(_APPS),
        sku=st.sampled_from(_SKUS),
        nnodes=st.integers(min_value=1, max_value=64),
        ppn=st.integers(min_value=1, max_value=120),
        exec_time_s=st.floats(min_value=0, max_value=1e6,
                              allow_nan=False, allow_infinity=False),
        cost_usd=st.floats(min_value=0, max_value=1e5,
                           allow_nan=False, allow_infinity=False),
        appinputs=st.dictionaries(st.sampled_from(_KEYS), _safe_text,
                                  max_size=2),
        tags=st.dictionaries(_safe_text.filter(bool), _safe_text,
                             max_size=2),
        infra_metrics=st.dictionaries(
            st.sampled_from(("net_mbps", "cpu")),
            st.floats(min_value=0, max_value=1e9, allow_nan=False,
                      allow_infinity=False),
            max_size=2),
        deployment=st.just("hyp-000"),
        timestamp=st.floats(min_value=0, max_value=2e9, allow_nan=False,
                            allow_infinity=False),
        predicted=st.booleans(),
        capacity=st.sampled_from(("ondemand", "spot")),
        preemptions=st.integers(min_value=0, max_value=5),
        wasted_node_s=st.floats(min_value=0, max_value=1e6,
                                allow_nan=False, allow_infinity=False),
        makespan_s=st.floats(min_value=0, max_value=1e7, allow_nan=False,
                             allow_infinity=False),
    )


def _queries():
    return st.builds(
        Query,
        appname=st.none() | st.sampled_from(_APPS),
        sku=st.none() | st.sampled_from(
            [s.lower() for s in _SKUS]
            + [s[len("Standard_"):].lower() for s in _SKUS]
        ),
        nnodes=st.lists(st.integers(min_value=1, max_value=64),
                        max_size=3).map(tuple),
        ppn=st.none() | st.integers(min_value=1, max_value=120),
        min_nodes=st.none() | st.integers(min_value=1, max_value=32),
        max_nodes=st.none() | st.integers(min_value=1, max_value=64),
        appinputs=st.dictionaries(st.sampled_from(_KEYS), _safe_text,
                                  max_size=1),
        capacity=st.none() | st.sampled_from(("ondemand", "spot")),
        include_predicted=st.booleans(),
        limit=st.none() | st.integers(min_value=0, max_value=10),
        offset=st.integers(min_value=0, max_value=10),
    )


def _records():
    scenarios = st.builds(
        Scenario,
        scenario_id=st.uuids().map(lambda u: f"s-{u.hex[:10]}"),
        sku_name=st.sampled_from(_SKUS),
        nnodes=st.integers(min_value=1, max_value=64),
        ppn=st.integers(min_value=1, max_value=120),
        appname=st.sampled_from(_APPS),
        appinputs=st.dictionaries(st.sampled_from(_KEYS), _safe_text,
                                  max_size=2),
    )
    return st.builds(
        TaskRecord,
        scenario=scenarios,
        status=st.sampled_from(list(TaskStatus)),
        exec_time_s=st.none() | st.floats(min_value=0, max_value=1e6,
                                          allow_nan=False,
                                          allow_infinity=False),
        cost_usd=st.none() | st.floats(min_value=0, max_value=1e5,
                                       allow_nan=False,
                                       allow_infinity=False),
        # Empty-string reasons decode as None (legacy serde), so keep
        # the strategy within the exactly-round-trippable domain.
        failure_reason=st.none() | _safe_text.filter(bool),
        preemptions=st.integers(min_value=0, max_value=5),
    )


def _unique_records(records):
    seen, out = set(), []
    for record in records:
        if record.scenario.scenario_id not in seen:
            seen.add(record.scenario.scenario_id)
            out.append(record)
    return out


def _make_stores(tmp_path, tag=""):
    jsonl = JsonlStore(str(tmp_path / f"d{tag}.jsonl"),
                       str(tmp_path / f"t{tag}.json"))
    sqlite = SqliteStore(str(tmp_path / f"s{tag}.sqlite"))
    return jsonl, sqlite


# -- equivalence properties -------------------------------------------------------


class TestBackendEquivalence:
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(points=st.lists(_points(), max_size=20), query=_queries())
    def test_identical_query_results(self, tmp_path_factory, points, query):
        tmp_path = tmp_path_factory.mktemp("equiv")
        jsonl, sqlite = _make_stores(tmp_path)
        try:
            jsonl.append_points(points)
            sqlite.append_points(points)
            assert jsonl.query_points(query) == sqlite.query_points(query)
            assert jsonl.count_points(query) == sqlite.count_points(query)
            # and both agree with the in-memory reference semantics
            assert jsonl.query_points(query) == query.apply(points)
        finally:
            sqlite.close()

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(points=st.lists(_points(), max_size=15))
    def test_point_round_trip_is_exact(self, tmp_path_factory, points):
        tmp_path = tmp_path_factory.mktemp("rt")
        jsonl, sqlite = _make_stores(tmp_path)
        try:
            jsonl.append_points(points)
            sqlite.append_points(points)
            assert jsonl.query_points() == points
            assert sqlite.query_points() == points
        finally:
            sqlite.close()

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(records=st.lists(_records(), max_size=12))
    def test_task_round_trip_is_exact(self, tmp_path_factory, records):
        records = _unique_records(records)
        tmp_path = tmp_path_factory.mktemp("tasks")
        jsonl, sqlite = _make_stores(tmp_path)
        try:
            jsonl.sync_tasks(records, records)
            sqlite.sync_tasks(records, records)
            assert jsonl.load_tasks() == records
            assert sqlite.load_tasks() == records
        finally:
            sqlite.close()

    def test_sqlite_upsert_preserves_insertion_order(self, tmp_path):
        _, sqlite = _make_stores(tmp_path)
        try:
            records = [
                TaskRecord(scenario=Scenario(
                    scenario_id=f"s{i}", sku_name=_SKUS[0], nnodes=1,
                    ppn=1, appname="lammps", appinputs={},
                ))
                for i in range(5)
            ]
            sqlite.sync_tasks(records, records)
            records[1].status = TaskStatus.COMPLETED
            records[1].exec_time_s = 12.5
            sqlite.sync_tasks([records[1]], records)
            loaded = sqlite.load_tasks()
            assert [r.scenario.scenario_id for r in loaded] == \
                [f"s{i}" for i in range(5)]
            assert loaded[1].status is TaskStatus.COMPLETED
        finally:
            sqlite.close()


# -- migration --------------------------------------------------------------------


class TestMigration:
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(points=st.lists(_points(), max_size=15),
           records=st.lists(_records(), max_size=8),
           query=_queries())
    def test_migrated_sqlite_equals_direct_jsonl(self, tmp_path_factory,
                                                 points, records, query):
        records = _unique_records(records)
        tmp_path = tmp_path_factory.mktemp("mig")
        dataset_path = str(tmp_path / "dataset-x.jsonl")
        taskdb_path = str(tmp_path / "tasks-x.json")
        db_path = str(tmp_path / "store-x.sqlite")
        legacy = JsonlStore(dataset_path, taskdb_path)
        legacy.append_points(points)
        legacy.sync_tasks(records, records)
        expected_points = legacy.query_points(query)
        expected_tasks = legacy.load_tasks()

        migrated = open_deployment_store(dataset_path, taskdb_path, db_path,
                                         backend="sqlite")
        try:
            assert migrated.kind == "sqlite"
            assert migrated.query_points(query) == expected_points
            assert migrated.load_tasks() == expected_tasks
            # Legacy files are frozen aside, not left live.
            assert not os.path.exists(dataset_path)
            assert not os.path.exists(taskdb_path)
        finally:
            migrated.close()

    def test_migration_happens_once(self, tmp_path):
        dataset_path = str(tmp_path / "dataset-y.jsonl")
        taskdb_path = str(tmp_path / "tasks-y.json")
        db_path = str(tmp_path / "store-y.sqlite")
        JsonlStore(dataset_path, taskdb_path).append_points(
            [DataPoint(appname="lammps", sku=_SKUS[0], nnodes=1, ppn=1,
                       exec_time_s=1.0, cost_usd=0.1)]
        )
        first = open_deployment_store(dataset_path, taskdb_path, db_path,
                                      backend="sqlite")
        first.close()
        # Re-opening finds the database and does not re-migrate (the
        # .migrated leftovers must not be re-imported as fresh data).
        second = open_deployment_store(dataset_path, taskdb_path, db_path,
                                       backend="sqlite")
        try:
            assert second.kind == "sqlite"
            assert second.count_points() == 1
        finally:
            second.close()

    def test_existing_sqlite_wins_over_configured_jsonl(self, tmp_path):
        db_path = str(tmp_path / "store-z.sqlite")
        store = SqliteStore(db_path)
        store.append_point(DataPoint(
            appname="lammps", sku=_SKUS[0], nnodes=1, ppn=1,
            exec_time_s=1.0, cost_usd=0.1,
        ))
        store.close()
        reopened = open_deployment_store(
            str(tmp_path / "dataset-z.jsonl"), str(tmp_path / "tasks-z.json"),
            db_path, backend="jsonl",
        )
        try:
            assert reopened.kind == "sqlite"  # the data lives there
            assert reopened.count_points() == 1
        finally:
            reopened.close()


# -- byte compatibility ------------------------------------------------------------


class TestJsonlByteCompatibility:
    def test_appends_match_legacy_dataset_save(self, tmp_path):
        points = [
            DataPoint(appname="lammps", sku=_SKUS[i % 2], nnodes=i + 1,
                      ppn=4, exec_time_s=float(i), cost_usd=0.5 * i,
                      appinputs={"BOXFACTOR": str(i)})
            for i in range(6)
        ]
        legacy_path = tmp_path / "legacy.jsonl"
        Dataset(points).save(str(legacy_path))
        store = JsonlStore(str(tmp_path / "store.jsonl"),
                           str(tmp_path / "tasks.json"))
        for point in points:  # one append per point, like a sweep
            store.append_point(point)
        assert (tmp_path / "store.jsonl").read_bytes() == \
            legacy_path.read_bytes()

    def test_task_sync_matches_legacy_taskdb_save(self, tmp_path):
        db = TaskDB(path=str(tmp_path / "legacy.json"))
        db.add_scenarios([
            Scenario(scenario_id=f"s{i}", sku_name=_SKUS[0], nnodes=1,
                     ppn=1, appname="lammps", appinputs={})
            for i in range(4)
        ])
        db.mark_completed("s1", exec_time_s=3.0, cost_usd=0.2)
        db.save()
        store = JsonlStore(str(tmp_path / "d.jsonl"),
                           str(tmp_path / "store-tasks.json"))
        store.sync_tasks(db.all(), db.all())
        assert (tmp_path / "store-tasks.json").read_bytes() == \
            (tmp_path / "legacy.json").read_bytes()


# -- resolution --------------------------------------------------------------------


class TestBackendResolution:
    def test_env_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", "jsonl")
        assert resolve_backend() == "jsonl"
        monkeypatch.setenv("REPRO_STORE", "sqlite")
        assert resolve_backend() == "sqlite"

    def test_default_is_sqlite(self, monkeypatch):
        monkeypatch.delenv("REPRO_STORE", raising=False)
        assert resolve_backend() == "sqlite"

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", "jsonl")
        set_default_backend("sqlite")
        try:
            assert resolve_backend() == "sqlite"
            assert resolve_backend("jsonl") == "jsonl"  # explicit wins
        finally:
            set_default_backend(None)

    def test_unknown_backend_rejected(self, monkeypatch):
        from repro.errors import ConfigError

        monkeypatch.setenv("REPRO_STORE", "mongodb")
        with pytest.raises(ConfigError, match="unknown store backend"):
            resolve_backend()


# -- store signatures --------------------------------------------------------------


class TestSignatures:
    def test_sqlite_signature_sees_other_connections(self, tmp_path):
        db_path = str(tmp_path / "sig.sqlite")
        a = SqliteStore(db_path)
        b = SqliteStore(db_path)
        try:
            sig = a.dataset_signature()
            b.append_point(DataPoint(
                appname="lammps", sku=_SKUS[0], nnodes=1, ppn=1,
                exec_time_s=1.0, cost_usd=0.1,
            ))
            assert a.dataset_signature() != sig
        finally:
            a.close()
            b.close()

    def test_jsonl_signature_sees_appends(self, tmp_path):
        store = JsonlStore(str(tmp_path / "d.jsonl"),
                           str(tmp_path / "t.json"))
        sig = store.dataset_signature()
        store.append_point(DataPoint(
            appname="lammps", sku=_SKUS[0], nnodes=1, ppn=1,
            exec_time_s=1.0, cost_usd=0.1,
        ))
        assert store.dataset_signature() != sig

    def test_sqlite_exists_semantics(self, tmp_path):
        store = SqliteStore(str(tmp_path / "e.sqlite"))
        try:
            assert not store.exists()  # no sweep ever saved here
            store.flush_points()
            assert store.exists()  # even with zero points (empty sweep)
        finally:
            store.close()

    def test_jsonl_query_tolerates_missing_files(self, tmp_path):
        store = JsonlStore(str(tmp_path / "nope.jsonl"),
                           str(tmp_path / "nope.json"))
        assert store.query_points(Query(sku="hb120rs_v3")) == []
        assert store.count_points() == 0
        assert store.load_tasks() == []
        assert not store.exists()


class TestMigrationCrashSafety:
    def test_schema_only_debris_does_not_shadow_legacy(self, tmp_path):
        """A crash mid-migration must not leave a database that hides
        the intact legacy corpus: the build happens at a temp path and
        only a *complete* database lands at db_path."""
        dataset_path = str(tmp_path / "dataset-c.jsonl")
        taskdb_path = str(tmp_path / "tasks-c.json")
        db_path = str(tmp_path / "store-c.sqlite")
        JsonlStore(dataset_path, taskdb_path).append_points([
            DataPoint(appname="lammps", sku=_SKUS[0], nnodes=n, ppn=1,
                      exec_time_s=float(n), cost_usd=0.1)
            for n in (1, 2)
        ])
        # Simulate the crash debris: a schema-only half-built temp DB.
        SqliteStore(db_path + ".migrating").close()

        store = open_deployment_store(dataset_path, taskdb_path, db_path,
                                      backend="sqlite")
        try:
            assert store.count_points() == 2  # nothing lost
            assert not os.path.exists(db_path + ".migrating")
        finally:
            store.close()


class TestSignatureIndependence:
    def test_task_writes_do_not_invalidate_dataset_cache(self, tmp_path):
        from repro.core.scenarios import Scenario

        store = SqliteStore(str(tmp_path / "ind.sqlite"))
        try:
            point_sig = store.dataset_signature()
            record = TaskRecord(scenario=Scenario(
                scenario_id="s0", sku_name=_SKUS[0], nnodes=1, ppn=1,
                appname="lammps", appinputs={}))
            store.sync_tasks([record], [record])
            assert store.dataset_signature() == point_sig
            task_sig = store.tasks_signature()
            store.append_point(DataPoint(
                appname="lammps", sku=_SKUS[0], nnodes=1, ppn=1,
                exec_time_s=1.0, cost_usd=0.1))
            assert store.tasks_signature() == task_sig
            assert store.dataset_signature() != point_sig
        finally:
            store.close()


class TestQueryViewSaveSafety:
    def test_filtered_view_cannot_overwrite_the_store(self, tmp_path,
                                                      monkeypatch):
        """Regression: query_dataset results used to carry the SQLite
        file as their path, so a stray save() destroyed the database."""
        import sqlite3

        from repro.api import AdvisorSession
        from repro.errors import DatasetError
        from tests.conftest import make_config

        monkeypatch.setenv("REPRO_STORE", "sqlite")
        session = AdvisorSession(state_dir=str(tmp_path / "state"))
        info = session.deploy(make_config())
        session.collect(deployment=info.name)
        view = session.query_dataset(info.name, Query(nnodes=(1,)))
        assert view.path is None
        with pytest.raises(DatasetError, match="no path"):
            view.save()
        filtered = session.dataset(info.name).filter(min_nodes=1)
        assert filtered.path is None
        # The database is still a database.
        db = sqlite3.connect(session.store.db_path(info.name))
        assert db.execute("SELECT COUNT(*) FROM datapoints").fetchone()[0] \
            == 2
        db.close()


class TestPaginationValidation:
    def test_negative_window_is_a_config_error(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="limit"):
            Query(limit=-1)
        with pytest.raises(ConfigError, match="offset"):
            Query(offset=-1)
