"""The unified capability registry (repro.api.registry)."""

import pytest

from repro.api import registry as reg
from repro.api.registry import Registry
from repro.errors import (
    AppScriptError,
    BackendError,
    ConfigError,
    SamplingError,
)


class TestGenericRegistry:
    def test_register_and_create(self):
        r = Registry(kind="widget")
        r.register("a", lambda: "made-a")
        assert r.create("a") == "made-a"
        assert r.names() == ["a"]
        assert "a" in r and "A" in r

    def test_decorator_form(self):
        r = Registry(kind="widget")

        @r.register("dec")
        def make():
            return 1

        assert r.create("dec") == 1
        assert make() == 1  # decorator returns the factory unchanged

    def test_duplicate_registration_raises(self):
        r = Registry(kind="widget")
        r.register("a", lambda: 1)
        with pytest.raises(ConfigError, match="already registered"):
            r.register("A", lambda: 2)

    def test_missing_name_lists_known(self):
        r = Registry(kind="widget")
        r.register("alpha", lambda: 1)
        with pytest.raises(ConfigError, match="alpha"):
            r.get("beta")

    def test_custom_error_class(self):
        r = Registry(kind="thing", error_cls=SamplingError)
        with pytest.raises(SamplingError):
            r.get("nope")

    def test_unregister(self):
        r = Registry(kind="widget")
        r.register("a", lambda: 1)
        r.unregister("a")
        assert "a" not in r
        r.register("a", lambda: 2)  # name reusable afterwards
        assert r.create("a") == 2


class TestBuiltinRegistries:
    def test_backends(self):
        assert reg.list_backends() == ["azurebatch", "slurm"]
        with pytest.raises(BackendError, match="no execution backend"):
            reg.backends.get("kubernetes")

    def test_apps(self):
        names = reg.list_apps()
        for expected in ("lammps", "openfoam", "wrf", "gromacs", "namd",
                         "matrixmult"):
            assert expected in names
        with pytest.raises(AppScriptError, match="no built-in plugin"):
            reg.apps.get("fortranzilla")

    def test_perf_models(self):
        assert "lammps" in reg.list_perf_models()
        with pytest.raises(ConfigError, match="no performance model"):
            reg.perf_models.get("fortranzilla")

    def test_sampling_policies(self):
        names = reg.list_sampling_policies()
        for expected in ("default", "aggressive", "conservative",
                         "measure-all"):
            assert expected in names
        policy = reg.sampling_policies.create("aggressive")
        assert policy.min_r_squared == 0.95
        with pytest.raises(SamplingError, match="no sampling policy"):
            reg.sampling_policies.get("yolo")

    def test_measure_all_policy_disables_everything(self):
        policy = reg.sampling_policies.create("measure-all")
        assert not policy.enable_discard
        assert not policy.enable_predict
        assert not policy.enable_bottleneck
        assert not policy.enable_transfer


class TestLegacyShims:
    """The pre-facade registry functions keep their contracts."""

    def test_perf_registry_shim(self):
        from repro.perf.registry import get_model, list_models

        assert "openfoam" in list_models()
        assert get_model("lammps") is not None

    def test_appkit_shim(self):
        from repro.appkit.plugins import get_plugin, list_plugins

        assert "lammps" in list_plugins()
        assert get_plugin("lammps") is not None

    def test_custom_registration_visible_through_shim(self):
        from repro.perf.registry import get_model, register_model

        class FakeModel:
            def __init__(self, noise):
                self.noise = noise

        register_model("testonly-fake", lambda noise: FakeModel(noise))
        try:
            assert isinstance(get_model("testonly-fake"), FakeModel)
        finally:
            reg.perf_models.unregister("testonly-fake")

    def test_session_uses_registered_backend(self):
        """A backend registered at runtime is reachable from collect()."""
        from repro.api import AdvisorSession
        from repro.backends.azurebatch import AzureBatchBackend
        from tests.conftest import make_config

        created = []

        def make_tracked(deployment, config, noise):
            backend = AzureBatchBackend(service=deployment.batch,
                                        noise=noise)
            created.append(backend)
            return backend

        reg.register_backend("testonly-tracked")(make_tracked)
        try:
            session = AdvisorSession()
            info = session.deploy(make_config())
            result = session.collect(deployment=info.name,
                                     backend="testonly-tracked")
            assert result.completed == 2
            assert len(created) == 1
        finally:
            reg.backends.unregister("testonly-tracked")
