"""Batch service and task execution tests."""

import pytest

from repro.batch.service import BatchService
from repro.batch.task import BatchTask, TaskKind, TaskOutput, TaskState
from repro.cloud.provider import CloudProvider
from repro.errors import BatchError, ResourceNotFound, SkuNotAvailable


@pytest.fixture
def service():
    provider = CloudProvider()
    sub = provider.register_subscription("test")
    return BatchService(
        account_name="testbatch",
        provider=provider,
        subscription=sub,
        region="southcentralus",
    )


def sleep_task(task_id="t1", seconds=10.0, nodes=1, exit_code=0,
               kind=TaskKind.COMPUTE):
    return BatchTask(
        task_id=task_id,
        kind=kind,
        executor=lambda ctx: TaskOutput(
            exit_code=exit_code,
            stdout=f"ran on {ctx.nodes} nodes\n",
            wall_time_s=seconds,
        ),
        required_nodes=nodes,
    )


class TestPools:
    def test_create_pool(self, service):
        pool = service.create_pool("p1", "Standard_HB120rs_v3", 2)
        assert pool.current_nodes == 2

    def test_duplicate_pool_rejected(self, service):
        service.create_pool("p1", "Standard_HB120rs_v3")
        with pytest.raises(BatchError):
            service.create_pool("p1", "Standard_HB120rs_v3")

    def test_sku_validated_against_region(self, service):
        service.region = "japaneast"
        with pytest.raises(SkuNotAvailable):
            service.create_pool("p1", "Standard_HB120rs_v3")

    def test_recreate_after_delete(self, service):
        service.create_pool("p1", "Standard_HB120rs_v3")
        service.delete_pool("p1")
        service.create_pool("p1", "Standard_HB120rs_v3")

    def test_get_deleted_pool_raises(self, service):
        service.create_pool("p1", "Standard_HB120rs_v3")
        service.delete_pool("p1")
        with pytest.raises(ResourceNotFound):
            service.get_pool("p1")

    def test_list_pools(self, service):
        service.create_pool("p1", "Standard_HB120rs_v3")
        service.create_pool("p2", "Standard_HC44rs")
        service.delete_pool("p1")
        assert [p.pool_id for p in service.list_pools()] == ["p2"]
        assert len(service.list_pools(include_deleted=True)) == 2


class TestTasks:
    def test_run_task_lifecycle(self, service):
        service.create_pool("p1", "Standard_HB120rs_v3", 2)
        service.create_job("j1", "p1")
        service.submit_task("j1", sleep_task(seconds=30.0, nodes=2))
        before = service.clock.now
        task = service.run_task("j1", "t1")
        assert task.state is TaskState.COMPLETED
        assert service.clock.now == pytest.approx(before + 30.0)
        assert task.started_at == before
        assert task.finished_at == service.clock.now
        assert len(task.assigned_node_ids) == 2

    def test_failed_task_state(self, service):
        service.create_pool("p1", "Standard_HB120rs_v3", 1)
        service.create_job("j1", "p1")
        service.submit_task("j1", sleep_task(exit_code=1))
        task = service.run_task("j1", "t1")
        assert task.state is TaskState.FAILED

    def test_nodes_released_after_task(self, service):
        service.create_pool("p1", "Standard_HB120rs_v3", 2)
        service.create_job("j1", "p1")
        service.submit_task("j1", sleep_task(nodes=2))
        service.run_task("j1", "t1")
        assert len(service.get_pool("p1").idle_nodes) == 2

    def test_nodes_released_even_if_executor_raises(self, service):
        service.create_pool("p1", "Standard_HB120rs_v3", 1)
        service.create_job("j1", "p1")

        def boom(ctx):
            raise RuntimeError("executor bug")

        service.submit_task("j1", BatchTask(task_id="t1",
                                            kind=TaskKind.COMPUTE,
                                            executor=boom))
        with pytest.raises(RuntimeError):
            service.run_task("j1", "t1")
        assert len(service.get_pool("p1").idle_nodes) == 1

    def test_run_task_twice_rejected(self, service):
        service.create_pool("p1", "Standard_HB120rs_v3", 1)
        service.create_job("j1", "p1")
        service.submit_task("j1", sleep_task())
        service.run_task("j1", "t1")
        with pytest.raises(BatchError, match="expected pending"):
            service.run_task("j1", "t1")

    def test_task_workdir_created(self, service):
        service.create_pool("p1", "Standard_HB120rs_v3", 1)
        service.create_job("j1", "p1")
        service.submit_task("j1", sleep_task())
        service.run_task("j1", "t1")
        assert service.filesystem.isdir("/mnt/nfs/jobs/j1/t1")

    def test_duplicate_task_id_rejected(self, service):
        service.create_pool("p1", "Standard_HB120rs_v3", 1)
        service.create_job("j1", "p1")
        service.submit_task("j1", sleep_task())
        with pytest.raises(BatchError):
            service.submit_task("j1", sleep_task())

    def test_multi_instance_validation(self):
        with pytest.raises(ValueError):
            BatchTask(task_id="x", kind=TaskKind.COMPUTE,
                      executor=lambda ctx: None, required_nodes=0)


class TestAccounting:
    def test_task_cost_formula(self, service):
        """cost = nodes x hourly price x wall / 3600 (the paper's formula)."""
        service.create_pool("p1", "Standard_HB120rs_v3", 16)
        service.create_job("j1", "p1")
        service.submit_task("j1", sleep_task(seconds=36.0, nodes=16))
        service.run_task("j1", "t1")
        assert service.accounting[-1].cost_usd == pytest.approx(0.576)
        assert service.total_task_cost_usd == pytest.approx(0.576)

    def test_pool_cost_exceeds_task_cost(self, service):
        """Boot and idle time bill to the pool but not to tasks."""
        service.create_pool("p1", "Standard_HB120rs_v3", 4)
        service.create_job("j1", "p1")
        service.submit_task("j1", sleep_task(seconds=100, nodes=4))
        service.run_task("j1", "t1")
        assert service.total_pool_cost_usd > service.total_task_cost_usd

    def test_teardown_deletes_all_pools(self, service):
        service.create_pool("p1", "Standard_HB120rs_v3", 1)
        service.create_pool("p2", "Standard_HC44rs", 1)
        service.teardown()
        assert not service.list_pools()


class TestJobs:
    def test_job_requires_existing_pool(self, service):
        with pytest.raises(ResourceNotFound):
            service.create_job("j1", "ghost")

    def test_job_task_queries(self, service):
        service.create_pool("p1", "Standard_HB120rs_v3", 1)
        job = service.create_job("j1", "p1")
        service.submit_task("j1", sleep_task("a"))
        service.submit_task("j1", sleep_task("b", exit_code=1))
        assert not job.all_done
        service.run_task("j1", "a")
        service.run_task("j1", "b")
        assert job.all_done
        assert job.failure_count == 1
        assert len(job.tasks_in_state(TaskState.COMPLETED)) == 1
