"""MpiLauncher tests."""

import pytest

from repro.cloud.skus import get_sku
from repro.cluster.host import make_hosts
from repro.cluster.mpi import MpiLauncher
from repro.errors import AppScriptError


def launcher(sku_name="Standard_HB120rs_v3", nodes=2):
    return MpiLauncher(hosts=make_hosts(get_sku(sku_name), nodes))


class TestValidation:
    def test_needs_hosts(self):
        with pytest.raises(AppScriptError, match="at least one host"):
            MpiLauncher(hosts=[])

    def test_mixed_skus_rejected(self):
        hosts = make_hosts(get_sku("Standard_HB120rs_v3"), 1) + make_hosts(
            get_sku("Standard_HC44rs"), 1
        )
        with pytest.raises(AppScriptError, match="share a SKU"):
            MpiLauncher(hosts=hosts)

    def test_ppn_out_of_range(self):
        with pytest.raises(AppScriptError, match="out of range"):
            launcher().run("lammps", {"BOXFACTOR": "2"}, ppn=500)

    def test_np_mismatch_detected(self):
        """Mirrors NP=$(($NNODES * $PPN)) arithmetic: a wrong -np is a bug."""
        with pytest.raises(AppScriptError, match="np mismatch"):
            launcher().run("lammps", {"BOXFACTOR": "2"}, ppn=120, np=100)


class TestExecution:
    def test_successful_run(self):
        result = launcher().run("lammps", {"BOXFACTOR": "4"})
        assert result.succeeded
        assert result.exec_time_s > 0
        assert result.np == 240
        assert result.ppn == 120
        assert "LAMMPSATOMS" in result.perf.app_vars

    def test_default_ppn_uses_all_slots(self):
        result = launcher("Standard_HC44rs").run("lammps", {"BOXFACTOR": "4"})
        assert result.ppn == 44

    def test_np_consistency_accepted(self):
        result = launcher().run("lammps", {"BOXFACTOR": "4"}, ppn=60, np=120)
        assert result.np == 120

    def test_oom_returns_failure_not_exception(self):
        # bf=60 -> 6.9G atoms -> ~442 GB working set on one node: OOM.
        big = MpiLauncher(hosts=make_hosts(get_sku("Standard_HB120rs_v3"), 1))
        result = big.run("lammps", {"BOXFACTOR": "60"})
        assert not result.succeeded
        assert "out of memory" in result.perf.failure_reason

    def test_launch_log_records_runs(self):
        mpi = launcher()
        mpi.run("lammps", {"BOXFACTOR": "4"})
        assert len(mpi.launch_log) == 1
        assert "mpirun -np 240" in mpi.launch_log[0]

    def test_hostlist_matches_paper_format(self):
        result = launcher().run("lammps", {"BOXFACTOR": "4"})
        assert ":120" in result.hostlist
