"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.appkit.plugins import get_plugin
from repro.backends.azurebatch import AzureBatchBackend
from repro.cloud.provider import CloudProvider
from repro.core.collector import DataCollector
from repro.core.config import MainConfig
from repro.core.dataset import Dataset
from repro.core.deployer import Deployer, Deployment
from repro.core.scenarios import generate_scenarios
from repro.core.taskdb import TaskDB

#: The paper's three evaluation SKUs.
PAPER_SKUS = ["Standard_HC44rs", "Standard_HB120rs_v2", "Standard_HB120rs_v3"]


def make_config(**overrides) -> MainConfig:
    """A small valid configuration; override any field."""
    base = {
        "subscription": "test-subscription",
        "skus": ["Standard_HB120rs_v3"],
        "rgprefix": "testrg",
        "appsetupurl": "https://example.org/app.sh",
        "nnodes": [1, 2],
        "appname": "lammps",
        "region": "southcentralus",
        "ppr": 100,
        "appinputs": {"BOXFACTOR": ["4"]},
        "tags": {"version": "test"},
    }
    base.update(overrides)
    return MainConfig.from_dict(base)


def collect_config(config: MainConfig) -> Dataset:
    """Deploy + collect a configuration, returning the dataset."""
    deployment = Deployer().deploy(config)
    collector = DataCollector(
        backend=AzureBatchBackend(service=deployment.batch),
        script=get_plugin(config.appname),
        dataset=Dataset(),
        taskdb=TaskDB(),
        deployment_name=deployment.name,
    )
    collector.collect(generate_scenarios(config))
    return collector.dataset


@pytest.fixture
def provider() -> CloudProvider:
    return CloudProvider()


@pytest.fixture
def small_config() -> MainConfig:
    return make_config()


@pytest.fixture
def deployment(small_config) -> Deployment:
    return Deployer().deploy(small_config)


@pytest.fixture(scope="session")
def lammps_paper_dataset() -> Dataset:
    """The paper's Listing-4 sweep: LAMMPS bf=30 on 3 SKUs x [3,4,8,16]."""
    config = MainConfig.from_dict({
        "subscription": "paper",
        "skus": PAPER_SKUS,
        "rgprefix": "paperlammps",
        "appsetupurl": "https://example.org/lammps.sh",
        "nnodes": [3, 4, 8, 16],
        "appname": "lammps",
        "region": "southcentralus",
        "ppr": 100,
        "appinputs": {"BOXFACTOR": ["30"]},
    })
    return collect_config(config)


@pytest.fixture(scope="session")
def openfoam_paper_dataset() -> Dataset:
    """The paper's Listing-3 sweep: OpenFOAM '40 16 16' on 3 SKUs."""
    config = MainConfig.from_dict({
        "subscription": "paper",
        "skus": PAPER_SKUS,
        "rgprefix": "paperof",
        "appsetupurl": "https://example.org/openfoam.sh",
        "nnodes": [3, 4, 8, 16],
        "appname": "openfoam",
        "region": "southcentralus",
        "ppr": 100,
        "appinputs": {"mesh": ["40 16 16"]},
    })
    return collect_config(config)
