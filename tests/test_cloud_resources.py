"""Resource-group / vnet / storage / jumpbox tests."""

import pytest

from repro.cloud.resources import (
    JumpboxVm,
    ResourceGroup,
    StorageAccount,
    VirtualNetwork,
)
from repro.errors import CloudError, ResourceExists, ResourceNotFound


class TestVirtualNetwork:
    def test_subnet_within_space(self):
        vnet = VirtualNetwork(name="v", cidr="10.0.0.0/16")
        subnet = vnet.add_subnet("compute", "10.0.0.0/20")
        assert subnet.capacity == 2**12 - 5

    def test_subnet_outside_space_rejected(self):
        vnet = VirtualNetwork(name="v", cidr="10.0.0.0/16")
        with pytest.raises(CloudError, match="not contained"):
            vnet.add_subnet("bad", "192.168.0.0/24")

    def test_overlapping_subnets_rejected(self):
        vnet = VirtualNetwork(name="v", cidr="10.0.0.0/16")
        vnet.add_subnet("a", "10.0.0.0/20")
        with pytest.raises(CloudError, match="overlaps"):
            vnet.add_subnet("b", "10.0.8.0/24")

    def test_duplicate_subnet_name_rejected(self):
        vnet = VirtualNetwork(name="v", cidr="10.0.0.0/16")
        vnet.add_subnet("a", "10.0.0.0/24")
        with pytest.raises(ResourceExists):
            vnet.add_subnet("a", "10.0.1.0/24")

    def test_invalid_cidr_rejected(self):
        with pytest.raises(ValueError):
            VirtualNetwork(name="v", cidr="not-a-cidr")

    def test_peering_is_bidirectional(self):
        a = VirtualNetwork(name="a", cidr="10.0.0.0/16")
        b = VirtualNetwork(name="b", cidr="10.1.0.0/16")
        a.peer_with(b)
        assert "b" in a.peered_with
        assert "a" in b.peered_with

    def test_peering_overlapping_spaces_rejected(self):
        a = VirtualNetwork(name="a", cidr="10.0.0.0/16")
        b = VirtualNetwork(name="b", cidr="10.0.128.0/17")
        with pytest.raises(CloudError, match="overlapping"):
            a.peer_with(b)

    def test_peering_idempotent(self):
        a = VirtualNetwork(name="a", cidr="10.0.0.0/16")
        b = VirtualNetwork(name="b", cidr="10.1.0.0/16")
        a.peer_with(b)
        a.peer_with(b)
        assert a.peered_with.count("b") == 1


class TestStorageAccount:
    def test_valid_name(self):
        StorageAccount(name="hpcadvisorsa01", region="eastus")

    @pytest.mark.parametrize("bad", ["ab", "Has-Dash", "UPPER", "x" * 25])
    def test_invalid_names(self, bad):
        with pytest.raises(CloudError, match="invalid storage account name"):
            StorageAccount(name=bad, region="eastus")

    def test_shares(self):
        account = StorageAccount(name="testsa", region="eastus")
        share = account.create_share("nfs", quota_bytes=1e12)
        assert share.quota_bytes == 1e12
        with pytest.raises(ResourceExists):
            account.create_share("nfs", quota_bytes=1e12)

    def test_blobs(self):
        account = StorageAccount(name="testsa", region="eastus")
        account.put_blob("scripts/app.sh", b"#!/bin/bash")
        assert account.get_blob("scripts/app.sh") == b"#!/bin/bash"
        with pytest.raises(ResourceNotFound):
            account.get_blob("missing")


class TestResourceGroup:
    def test_create_resources(self):
        rg = ResourceGroup(name="test-rg", region="eastus")
        rg.create_vnet("vnet", "10.0.0.0/16")
        rg.create_storage_account("testsa001")
        assert "vnet" in rg.vnets
        assert "testsa001" in rg.storage_accounts

    def test_invalid_name(self):
        with pytest.raises(CloudError):
            ResourceGroup(name="bad name with spaces!", region="eastus")

    def test_jumpbox_requires_vnet_and_subnet(self):
        rg = ResourceGroup(name="rg", region="eastus")
        with pytest.raises(ResourceNotFound):
            rg.create_jumpbox("jb", "missing-vnet", "subnet")
        vnet = rg.create_vnet("vnet", "10.0.0.0/16")
        with pytest.raises(ResourceNotFound):
            rg.create_jumpbox("jb", "vnet", "missing-subnet")
        vnet.add_subnet("infra", "10.0.1.0/24")
        jumpbox = rg.create_jumpbox("jb", "vnet", "infra")
        assert isinstance(jumpbox, JumpboxVm)
        assert jumpbox.private_ip is not None
        assert jumpbox.private_ip.startswith("10.0.1.")

    def test_deleted_group_rejects_operations(self):
        rg = ResourceGroup(name="rg", region="eastus")
        rg.mark_deleted()
        with pytest.raises(ResourceNotFound):
            rg.create_vnet("vnet", "10.0.0.0/16")

    def test_delete_clears_children(self):
        rg = ResourceGroup(name="rg", region="eastus")
        rg.create_vnet("vnet", "10.0.0.0/16")
        rg.mark_deleted()
        assert not rg.vnets
