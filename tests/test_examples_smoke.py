"""Smoke tests: every shipped example must run cleanly end to end.

The examples are the quickstart documentation; breaking one is breaking
the README.  Each runs as a real subprocess (fresh interpreter, no shared
state) and is checked for a zero exit code plus its headline output.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")
SRC_DIR = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "src")
)

#: example file -> substring its stdout must contain.
EXPECTED_OUTPUT = {
    "quickstart.py": "fastest option:",
    "lammps_scaling_study.py": "Advice (cf. paper Listing 4):",
    "openfoam_motorbike_advice.py": "Cluster recipe",
    "smart_sampling_demo.py": "Sampler decisions",
    "slurm_backend_demo.py": "sinfo",
    "multi_app_comparison.py": "best config",
    "predicted_advice_demo.py": "prediction error",
    "budget_payoff_demo.py": "break-even",
    "remote_advisor_demo.py": "cheapest option:",
    "spot_advisor_demo.py": "verdict at brutal rate",
}


def run_example(name: str, *args: str, cwd: str) -> subprocess.CompletedProcess:
    # The subprocess gets a fresh interpreter: propagate the src-layout
    # package dir so the examples import `repro` without installation.
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name), *args],
        capture_output=True,
        text=True,
        timeout=180,
        cwd=cwd,
        env=env,
    )


@pytest.mark.parametrize("name", sorted(EXPECTED_OUTPUT))
def test_example_runs(name, tmp_path):
    extra = [str(tmp_path / "plots")] if name == "lammps_scaling_study.py" \
        else []
    result = run_example(name, *extra, cwd=str(tmp_path))
    assert result.returncode == 0, result.stderr[-2000:]
    assert EXPECTED_OUTPUT[name] in result.stdout


def test_lammps_study_writes_five_charts(tmp_path):
    out_dir = tmp_path / "plots"
    result = run_example("lammps_scaling_study.py", str(out_dir),
                         cwd=str(tmp_path))
    assert result.returncode == 0, result.stderr[-2000:]
    assert sorted(os.listdir(out_dir)) == [
        "plot_cost.svg", "plot_efficiency.svg", "plot_exectime.svg",
        "plot_pareto.svg", "plot_speedup.svg",
    ]


def test_quickstart_reports_a_pareto_tradeoff(tmp_path):
    result = run_example("quickstart.py", cwd=str(tmp_path))
    assert result.returncode == 0
    # Fastest and cheapest options must both be reported, and differ.
    lines = [ln for ln in result.stdout.splitlines()
             if ln.startswith(("fastest option:", "cheapest option:"))]
    assert len(lines) == 2
