"""Simulated Slurm cluster tests."""

import pytest

from repro.cloud.provider import CloudProvider
from repro.errors import BackendError
from repro.slurmsim.cluster import JobCompletion, SlurmCluster
from repro.slurmsim.jobs import JobState


@pytest.fixture
def cluster():
    provider = CloudProvider()
    sub = provider.register_subscription("test")
    return SlurmCluster(provider=provider, subscription=sub,
                        region="southcentralus")


def ok_runner(seconds=10.0, exit_code=0):
    def runner(hosts, fs, workdir):
        return JobCompletion(exit_code=exit_code,
                             stdout=f"{len(hosts)} hosts in {workdir}\n",
                             wall_time_s=seconds)
    return runner


class TestPartitions:
    def test_create_partition(self, cluster):
        part = cluster.create_partition("hb", "Standard_HB120rs_v3")
        assert part.sku.cores == 120
        assert part.powered_up == 0

    def test_duplicate_partition(self, cluster):
        cluster.create_partition("hb", "Standard_HB120rs_v3")
        with pytest.raises(BackendError):
            cluster.create_partition("hb", "Standard_HB120rs_v3")

    def test_power_up_advances_clock_and_bills(self, cluster):
        part = cluster.create_partition("hb", "Standard_HB120rs_v3")
        before = cluster.clock.now
        part.power_up(2)
        assert cluster.clock.now > before
        assert part.meter.accrued_usd > 0

    def test_power_down_releases_quota(self, cluster):
        part = cluster.create_partition("hb", "Standard_HB120rs_v3")
        part.power_up(4)
        part.power_down(0)
        family = part.sku.family
        assert cluster.subscription.quota.used_for("southcentralus",
                                                   family) == 0

    def test_hosts_requires_powered_nodes(self, cluster):
        part = cluster.create_partition("hb", "Standard_HB120rs_v3")
        part.power_up(2)
        assert len(part.hosts(2)) == 2
        with pytest.raises(BackendError):
            part.hosts(3)

    def test_sinfo_output(self, cluster):
        part = cluster.create_partition("hb", "Standard_HB120rs_v3")
        part.power_up(2)
        text = cluster.sinfo()
        assert "PARTITION" in text
        assert "hb" in text and "hb120rs_v3" in text


class TestJobs:
    def test_sbatch_runs_synchronously(self, cluster):
        cluster.create_partition("hb", "Standard_HB120rs_v3")
        before = cluster.clock.now
        job = cluster.sbatch("test", "hb", 2, ok_runner(seconds=25.0))
        assert job.state is JobState.COMPLETED
        assert job.elapsed_s == pytest.approx(25.0)
        assert cluster.clock.now > before

    def test_failed_job_state(self, cluster):
        cluster.create_partition("hb", "Standard_HB120rs_v3")
        job = cluster.sbatch("bad", "hb", 1, ok_runner(exit_code=1))
        assert job.state is JobState.FAILED

    def test_job_ids_increment(self, cluster):
        cluster.create_partition("hb", "Standard_HB120rs_v3")
        a = cluster.sbatch("a", "hb", 1, ok_runner())
        b = cluster.sbatch("b", "hb", 1, ok_runner())
        assert b.job_id == a.job_id + 1

    def test_sbatch_autoscales_partition(self, cluster):
        part = cluster.create_partition("hb", "Standard_HB120rs_v3")
        cluster.sbatch("big", "hb", 8, ok_runner())
        assert part.powered_up == 8

    def test_sbatch_invalid_nodes(self, cluster):
        cluster.create_partition("hb", "Standard_HB120rs_v3")
        with pytest.raises(BackendError):
            cluster.sbatch("x", "hb", 0, ok_runner())

    def test_unknown_partition(self, cluster):
        with pytest.raises(BackendError):
            cluster.sbatch("x", "ghost", 1, ok_runner())

    def test_squeue_empty_after_completion(self, cluster):
        cluster.create_partition("hb", "Standard_HB120rs_v3")
        cluster.sbatch("a", "hb", 1, ok_runner())
        # Synchronous execution: nothing pending or running afterwards.
        assert len(cluster.squeue().strip().splitlines()) == 1  # header only

    def test_sacct_lists_history(self, cluster):
        cluster.create_partition("hb", "Standard_HB120rs_v3")
        cluster.sbatch("a", "hb", 1, ok_runner())
        cluster.sbatch("b", "hb", 1, ok_runner(exit_code=1))
        states = [j.state for j in cluster.sacct()]
        assert states == [JobState.COMPLETED, JobState.FAILED]

    def test_teardown_powers_down(self, cluster):
        part = cluster.create_partition("hb", "Standard_HB120rs_v3")
        part.power_up(4)
        cluster.teardown()
        assert part.powered_up == 0
