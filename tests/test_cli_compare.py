"""CLI compare-command tests."""

import pytest

from repro.cli.main import main

CONFIG_TMPL = """
subscription: cmp
skus:
  - Standard_HB120rs_v3
rgprefix: {prefix}
appsetupurl: https://example.org/lammps.sh
nnodes: [2, 4]
appname: lammps
region: southcentralus
ppr: 100
appinputs:
  BOXFACTOR: ["{bf}"]
tags:
  version: "{prefix}"
"""


def deploy_and_collect(state, tmp_path, prefix, bf, noise=0.0, seed=0):
    config_path = tmp_path / f"{prefix}.yaml"
    config_path.write_text(CONFIG_TMPL.format(prefix=prefix, bf=bf))
    assert main(["--state-dir", state, "deploy", "create", "-c",
                 str(config_path)]) == 0
    argv = ["--state-dir", state, "collect", "-n", f"{prefix}-000"]
    if noise:
        argv += ["--noise", str(noise), "--seed", str(seed)]
    assert main(argv) == 0


class TestCompareCommand:
    def test_identical_sweeps_match(self, tmp_path, capsys):
        state = str(tmp_path / "state")
        deploy_and_collect(state, tmp_path, "runa", "10")
        deploy_and_collect(state, tmp_path, "runb", "10")
        capsys.readouterr()
        assert main(["--state-dir", state, "compare",
                     "-a", "runa-000", "-b", "runb-000"]) == 0
        out = capsys.readouterr().out
        assert "matched scenarios: 2" in out
        assert "1.000" in out  # geomean time ratio

    def test_noisy_rerun_flags_regressions(self, tmp_path, capsys):
        state = str(tmp_path / "state")
        deploy_and_collect(state, tmp_path, "base", "10")
        deploy_and_collect(state, tmp_path, "cand", "10", noise=0.2, seed=9)
        capsys.readouterr()
        code = main(["--state-dir", state, "compare",
                     "-a", "base-000", "-b", "cand-000"])
        out = capsys.readouterr().out
        assert "matched scenarios: 2" in out
        # With 20% noise either outcome is legitimate; exit code mirrors
        # whether a >5% regression was detected and printed.
        assert (code == 1) == ("regressed" in out)

    def test_different_inputs_do_not_match(self, tmp_path, capsys):
        state = str(tmp_path / "state")
        deploy_and_collect(state, tmp_path, "small", "10")
        deploy_and_collect(state, tmp_path, "large", "20")
        capsys.readouterr()
        assert main(["--state-dir", state, "compare",
                     "-a", "small-000", "-b", "large-000"]) == 0
        out = capsys.readouterr().out
        assert "matched scenarios: 0" in out

    def test_missing_dataset_errors(self, tmp_path, capsys):
        state = str(tmp_path / "state")
        assert main(["--state-dir", state, "compare",
                     "-a", "ghost", "-b", "ghost2"]) == 2

    def test_json_output(self, tmp_path, capsys):
        import json

        state = str(tmp_path / "state")
        deploy_and_collect(state, tmp_path, "runa", "10")
        deploy_and_collect(state, tmp_path, "runb", "10")
        capsys.readouterr()
        assert main(["--state-dir", state, "compare",
                     "-a", "runa-000", "-b", "runb-000", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["deployment_a"] == "runa-000"
        assert payload["deployment_b"] == "runb-000"
        assert payload["matched"] == 2
        assert payload["geomean_time_ratio"] == pytest.approx(1.0)
        assert payload["regressions"] == 0
        assert len(payload["rows"]) == 2
        row = payload["rows"][0]
        assert row["time_ratio"] == pytest.approx(1.0)
        assert row["sku"] == "Standard_HB120rs_v3"

    def test_json_round_trips(self, tmp_path, capsys):
        from repro.api.results import CompareResult

        state = str(tmp_path / "state")
        deploy_and_collect(state, tmp_path, "runa", "10")
        deploy_and_collect(state, tmp_path, "runb", "10", noise=0.1, seed=3)
        capsys.readouterr()
        main(["--state-dir", state, "compare",
              "-a", "runa-000", "-b", "runb-000", "--json"])
        restored = CompareResult.from_json(capsys.readouterr().out)
        assert restored.matched == 2
        assert len(restored.rows) == 2
