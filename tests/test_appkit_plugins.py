"""Built-in plugin tests: faithful Listing-2-style behaviour."""

import pytest

from repro.appkit.context import AppRunContext
from repro.appkit.envvars import build_task_env
from repro.appkit.metricvars import extract_vars
from repro.appkit.plugins import get_plugin, list_plugins
from repro.appkit.plugins.lammps import IN_LJ_TEMPLATE, _sed_boxfactor
from repro.cloud.skus import get_sku
from repro.cluster.filesystem import SharedFilesystem
from repro.errors import AppScriptError

ALL_PLUGINS = {
    "lammps": {"BOXFACTOR": "10"},
    "openfoam": {"mesh": "40 16 16"},
    "wrf": {"resolution": "12"},
    "gromacs": {"atoms": "3000000"},
    "namd": {"atoms": "1060000"},
    "matrixmult": {"msize": "50000"},
}


def run_plugin(appname, appinputs, nodes=2, run_setup=True):
    plugin = get_plugin(appname)
    sku = get_sku("Standard_HB120rs_v3")
    fs = SharedFilesystem()
    from repro.cluster.host import make_hosts

    hosts = make_hosts(sku, nodes, "p")
    shared = f"/mnt/nfs/apps/{appname}"
    if run_setup:
        setup_ctx = AppRunContext.from_task_context_like(
            hosts=hosts[:1], filesystem=fs,
            env=build_task_env(hosts[:1], 1, "/mnt/nfs/setup"),
            workdir="/mnt/nfs/setup", shared_dir=shared,
        )
        assert plugin.setup(setup_ctx) == 0
    ctx = AppRunContext.from_task_context_like(
        hosts=hosts, filesystem=fs,
        env=build_task_env(hosts, sku.cores, "/mnt/nfs/jobs/t1",
                           appinputs=appinputs),
        workdir="/mnt/nfs/jobs/t1", shared_dir=shared,
    )
    code = plugin.run(ctx)
    return code, ctx


class TestRegistry:
    def test_paper_apps_all_have_plugins(self):
        for name in ("wrf", "openfoam", "gromacs", "lammps", "namd"):
            assert name in list_plugins()

    def test_unknown_plugin(self):
        with pytest.raises(AppScriptError):
            get_plugin("crysis")


@pytest.mark.parametrize("appname", sorted(ALL_PLUGINS))
class TestAllPlugins:
    def test_setup_then_run_succeeds(self, appname):
        code, ctx = run_plugin(appname, ALL_PLUGINS[appname])
        assert code == 0

    def test_appexectime_emitted(self, appname):
        _, ctx = run_plugin(appname, ALL_PLUGINS[appname])
        metrics = extract_vars(ctx.stdout)
        assert "APPEXECTIME" in metrics
        assert float(metrics["APPEXECTIME"]) > 0

    def test_setup_idempotent(self, appname):
        """Paper: 'a simple test can be done to avoid repeating such setup'."""
        plugin = get_plugin(appname)
        sku = get_sku("Standard_HB120rs_v3")
        from repro.cluster.host import make_hosts

        fs = SharedFilesystem()
        hosts = make_hosts(sku, 1)
        shared = f"/mnt/nfs/apps/{appname}"

        def do_setup():
            ctx = AppRunContext.from_task_context_like(
                hosts=hosts, filesystem=fs,
                env=build_task_env(hosts, 1, "/setup"),
                workdir="/setup", shared_dir=shared,
            )
            return plugin.setup(ctx), ctx

        code1, _ = do_setup()
        code2, ctx2 = do_setup()
        assert code1 == 0 and code2 == 0
        assert "already" in ctx2.stdout.lower() or appname == "matrixmult"


class TestLammpsPluginFidelity:
    def test_sed_substitution(self):
        """The three sed lines of Listing 2, ported exactly."""
        result = _sed_boxfactor(IN_LJ_TEMPLATE, "30")
        assert "variable        x index 30" in result
        assert "variable        y index 30" in result
        assert "variable        z index 30" in result
        assert "index 1" not in result

    def test_log_lammps_written_in_real_format(self):
        _, ctx = run_plugin("lammps", {"BOXFACTOR": "10"})
        log = ctx.read_file("log.lammps")
        assert "Loop time of" in log
        assert "Total wall time:" in log
        # awk-field positions used by Listing 2: $4 time, $9 steps, $12 atoms
        loop = next(ln for ln in log.splitlines() if ln.startswith("Loop"))
        fields = loop.split()
        assert float(fields[3]) > 0
        assert fields[8] == "100"
        assert fields[11] == str(32000 * 1000)

    def test_metrics_match_log(self):
        _, ctx = run_plugin("lammps", {"BOXFACTOR": "10"})
        metrics = extract_vars(ctx.stdout)
        assert metrics["LAMMPSATOMS"] == str(32000 * 1000)
        assert metrics["LAMMPSSTEPS"] == "100"

    def test_missing_boxfactor_fails(self):
        with pytest.raises(AppScriptError):
            run_plugin("lammps", {})

    def test_oom_returns_one_with_message(self):
        code, ctx = run_plugin("lammps", {"BOXFACTOR": "60"}, nodes=1)
        assert code == 1
        assert "did not complete successfully" in ctx.stdout
        assert "out of memory" in ctx.stdout

    def test_input_file_copied_from_shared(self):
        _, ctx = run_plugin("lammps", {"BOXFACTOR": "10"})
        assert ctx.file_exists("in.lj.txt")
        assert "variable        x index 10" in ctx.read_file("in.lj.txt")


class TestOpenFoamPluginFidelity:
    def test_blockmesh_dict_written(self):
        _, ctx = run_plugin("openfoam", {"mesh": "40 16 16"})
        dict_text = ctx.read_file("system/blockMeshDict")
        assert "(40 16 16)" in dict_text

    def test_log_simplefoam_format(self):
        _, ctx = run_plugin("openfoam", {"mesh": "40 16 16"})
        log = ctx.read_file("log.simpleFoam")
        assert "ExecutionTime" in log
        assert "End" in log

    def test_invalid_mesh_fails_cleanly(self):
        code, ctx = run_plugin("openfoam", {"mesh": "40 16"})
        assert code == 1
        assert "invalid MESH" in ctx.stdout

    def test_cells_metric(self):
        _, ctx = run_plugin("openfoam", {"mesh": "40 16 16"})
        metrics = extract_vars(ctx.stdout)
        assert int(metrics["OFCELLS"]) == pytest.approx(8e6, rel=0.05)
