"""Calibration against the paper's published measurements.

These tests pin the reproduction to the paper:

* Listing 4 (LAMMPS advice): HB120rs_v3 times for 3/4/8/16 nodes;
* Listing 3 (OpenFOAM advice): HB120rs_v3 times for 3/4/16 nodes;
* Figures 4-5: ~26x speedup / ~1.6 efficiency at 16 nodes on HB120rs_v2;
* Figure 2: SKU ordering (v3 fastest, hc44rs slowest) and hc44rs's
  ~1800 s 2-node point.

Absolute tolerances are deliberately loose (the paper's substrate was real
hardware; ours is a model) — the *shape* assertions are tight.
"""

import pytest

from repro.cloud.pricing import PriceCatalog
from repro.cloud.skus import get_sku
from repro.perf.registry import get_model

LAMMPS_INPUT = {"BOXFACTOR": "30"}  # 864M atoms, the paper's "860M"
OPENFOAM_INPUT = {"mesh": "40 16 16"}  # ~8M cells


def lammps_time(sku_name: str, nodes: int) -> float:
    sku = get_sku(sku_name)
    model = get_model("lammps")
    result = model.simulate(sku, nodes, sku.cores, LAMMPS_INPUT)
    assert result.succeeded
    return result.exec_time_s


def openfoam_time(sku_name: str, nodes: int) -> float:
    sku = get_sku(sku_name)
    model = get_model("openfoam")
    result = model.simulate(sku, nodes, sku.cores, OPENFOAM_INPUT)
    assert result.succeeded
    return result.exec_time_s


class TestLammpsListing4:
    """Paper Listing 4: (nodes, seconds) = (3,173) (4,132) (8,69) (16,36)."""

    @pytest.mark.parametrize("nodes,paper_s", [(3, 173), (4, 132), (8, 69),
                                               (16, 36)])
    def test_hb120v3_times(self, nodes, paper_s):
        measured = lammps_time("Standard_HB120rs_v3", nodes)
        assert measured == pytest.approx(paper_s, rel=0.10)

    def test_costs_match_listing4(self):
        prices = PriceCatalog()
        for nodes, paper_cost in [(3, 0.519), (4, 0.528), (8, 0.552),
                                  (16, 0.576)]:
            t = lammps_time("Standard_HB120rs_v3", nodes)
            cost = prices.task_cost("Standard_HB120rs_v3", nodes, t)
            assert cost == pytest.approx(paper_cost, rel=0.10)

    def test_node_seconds_rise_gently(self):
        """The advice table implies ~90% efficiency from 3 to 16 nodes."""
        ns3 = 3 * lammps_time("Standard_HB120rs_v3", 3)
        ns16 = 16 * lammps_time("Standard_HB120rs_v3", 16)
        assert 1.0 < ns16 / ns3 < 1.25


class TestLammpsFigures:
    def test_fig2_sku_ordering(self):
        """v3 fastest, v2 second, hc44rs slowest at every node count."""
        for nodes in (2, 4, 8, 16):
            t3 = lammps_time("Standard_HB120rs_v3", nodes)
            t2 = lammps_time("Standard_HB120rs_v2", nodes)
            thc = lammps_time("Standard_HC44rs", nodes)
            assert t3 < t2 < thc

    def test_fig2_hc44_magnitude(self):
        """hc44rs at 2 nodes sits near the paper's ~1,800-2,000 s axis top."""
        t = lammps_time("Standard_HC44rs", 2)
        assert 1300 < t < 2300

    def test_fig4_v2_superlinear_speedup(self):
        """Fig. 4 peaks near 26x at 16 nodes (ideal would be 16x)."""
        t1 = lammps_time("Standard_HB120rs_v2", 1)
        t16 = lammps_time("Standard_HB120rs_v2", 16)
        speedup = t1 / t16
        assert 20 < speedup < 30

    def test_fig5_efficiency_above_one(self):
        """Fig. 5: 'an efficiency greater than 1 ... super linear speed up'."""
        t1 = lammps_time("Standard_HB120rs_v2", 1)
        for nodes in (4, 8, 16):
            eff = t1 / lammps_time("Standard_HB120rs_v2", nodes) / nodes
            assert eff > 1.0
        eff16 = t1 / lammps_time("Standard_HB120rs_v2", 16) / 16
        assert 1.3 < eff16 < 1.9  # paper's axis tops out at 1.7

    def test_v3_not_strongly_superlinear(self):
        """Listing 4's gently-rising node-seconds mean v3 stays sublinear."""
        t1 = lammps_time("Standard_HB120rs_v3", 1)
        eff16 = t1 / lammps_time("Standard_HB120rs_v3", 16) / 16
        assert eff16 < 1.05


class TestOpenFoamListing3:
    """Paper Listing 3: v3 rows (3,59) (4,48) (16,34); v2 row (8,38)."""

    @pytest.mark.parametrize("nodes,paper_s", [(3, 59), (4, 48), (16, 34)])
    def test_hb120v3_times(self, nodes, paper_s):
        measured = openfoam_time("Standard_HB120rs_v3", nodes)
        assert measured == pytest.approx(paper_s, rel=0.12)

    def test_v2_8node_magnitude(self):
        measured = openfoam_time("Standard_HB120rs_v2", 8)
        assert measured == pytest.approx(38, rel=0.15)

    def test_sixteen_nodes_is_fastest_for_v3(self):
        times = {n: openfoam_time("Standard_HB120rs_v3", n)
                 for n in (3, 4, 8, 16)}
        assert times[16] == min(times.values())

    def test_poor_scaling_vs_lammps(self):
        """Paper shape: OpenFOAM 3->16 speedup ~1.7x; LAMMPS ~4.8x."""
        of = openfoam_time("Standard_HB120rs_v3", 3) / openfoam_time(
            "Standard_HB120rs_v3", 16
        )
        lj = lammps_time("Standard_HB120rs_v3", 3) / lammps_time(
            "Standard_HB120rs_v3", 16
        )
        assert of < 2.2
        assert lj > 4.0
        assert lj > 2 * of

    def test_hc44_loses_on_openfoam(self):
        assert openfoam_time("Standard_HC44rs", 16) > openfoam_time(
            "Standard_HB120rs_v3", 16
        )

    def test_cells_match_paper(self):
        """'40 16 16' => ~8 million cells."""
        model = get_model("openfoam")
        params = model.validate_inputs(OPENFOAM_INPUT)
        assert params["cells"] == pytest.approx(8e6, rel=0.05)


class TestAtomsMath:
    def test_boxfactor_30_gives_864m_atoms(self):
        """Paper: 'multiply the box dimensions by 30 to obtain 800 million
        atoms' (plot subtitle says 860M; exact math is 864M)."""
        model = get_model("lammps")
        params = model.validate_inputs(LAMMPS_INPUT)
        assert params["atoms"] == pytest.approx(864_000_000)
