"""Paper-constant cross-checks, failure injection, and network properties."""

import pytest

from repro.appkit.plugins import get_plugin
from repro.backends.base import ExecutionBackend, ScenarioRunResult
from repro.core.advisor import Advisor
from repro.core.collector import DataCollector
from repro.core.dataset import Dataset
from repro.core.scenarios import Scenario
from repro.core.taskdb import TaskDB
from repro.errors import BackendError
from repro import paperdata


class TestPaperConstants:
    def test_listing4_costs_self_consistent(self):
        """Every Listing-4 cost equals n x $3.60/h x t to the cent —
        that is how the implied price was derived."""
        price = paperdata.IMPLIED_PRICES["Standard_HB120rs_v3"]
        for time_s, cost, nnodes, _sku in paperdata.PAPER_LISTING4:
            assert nnodes * price * time_s / 3600.0 == pytest.approx(
                cost, abs=0.001
            )

    def test_listing3_costs_self_consistent(self):
        full_names = {"hb120rs_v2": "Standard_HB120rs_v2",
                      "hb120rs_v3": "Standard_HB120rs_v3"}
        for time_s, cost, nnodes, sku_short in paperdata.PAPER_LISTING3:
            price = paperdata.IMPLIED_PRICES[full_names[sku_short]]
            assert nnodes * price * time_s / 3600.0 == pytest.approx(
                cost, abs=0.001
            )

    def test_core_math(self):
        assert max(paperdata.PAPER_SKU_CORES.values()) * 16 == \
            paperdata.PAPER_MAX_CORES

    def test_atom_math(self):
        assert paperdata.LAMMPS_PAPER_ATOMS == 864_000_000

    def test_align_rows(self, lammps_paper_dataset):
        rows = Advisor(lammps_paper_dataset).advise(appname="lammps")
        aligned = paperdata.align_rows(paperdata.PAPER_LISTING4, rows)
        assert len(aligned) == 4
        for row in aligned:
            assert row.time_error < 0.10
            assert row.cost_error < 0.10

    def test_align_rows_count_mismatch(self):
        with pytest.raises(ValueError, match="row count"):
            paperdata.align_rows(paperdata.PAPER_LISTING4, [])


class CrashingBackend(ExecutionBackend):
    """A back-end that dies after N scenarios (control-plane outage)."""

    def __init__(self, crash_after: int):
        self.crash_after = crash_after
        self.ran = 0

    @property
    def name(self):
        return "crashing"

    def ensure_capacity(self, sku_name, nodes):
        pass

    def run_setup(self, sku_name, script):
        return True

    def run_scenario(self, scenario, script) -> ScenarioRunResult:
        if self.ran >= self.crash_after:
            raise BackendError("control plane unavailable")
        self.ran += 1
        return ScenarioRunResult(
            succeeded=True, exec_time_s=10.0, cost_usd=0.01,
            stdout="HPCADVISORVAR APPEXECTIME=10\n",
            app_vars={"APPEXECTIME": "10"},
            started_at=0.0, finished_at=10.0,
        )

    def release_capacity(self, sku_name, delete):
        pass

    def teardown(self):
        pass

    @property
    def provisioning_overhead_s(self):
        return 0.0

    @property
    def total_infrastructure_cost_usd(self):
        return 0.0


class TestBackendOutage:
    def scenarios(self, n):
        return [
            Scenario(scenario_id=f"t{i:03d}",
                     sku_name="Standard_HB120rs_v3", nnodes=1, ppn=120,
                     appname="lammps", appinputs={"BOXFACTOR": "4"})
            for i in range(n)
        ]

    def test_outage_propagates_but_progress_is_preserved(self):
        backend = CrashingBackend(crash_after=2)
        collector = DataCollector(
            backend=backend,
            script=get_plugin("lammps"),
            dataset=Dataset(),
            taskdb=TaskDB(),
        )
        with pytest.raises(BackendError, match="control plane"):
            collector.collect(self.scenarios(5))
        # The two completed scenarios survive in the task DB and dataset,
        # so a resumed collect does not repeat them.
        assert collector.taskdb.counts()["completed"] == 2
        assert len(collector.dataset) == 2

    def test_resume_after_outage(self):
        scenarios = self.scenarios(4)
        dataset, taskdb = Dataset(), TaskDB()
        flaky = CrashingBackend(crash_after=2)
        collector = DataCollector(backend=flaky,
                                  script=get_plugin("lammps"),
                                  dataset=dataset, taskdb=taskdb)
        with pytest.raises(BackendError):
            collector.collect(scenarios)
        # "Repair" the backend and resume the same sweep.
        healthy = CrashingBackend(crash_after=100)
        resumed = DataCollector(backend=healthy,
                                script=get_plugin("lammps"),
                                dataset=dataset, taskdb=taskdb)
        report = resumed.collect(scenarios)
        assert report.executed == 2  # only the remaining scenarios
        assert taskdb.counts()["completed"] == 4


class TestNetworkProperties:
    def test_allreduce_monotone_in_ranks(self):
        from repro.cluster.network import NetworkModel

        net = NetworkModel(latency_s=2e-6, bandwidth_Bps=25e9)
        values = [net.allreduce_time(1024.0, p) for p in (2, 8, 64, 1024)]
        assert values == sorted(values)

    def test_bcast_never_cheaper_than_ptp(self):
        from repro.cluster.network import NetworkModel

        net = NetworkModel(latency_s=2e-6, bandwidth_Bps=25e9)
        for size in (0, 1e3, 1e6):
            assert net.bcast_time(size, 16) >= net.ptp_time(size)

    def test_alltoall_dominates_bcast_at_scale(self):
        from repro.cluster.network import NetworkModel

        net = NetworkModel(latency_s=2e-6, bandwidth_Bps=25e9)
        assert net.alltoall_time(1e5, 64) > net.bcast_time(1e5, 64)
