"""Service router tests: the JSON API contract, no sockets involved.

The :class:`~repro.service.router.Router` is HTTP-agnostic, so the whole
wire contract — routes, payload shapes, status codes, error mapping —
is testable by calling ``handle()`` directly.  Socket-level behaviour is
covered by ``test_client_remote.py`` and ``test_service_e2e.py``.
"""

import json

import pytest

from repro.api import AdvisorSession
from repro.api.results import (
    AdviceResult,
    CompareResult,
    PlotResult,
    PredictResult,
    SessionInfo,
)
from repro.service.app import build_state
from repro.service.router import Router, ServiceState
from tests.conftest import make_config


@pytest.fixture
def state(tmp_path):
    service_state = build_state(str(tmp_path / "state"), workers=2)
    yield service_state
    service_state.close()


@pytest.fixture
def router(state):
    return Router(state)


def deploy(router, prefix="httprg", **overrides):
    config = make_config(rgprefix=prefix, **overrides)
    response = router.handle("POST", "/v1/deployments",
                             json.dumps({"config": config.to_dict()}))
    assert response.status == 201, response.payload
    return SessionInfo.from_dict(response.payload)


def collect_done(router, name):
    response = router.handle("POST", "/v1/jobs/collect",
                             json.dumps({"deployment": name}))
    assert response.status == 202, response.payload
    job_id = response.payload["id"]
    record = router.state.jobs.wait(job_id, timeout=30)
    assert record.state == "done", record.error
    return record


class TestHealthAndMetrics:
    def test_healthz(self, router):
        response = router.handle("GET", "/healthz")
        assert response.status == 200
        assert response.payload["status"] == "ok"
        assert response.payload["jobs"]["running"] == 0

    def test_metrics_counts_requests_with_latency(self, router):
        router.handle("GET", "/healthz")
        router.handle("GET", "/v1/deployments")
        response = router.handle("GET", "/metrics")
        assert response.status == 200
        assert response.content_type.startswith("text/plain")
        text = response.payload
        assert ('advisor_http_requests_total{method="GET",'
                'route="/healthz",status="200"} 1') in text
        assert "advisor_http_request_seconds_sum" in text
        assert "advisor_jobs_done 0" in text

    def test_metrics_normalizes_job_routes(self, router):
        router.handle("GET", "/v1/jobs/job-does-not-exist")
        response = router.handle("GET", "/metrics")
        assert 'route="/v1/jobs/<id>",status="404"' in response.payload
        assert "job-does-not-exist" not in response.payload


class TestErrorMapping:
    def test_unknown_route_is_404(self, router):
        assert router.handle("GET", "/nope").status == 404
        assert router.handle("GET", "/v1/nope").status == 404

    def test_wrong_method_is_405_with_allowed_list(self, router):
        response = router.handle("PUT", "/v1/deployments")
        assert response.status == 405
        assert response.payload["allowed"] == ["GET", "POST"]
        assert router.handle("GET", "/v1/plots").status == 405
        assert router.handle("DELETE", "/healthz").status == 405

    def test_bad_json_body_is_400(self, router):
        assert router.handle("POST", "/v1/deployments", "{oops").status == 400
        assert router.handle("POST", "/v1/deployments", None).status == 400
        assert router.handle("POST", "/v1/deployments",
                             json.dumps([1, 2])).status == 400

    def test_unknown_deployment_is_404(self, router):
        assert router.handle("GET", "/v1/deployments/ghost-000").status == 404
        assert router.handle("DELETE",
                             "/v1/deployments/ghost-000").status == 404

    def test_unknown_request_key_is_400(self, router):
        response = router.handle("POST", "/v1/advice",
                                 json.dumps({"bogus_key": 1}))
        assert response.status == 400
        assert "bogus_key" in response.payload["error"]

    def test_advise_without_data_is_422(self, router):
        info = deploy(router)
        response = router.handle("POST", "/v1/advice",
                                 json.dumps({"deployment": info.name}))
        assert response.status == 422
        assert "collect" in response.payload["error"]


class TestDeployments:
    def test_create_list_get_shutdown(self, router):
        info = deploy(router)
        assert info.scenario_count == 2

        listing = router.handle("GET", "/v1/deployments")
        names = [d["name"] for d in listing.payload["deployments"]]
        assert names == [info.name]

        got = router.handle("GET", f"/v1/deployments/{info.name}")
        assert SessionInfo.from_dict(got.payload).name == info.name

        gone = router.handle("DELETE", f"/v1/deployments/{info.name}")
        assert gone.status == 200
        assert gone.payload["status"] == "shutdown"
        assert router.handle(
            "GET", f"/v1/deployments/{info.name}").status == 404

    def test_create_requires_config_envelope(self, router):
        response = router.handle("POST", "/v1/deployments",
                                 json.dumps({"not_config": {}}))
        assert response.status == 400


class TestQueries:
    def test_advice_get_with_query_params(self, router):
        info = deploy(router)
        collect_done(router, info.name)
        response = router.handle(
            "GET",
            f"/v1/advice?deployment={info.name}&sort=cost&max_rows=1",
        )
        assert response.status == 200
        result = AdviceResult.from_dict(response.payload)
        assert result.sort_by == "cost"
        assert len(result.rows) == 1

    def test_advice_get_filters_and_nnodes(self, router):
        info = deploy(router)
        collect_done(router, info.name)
        response = router.handle(
            "GET",
            f"/v1/advice?deployment={info.name}"
            "&filter=BOXFACTOR%3D4&nnodes=1,2",
        )
        assert response.status == 200
        assert AdviceResult.from_dict(response.payload).rows

        # A filter matching nothing is an AdvisorError -> 422 on the wire.
        nothing = router.handle(
            "GET",
            f"/v1/advice?deployment={info.name}&filter=BOXFACTOR%3D99",
        )
        assert nothing.status == 422
        assert "no completed data points" in nothing.payload["error"]

    def test_predict_post(self, router):
        info = deploy(router, nnodes=[1, 2, 4])
        collect_done(router, info.name)
        response = router.handle(
            "POST", "/v1/predict",
            json.dumps({"deployment": info.name, "model": "ridge"}),
        )
        assert response.status == 200
        result = PredictResult.from_dict(response.payload)
        assert result.trained_on == 3
        assert result.rows

    def test_compare(self, router):
        info_a = deploy(router, prefix="cmparg")
        info_b = deploy(router, prefix="cmpbrg")
        collect_done(router, info_a.name)
        collect_done(router, info_b.name)
        response = router.handle(
            "GET", f"/v1/compare?a={info_a.name}&b={info_b.name}")
        assert response.status == 200
        result = CompareResult.from_dict(response.payload)
        assert result.matched == 2
        assert router.handle("GET", "/v1/compare?a=x").status == 400

    def test_plots(self, router, tmp_path):
        info = deploy(router)
        collect_done(router, info.name)
        response = router.handle(
            "POST", "/v1/plots", json.dumps({"deployment": info.name}))
        assert response.status == 200
        result = PlotResult.from_dict(response.payload)
        assert len(result.paths) == 5
        assert "pareto" in result.kinds


class TestJobRoutes:
    def test_collect_job_lifecycle_over_routes(self, router):
        info = deploy(router)
        submitted = router.handle(
            "POST", "/v1/jobs/collect",
            json.dumps({"deployment": info.name}))
        assert submitted.status == 202
        job_id = submitted.payload["id"]
        assert submitted.payload["state"] == "queued"

        router.state.jobs.wait(job_id, timeout=30)
        fetched = router.handle("GET", f"/v1/jobs/{job_id}")
        assert fetched.payload["state"] == "done"
        assert fetched.payload["result"]["completed"] == 2

        listing = router.handle("GET", "/v1/jobs")
        assert [j["id"] for j in listing.payload["jobs"]] == [job_id]
        filtered = router.handle(
            "GET", f"/v1/jobs?deployment={info.name}&state=done")
        assert len(filtered.payload["jobs"]) == 1
        empty = router.handle("GET", "/v1/jobs?state=failed")
        assert empty.payload["jobs"] == []

    def test_cancel_route_conflicts_on_finished_job(self, router):
        info = deploy(router)
        record = collect_done(router, info.name)
        response = router.handle("POST", f"/v1/jobs/{record.id}/cancel")
        assert response.status == 409

    def test_jobs_unavailable_without_manager(self, tmp_path):
        session = AdvisorSession(state_dir=str(tmp_path / "state"))
        router = Router(ServiceState(session=session, jobs=None))
        response = router.handle("POST", "/v1/jobs/collect",
                                 json.dumps({"deployment": "x"}))
        assert response.status == 503
        # Health still answers, just without job counts.
        health = router.handle("GET", "/healthz")
        assert health.status == 200
        assert "jobs" not in health.payload


class TestShutdownGuards:
    def test_shutdown_refused_while_jobs_active(self, router):
        """DELETE on a deployment with live jobs is a 409, not a freeze."""
        import os
        import threading

        from repro.service.jobs import JobManager
        from repro.service.router import Router, ServiceState

        gate = threading.Event()
        started = threading.Event()

        class BlockedSession:
            def collect(self, request, progress=None):
                started.set()
                gate.wait(timeout=30)
                from repro.api.results import CollectResult

                return CollectResult(deployment=request.deployment)

        info = deploy(router, prefix="guardrg")
        state = ServiceState(
            session=router.state.session,
            jobs=JobManager(
                jobs_dir=os.path.join(
                    router.state.session.store.root, "jobs-g"),
                session_factory=BlockedSession, workers=1),
        )
        guarded = Router(state)
        try:
            submitted = guarded.handle(
                "POST", "/v1/jobs/collect",
                json.dumps({"deployment": info.name}))
            assert submitted.status == 202
            assert started.wait(timeout=10)
            refused = guarded.handle(
                "DELETE", f"/v1/deployments/{info.name}")
            assert refused.status == 409
            assert submitted.payload["id"] in refused.payload["error"]
            gate.set()
            state.jobs.wait(submitted.payload["id"], timeout=10)
            allowed = guarded.handle(
                "DELETE", f"/v1/deployments/{info.name}")
            assert allowed.status == 200
        finally:
            gate.set()
            state.close()


class TestBindFailure:
    def test_bind_failure_starts_no_workers(self, tmp_path):
        """A port conflict must fail before the job manager starts (no
        leaked worker threads, no recovered job falsely marked running)."""
        import socket
        import threading

        from repro.service.app import make_server
        from repro.service.jobs import JobRecord

        jobs_dir = tmp_path / "state" / "jobs"
        jobs_dir.mkdir(parents=True)
        pending = JobRecord(id="job-q", kind="collect", deployment="d-000",
                            state="queued",
                            request={"deployment": "d-000"}, created_at=1.0)
        (jobs_dir / "job-q.json").write_text(pending.to_json())

        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        port = blocker.getsockname()[1]
        before = threading.active_count()
        try:
            with pytest.raises(OSError):
                make_server(str(tmp_path / "state"), port=port)
        finally:
            blocker.close()
        assert threading.active_count() == before  # no leaked workers
        assert json.loads(
            (jobs_dir / "job-q.json").read_text())["state"] == "queued"


class TestSpotWire:
    """Wire coverage for the spot-capacity parameters (ISSUE 4)."""

    def test_collect_job_carries_spot_parameters(self, router):
        info = deploy(router, prefix="spotrg")
        body = {
            "deployment": info.name,
            "capacity": "spot",
            "recovery": "checkpoint_restart",
            "checkpoint_interval_s": 5.0,
            "checkpoint_overhead_s": 1.0,
            "eviction_rate": 120.0,
            "eviction_seed": 9,
        }
        response = router.handle("POST", "/v1/jobs/collect",
                                 json.dumps(body))
        assert response.status == 202
        assert response.payload["request"]["capacity"] == "spot"
        assert response.payload["request"]["eviction_seed"] == 9
        record = router.state.jobs.wait(response.payload["id"], timeout=30)
        assert record.state == "done", record.error
        from repro.api.results import CollectResult

        result = CollectResult.from_dict(record.result)
        assert result.capacity == "spot"
        assert result.recovery == "checkpoint_restart"
        assert result.preemptions >= 0
        assert record.progress.get("preemptions") == result.preemptions

    def test_collect_job_rejects_bad_spot_parameters(self, router):
        info = deploy(router, prefix="spotbadrg")
        response = router.handle("POST", "/v1/jobs/collect", json.dumps({
            "deployment": info.name, "capacity": "flex",
        }))
        assert response.status == 400
        assert "capacity" in response.payload["error"]

    def test_advice_get_spot_query_params(self, router):
        info = deploy(router, prefix="spotadvrg")
        collect_done(router, info.name)
        response = router.handle(
            "GET",
            f"/v1/advice?deployment={info.name}&capacity=spot"
            "&recovery=restart&eviction_rate=40"
            "&checkpoint_interval=90&checkpoint_overhead=9",
        )
        assert response.status == 200
        result = AdviceResult.from_dict(response.payload)
        assert result.capacity == "spot"
        assert result.rows
        for row in result.rows:
            assert row.capacity == "spot"
            assert row.makespan_s >= row.exec_time_s
            assert row.p95_makespan_s > 0

    def test_advice_post_spot_body(self, router):
        info = deploy(router, prefix="spotpostrg")
        collect_done(router, info.name)
        response = router.handle("POST", "/v1/advice", json.dumps({
            "deployment": info.name, "capacity": "ondemand",
        }))
        assert response.status == 200
        result = AdviceResult.from_dict(response.payload)
        assert result.capacity == "ondemand"

    def test_advice_get_rejects_bad_eviction_rate(self, router):
        info = deploy(router, prefix="spotnanrg")
        response = router.handle(
            "GET",
            f"/v1/advice?deployment={info.name}&capacity=spot"
            "&eviction_rate=banana",
        )
        assert response.status == 400
        assert "number" in response.payload["error"]
