"""Back-end adapter tests, including Azure-Batch/Slurm parity."""

import pytest

from repro.appkit.plugins import get_plugin
from repro.backends.azurebatch import AzureBatchBackend, pool_id_for
from repro.backends.slurm import SlurmBackend, partition_for
from repro.batch.service import BatchService
from repro.cloud.provider import CloudProvider
from repro.core.scenarios import Scenario
from repro.slurmsim.cluster import SlurmCluster


def make_batch_backend():
    provider = CloudProvider()
    sub = provider.register_subscription("test")
    service = BatchService(account_name="b", provider=provider,
                           subscription=sub, region="southcentralus")
    return AzureBatchBackend(service=service)


def make_slurm_backend():
    provider = CloudProvider()
    sub = provider.register_subscription("test")
    cluster = SlurmCluster(provider=provider, subscription=sub,
                           region="southcentralus")
    return SlurmBackend(cluster=cluster)


def scenario(nnodes=2, sku="Standard_HB120rs_v3", bf="10", sid="t00001"):
    return Scenario(
        scenario_id=sid, sku_name=sku, nnodes=nnodes, ppn=120,
        appname="lammps", appinputs={"BOXFACTOR": bf},
    )


class TestNaming:
    def test_pool_id(self):
        assert pool_id_for("Standard_HB120rs_v3") == "pool-hb120rs_v3"

    def test_partition(self):
        assert partition_for("Standard_HB120rs_v3") == "part-hb120rs_v3"


@pytest.mark.parametrize("factory", [make_batch_backend, make_slurm_backend],
                         ids=["azurebatch", "slurm"])
class TestBackendContract:
    def test_setup_then_scenario(self, factory):
        backend = factory()
        plugin = get_plugin("lammps")
        assert backend.run_setup("Standard_HB120rs_v3", plugin)
        result = backend.run_scenario(scenario(), plugin)
        assert result.succeeded
        assert result.exec_time_s > 0
        assert result.cost_usd > 0
        assert result.app_vars["LAMMPSSTEPS"] == "100"

    def test_setup_runs_once_per_vmtype(self, factory):
        backend = factory()
        plugin = get_plugin("lammps")
        assert backend.run_setup("Standard_HB120rs_v3", plugin)
        # Second call must be a cheap no-op returning cached success.
        before = backend.provisioning_overhead_s
        assert backend.run_setup("Standard_HB120rs_v3", plugin)
        assert backend.provisioning_overhead_s == before

    def test_failure_reported_not_raised(self, factory):
        backend = factory()
        plugin = get_plugin("lammps")
        backend.run_setup("Standard_HB120rs_v3", plugin)
        result = backend.run_scenario(
            scenario(nnodes=1, bf="60"), plugin  # OOM on one node
        )
        assert not result.succeeded
        assert "out of memory" in result.failure_reason

    def test_cost_formula(self, factory):
        backend = factory()
        plugin = get_plugin("lammps")
        backend.run_setup("Standard_HB120rs_v3", plugin)
        result = backend.run_scenario(scenario(nnodes=2), plugin)
        expected = 2 * 3.60 * result.exec_time_s / 3600.0
        assert result.cost_usd == pytest.approx(expected)

    def test_infrastructure_cost_accrues(self, factory):
        backend = factory()
        plugin = get_plugin("lammps")
        backend.run_setup("Standard_HB120rs_v3", plugin)
        backend.run_scenario(scenario(), plugin)
        assert backend.total_infrastructure_cost_usd > 0

    def test_release_capacity(self, factory):
        backend = factory()
        plugin = get_plugin("lammps")
        backend.run_setup("Standard_HB120rs_v3", plugin)
        backend.run_scenario(scenario(), plugin)
        backend.release_capacity("Standard_HB120rs_v3", delete=False)
        backend.teardown()  # must not raise


class TestBackendParity:
    """Both back-ends must measure the same physics."""

    def test_exec_times_identical(self):
        plugin = get_plugin("lammps")
        results = {}
        for name, factory in [("batch", make_batch_backend),
                              ("slurm", make_slurm_backend)]:
            backend = factory()
            backend.run_setup("Standard_HB120rs_v3", plugin)
            results[name] = backend.run_scenario(scenario(), plugin)
        assert results["batch"].exec_time_s == pytest.approx(
            results["slurm"].exec_time_s
        )
        assert results["batch"].cost_usd == pytest.approx(
            results["slurm"].cost_usd
        )
        assert results["batch"].app_vars == results["slurm"].app_vars


class TestAzureBatchSpecifics:
    def test_pool_reused_across_scenarios(self):
        backend = make_batch_backend()
        plugin = get_plugin("lammps")
        backend.run_setup("Standard_HB120rs_v3", plugin)
        backend.run_scenario(scenario(nnodes=1, sid="t1"), plugin)
        backend.run_scenario(scenario(nnodes=2, sid="t2"), plugin)
        pools = backend.service.list_pools()
        assert len(pools) == 1
        assert pools[0].current_nodes == 2  # grew, never recreated

    def test_delete_semantics(self):
        backend = make_batch_backend()
        plugin = get_plugin("lammps")
        backend.run_setup("Standard_HB120rs_v3", plugin)
        backend.release_capacity("Standard_HB120rs_v3", delete=True)
        assert not backend.service.list_pools()
