"""Property-based tests over configuration, scenarios, and stores."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.appkit.metricvars import extract_vars, format_var
from repro.core.config import MainConfig
from repro.core.dataset import DataPoint, Dataset
from repro.core.scenarios import generate_scenarios, iter_input_combinations
from repro.core.taskdb import TaskDB
from repro.cloud.pricing import PriceCatalog

SKUS = ["Standard_HC44rs", "Standard_HB120rs_v2", "Standard_HB120rs_v3",
        "Standard_F72s_v2"]

identifier = st.text(alphabet=string.ascii_uppercase + "_",
                     min_size=1, max_size=12).filter(
    lambda s: not s[0].isdigit()
)
value_text = st.text(
    alphabet=string.ascii_letters + string.digits + " ._-", max_size=20
).map(str.strip)


@given(
    skus=st.lists(st.sampled_from(SKUS), min_size=1, max_size=4, unique=True),
    nnodes=st.lists(st.integers(min_value=1, max_value=64), min_size=1,
                    max_size=6, unique=True),
    input_values=st.lists(st.integers(min_value=1, max_value=99), min_size=1,
                          max_size=4, unique=True),
    ppr=st.integers(min_value=1, max_value=100),
)
@settings(max_examples=60)
def test_scenario_count_always_matches_product(skus, nnodes, input_values,
                                               ppr):
    """|scenarios| == |skus| x |nnodes| x |inputs| for every config."""
    config = MainConfig.from_dict({
        "subscription": "s", "skus": skus, "rgprefix": "rg",
        "appsetupurl": "", "nnodes": nnodes, "appname": "lammps",
        "region": "southcentralus", "ppr": ppr,
        "appinputs": {"BOXFACTOR": [str(v) for v in input_values]},
    })
    scenarios = generate_scenarios(config)
    assert len(scenarios) == len(skus) * len(nnodes) * len(input_values)
    assert len({s.scenario_id for s in scenarios}) == len(scenarios)
    # Every ppn respects the SKU's core count and the ppr floor of 1.
    for s in scenarios:
        assert 1 <= s.ppn


@given(st.dictionaries(
    st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6),
    st.lists(value_text, min_size=1, max_size=3, unique=True),
    max_size=3,
))
def test_input_combinations_cardinality(appinputs):
    combos = list(iter_input_combinations(appinputs))
    expected = 1
    for values in appinputs.values():
        expected *= len(values)
    assert len(combos) == expected
    # All combinations distinct.
    assert len({tuple(sorted(c.items())) for c in combos}) == len(combos)


@given(st.dictionaries(identifier, value_text, max_size=6))
def test_metricvars_roundtrip(variables):
    stdout = "\n".join(
        format_var(name, value) for name, value in variables.items()
    )
    extracted = extract_vars(stdout)
    expected = {name: str(value).strip() for name, value in variables.items()}
    assert extracted == expected


@given(
    nodes=st.integers(min_value=1, max_value=512),
    seconds=st.floats(min_value=0, max_value=1e5, allow_nan=False),
)
def test_task_cost_nonnegative_and_linear(nodes, seconds):
    import math

    catalog = PriceCatalog()
    cost = catalog.task_cost("Standard_HB120rs_v3", nodes, seconds)
    assert cost >= 0
    double = catalog.task_cost("Standard_HB120rs_v3", nodes, 2 * seconds)
    assert math.isclose(double, cost * 2, rel_tol=1e-12, abs_tol=1e-300)


@given(
    sku=st.sampled_from(SKUS),
    nnodes=st.integers(min_value=1, max_value=64),
    t=st.floats(min_value=0.001, max_value=1e5, allow_nan=False),
    cost=st.floats(min_value=0, max_value=1e4, allow_nan=False),
    appname=st.sampled_from(["lammps", "openfoam", "wrf"]),
    inputs=st.dictionaries(
        st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=5),
        value_text, max_size=3,
    ),
)
@settings(max_examples=60)
def test_datapoint_dict_roundtrip(sku, nnodes, t, cost, appname, inputs):
    point = DataPoint(appname=appname, sku=sku, nnodes=nnodes, ppn=4,
                      exec_time_s=t, cost_usd=cost, appinputs=inputs)
    assert DataPoint.from_dict(point.to_dict()) == point


@given(rows=st.lists(
    st.tuples(
        st.sampled_from(SKUS),
        st.integers(min_value=1, max_value=32),
        st.floats(min_value=0.01, max_value=1e4, allow_nan=False),
        st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
    ),
    max_size=25,
))
@settings(max_examples=40)
def test_dataset_jsonl_roundtrip(rows, tmp_path_factory):
    path = str(tmp_path_factory.mktemp("ds") / "d.jsonl")
    data = Dataset([
        DataPoint(appname="lammps", sku=sku, nnodes=n, ppn=2,
                  exec_time_s=t, cost_usd=c)
        for sku, n, t, c in rows
    ])
    data.save(path)
    assert Dataset.load(path).points() == data.points()


@given(node_counts=st.lists(st.integers(min_value=1, max_value=500),
                            min_size=1, max_size=20, unique=True))
@settings(max_examples=40)
def test_taskdb_json_roundtrip(node_counts, tmp_path_factory):
    from repro.core.scenarios import Scenario

    path = str(tmp_path_factory.mktemp("db") / "t.json")
    db = TaskDB(path=path)
    db.add_scenarios([
        Scenario(scenario_id=f"t{i}", sku_name="Standard_HC44rs",
                 nnodes=n, ppn=44, appname="lammps")
        for i, n in enumerate(node_counts)
    ])
    db.mark_completed("t0", exec_time_s=1.0, cost_usd=0.1)
    db.save()
    restored = TaskDB.load(path)
    assert restored.counts() == db.counts()
    assert len(restored) == len(db)
