"""Trace context propagation, end to end.

A ``RemoteSession(trace_dir=...)`` collect against a live server must
leave ONE trace in the deployment's ``traces-<name>.jsonl`` that spans
the client (``client.collect``), the service router (``http.request``),
the job worker (``job.run``), and the sweep itself (``collect.sweep``
with its ``stage.*`` children) — linked by the W3C ``traceparent``
header over HTTP and by the job record across worker handoff.  The
fleet variant proves the linkage survives a real process boundary:
the worker's spans carry a different pid than the client's.
"""

import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro import telemetry
from repro.client import RemoteSession
from repro.service.app import make_server
from tests.conftest import make_config

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_DIR = os.path.join(REPO_ROOT, "src")

#: The spans one traced collect must link under a single trace id.
EXPECTED_SPANS = ("client.collect", "http.request", "job.run",
                  "collect.sweep")


def _trace_with(events, span_name):
    """The (trace_id, events) group that contains ``span_name``."""
    for trace_id, group in telemetry.group_traces(events).items():
        if any(e.get("name") == span_name for e in group):
            return trace_id, group
    return None, []


def _await_linked_trace(trace_file, timeout=60.0):
    """Poll the ring until one trace holds every expected span.

    Spans are emitted on *exit*, so ``job.run`` can land an instant
    after the client observes the job as done.
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        events = telemetry.read_events(trace_file)
        trace_id, group = _trace_with(events, "client.collect")
        names = {e.get("name") for e in group}
        if set(EXPECTED_SPANS) <= names:
            return trace_id, group
        time.sleep(0.05)
    raise AssertionError(
        f"no single trace linked {EXPECTED_SPANS}; "
        f"saw traces: { {tid: sorted({e.get('name') for e in g}) for tid, g in telemetry.group_traces(telemetry.read_events(trace_file)).items()} }"
    )


def _span(group, name):
    matches = [e for e in group if e.get("name") == name]
    assert matches, f"span {name!r} missing from trace"
    return matches[0]


class LiveServer:
    def __init__(self, state_dir):
        self.state_dir = state_dir
        self.server = make_server(state_dir, port=0, workers=2)
        self.thread = threading.Thread(target=self.server.serve_forever,
                                       daemon=True)
        self.thread.start()

    @property
    def url(self):
        return f"http://127.0.0.1:{self.server.server_address[1]}"

    def stop(self):
        self.server.shutdown()
        self.server.server_close()
        self.server.state.close()
        self.thread.join(timeout=10)


@pytest.fixture
def live(tmp_path):
    server = LiveServer(str(tmp_path / "state"))
    yield server
    server.stop()


def test_collect_yields_one_linked_trace(live):
    remote = RemoteSession(live.url, timeout=15, trace_dir=live.state_dir)
    info = remote.deploy(make_config(rgprefix="tracerg").to_dict())
    job = remote.collect(deployment=info.name)
    record = job.wait(timeout=120)
    assert record.state == "done", record.error

    trace_file = telemetry.trace_path(live.state_dir, info.name)
    assert os.path.exists(trace_file)
    trace_id, group = _await_linked_trace(trace_file)

    # Every span in the group carries the same trace id...
    assert {e["trace"] for e in group} == {trace_id}

    # ...and the parent links walk client -> router -> worker -> sweep.
    client = _span(group, "client.collect")
    request = _span(group, "http.request")
    job_run = _span(group, "job.run")
    sweep = _span(group, "collect.sweep")
    assert client["parent"] == ""                      # the root
    assert request["parent"] == client["span"]         # via traceparent
    assert job_run["parent"] == request["span"]        # via the job record
    assert sweep["parent"] == job_run["span"]

    # The sweep carries its profile as stage.* children.
    stage_names = {e["name"] for e in group
                   if e.get("parent") == sweep["span"]}
    assert any(name.startswith("stage.") for name in stage_names)

    # Span attributes identify the work.
    assert client["attrs"]["deployment"] == info.name
    assert request["attrs"]["method"] == "POST"
    assert job_run["attrs"]["job_id"] == job.id
    assert sweep["attrs"]["deployment"] == info.name
    assert sweep["attrs"]["executed"] == 2


def test_untraced_client_still_gets_server_side_trace(live):
    """Without ``trace_dir`` the client opens no span and sends no
    header — the server roots the trace itself, nothing dangles."""
    remote = RemoteSession(live.url, timeout=15)
    info = remote.deploy(make_config(rgprefix="notracerg").to_dict())
    job = remote.collect(deployment=info.name)
    assert job.wait(timeout=120).state == "done"

    deadline = time.monotonic() + 30
    trace_file = telemetry.trace_path(live.state_dir, info.name)
    while time.monotonic() < deadline:
        events = telemetry.read_events(trace_file)
        trace_id, group = _trace_with(events, "collect.sweep")
        if trace_id and any(e.get("name") == "http.request"
                            and e.get("parent") == ""
                            for e in group):
            break
        time.sleep(0.05)
    names = {e.get("name") for e in group}
    assert "client.collect" not in names
    assert {"http.request", "job.run", "collect.sweep"} <= names


def test_trace_cli_renders_span_tree(live, capsys):
    from repro.cli import commands

    remote = RemoteSession(live.url, timeout=15, trace_dir=live.state_dir)
    info = remote.deploy(make_config(rgprefix="clitracerg").to_dict())
    assert remote.collect(deployment=info.name).wait(timeout=120).state \
        == "done"
    _await_linked_trace(telemetry.trace_path(live.state_dir, info.name))

    assert commands.trace(live.state_dir, info.name) == 0
    out = capsys.readouterr().out
    assert "client.collect" in out
    assert "collect.sweep" in out
    assert "└─" in out or "├─" in out
    assert "ms" in out

    assert commands.trace(live.state_dir, info.name, as_json=True) == 0
    import json
    payload = json.loads(capsys.readouterr().out)
    assert payload["deployment"] == info.name
    assert any(e["name"] == "collect.sweep" for e in payload["events"])

    assert commands.trace(live.state_dir, "no-such-deployment") == 1
    assert "no traces recorded" in capsys.readouterr().out


def test_metrics_families_populated_after_collect(live):
    remote = RemoteSession(live.url, timeout=15)
    info = remote.deploy(make_config(rgprefix="metricsrg").to_dict())
    assert remote.collect(deployment=info.name).wait(timeout=120).state \
        == "done"
    text = remote.metrics_text()
    for family in (
        "advisor_http_requests_total",
        "advisor_http_request_seconds_bucket",
        "advisor_http_request_seconds_max",
        "advisor_store_op_seconds_bucket",
        "advisor_jobs_transitions_total",
        "advisor_engine_selected_total",
        "advisor_fleet_queue_depth",
        "advisor_fleet_claims_total",
    ):
        assert family in text, f"{family} missing from /metrics"
    assert ('advisor_store_op_seconds_bucket'
            '{kind="sqlite",op="append",le="+Inf"}') in text
    assert 'advisor_jobs_transitions_total{kind="collect",state="done"}' \
        in text


class FleetProcess:
    """``fleet serve`` as a subprocess (real worker process boundary)."""

    def __init__(self, state_dir):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli.main",
             "--state-dir", state_dir,
             "fleet", "serve", "--port", "0", "--workers", "2"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env, cwd=REPO_ROOT,
        )
        self.lines = []
        self.url = self._await_ready()
        threading.Thread(target=self._pump, daemon=True).start()

    def _await_ready(self):
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                break
            self.lines.append(line.rstrip())
            if line.startswith("FLEET READY"):
                fields = dict(part.split("=", 1)
                              for part in line.split()[2:])
                return f"http://127.0.0.1:{fields['port']}"
        raise AssertionError(
            "fleet never became ready:\n" + "\n".join(self.lines))

    def _pump(self):
        for line in self.proc.stdout:
            self.lines.append(line.rstrip())

    def stop(self):
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
            try:
                self.proc.wait(timeout=15)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(timeout=15)


def test_trace_links_across_fleet_worker_processes(tmp_path):
    state_dir = str(tmp_path / "state")
    fleet = FleetProcess(state_dir)
    try:
        remote = RemoteSession(fleet.url, timeout=30, retries=5,
                               backoff_s=0.1, trace_dir=state_dir)
        info = remote.deploy(make_config(rgprefix="fleettracerg").to_dict())
        job = remote.collect(deployment=info.name)
        record = job.wait(timeout=120)
        assert record.state == "done", record.error

        trace_file = telemetry.trace_path(state_dir, info.name)
        trace_id, group = _await_linked_trace(trace_file)
        assert {e["trace"] for e in group} == {trace_id}

        # The linkage crossed a real process boundary: the client span
        # and the worker's job.run span come from different pids.
        client = _span(group, "client.collect")
        job_run = _span(group, "job.run")
        sweep = _span(group, "collect.sweep")
        assert client["pid"] == os.getpid()
        assert job_run["pid"] != client["pid"]
        assert sweep["pid"] == job_run["pid"]
        assert _span(group, "http.request")["parent"] == client["span"]
        assert sweep["parent"] == job_run["span"]

        # The job record carried the worker's identity alongside.
        assert record.worker_id
        assert str(job_run["pid"]) in record.worker_id
    finally:
        fleet.stop()
