"""Edge-case tests for paths not covered elsewhere."""

import threading
import urllib.request

import pytest

from repro.backends.common import execute_run, execute_setup, shared_dir_for
from repro.batch.task import TaskOutput
from repro.appkit.script import AppScript
from repro.cli import commands
from repro.cloud.skus import get_sku
from repro.cluster.filesystem import SharedFilesystem
from repro.cluster.host import make_hosts
from repro.core.scenarios import Scenario
from repro.errors import QuotaExceeded, ReproError
from repro.perf.model import RunShape
from repro.perf.registry import get_model


class TestRunShape:
    def test_valid(self):
        shape = RunShape(sku=get_sku("Standard_HC44rs"), nodes=4, ppn=44)
        assert shape.total_ranks == 176

    def test_invalid_nodes(self):
        with pytest.raises(ValueError):
            RunShape(sku=get_sku("Standard_HC44rs"), nodes=0, ppn=1)

    def test_invalid_ppn(self):
        with pytest.raises(ValueError):
            RunShape(sku=get_sku("Standard_HC44rs"), nodes=1, ppn=45)


class TestExplicitNetwork:
    def test_slower_network_slows_multinode_runs(self):
        from repro.cluster.network import NetworkModel

        model = get_model("openfoam")
        sku = get_sku("Standard_HB120rs_v3")
        fast = model.simulate(sku, 8, 120, {"mesh": "40 16 16"})
        slow_net = NetworkModel(latency_s=50e-6, bandwidth_Bps=1e9,
                                rdma=False)
        slow = model.simulate(sku, 8, 120, {"mesh": "40 16 16"},
                              network=slow_net)
        assert slow.exec_time_s > fast.exec_time_s


class TestTaskOutput:
    def test_negative_wall_time_rejected(self):
        with pytest.raises(ValueError):
            TaskOutput(exit_code=0, stdout="", wall_time_s=-1.0)

    def test_succeeded(self):
        assert TaskOutput(exit_code=0, stdout="", wall_time_s=0).succeeded
        assert not TaskOutput(exit_code=2, stdout="", wall_time_s=0).succeeded


class TestQuotaError:
    def test_message_carries_numbers(self):
        err = QuotaExceeded("standardHBrsv3Family", 4800, 4000)
        assert "4800" in str(err)
        assert "4000" in str(err)
        assert err.family == "standardHBrsv3Family"


class TestBackendCommon:
    def scenario(self):
        return Scenario(scenario_id="t", sku_name="Standard_HB120rs_v3",
                        nnodes=1, ppn=120, appname="lammps",
                        appinputs={"BOXFACTOR": "4"})

    def test_shared_dir_layout(self):
        assert shared_dir_for("lammps") == "/mnt/nfs/apps/lammps"

    def test_setup_error_becomes_exit_one(self):
        from repro.errors import AppScriptError

        def bad_setup(ctx):
            raise AppScriptError("cannot download input")

        script = AppScript(appname="lammps", setup=bad_setup,
                           run=lambda ctx: 0, setup_seconds=1.0)
        hosts = make_hosts(get_sku("Standard_HB120rs_v3"), 1)
        execution = execute_setup(script, hosts, SharedFilesystem(), "/w")
        assert execution.exit_code == 1
        assert "cannot download input" in execution.stdout

    def test_run_error_becomes_exit_one(self):
        from repro.errors import AppScriptError

        def bad_run(ctx):
            raise AppScriptError("missing env")

        script = AppScript(appname="lammps", setup=lambda ctx: 0,
                           run=bad_run)
        hosts = make_hosts(get_sku("Standard_HB120rs_v3"), 1)
        execution = execute_run(script, self.scenario(), hosts,
                                SharedFilesystem(), "/w")
        assert execution.exit_code == 1

    def test_run_writes_hostfile(self):
        def check_hostfile(ctx):
            path = ctx.getenv("HOSTFILE_PATH")
            assert "slots=120" in ctx.filesystem.read_text(path)
            return 0

        script = AppScript(appname="lammps", setup=lambda ctx: 0,
                           run=check_hostfile)
        hosts = make_hosts(get_sku("Standard_HB120rs_v3"), 1)
        execution = execute_run(script, self.scenario(), hosts,
                                SharedFilesystem(), "/w")
        assert execution.exit_code == 0


class TestCliGuiOnce:
    def test_gui_once_serves_a_request(self, tmp_path, capsys, monkeypatch):
        """`hpcadvisor-sim gui` end to end, one request then exit."""
        from repro.gui import server as gui_server

        captured = {}
        original = gui_server.make_server

        def patched(store, host, port):
            httpd = original(store, host, 0)  # ephemeral port
            captured["port"] = httpd.server_address[1]

            def hit():
                urllib.request.urlopen(
                    f"http://127.0.0.1:{captured['port']}/", timeout=5
                ).read()

            threading.Thread(target=hit, daemon=True).start()
            return httpd

        monkeypatch.setattr(gui_server, "make_server", patched)
        assert commands.gui(str(tmp_path), once=True) == 0
        assert "HPCAdvisor GUI" in capsys.readouterr().out


class TestCliErrorPaths:
    def test_collect_unknown_deployment(self, tmp_path):
        with pytest.raises(ReproError):
            commands.collect(str(tmp_path), "ghost")

    def test_plot_before_collect(self, tmp_path):
        with pytest.raises(ReproError, match="run collect first"):
            commands.plot(str(tmp_path / "s"), "ghost")
