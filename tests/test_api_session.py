"""repro.api.AdvisorSession: the facade's full lifecycle.

Covers the acceptance path of the API redesign: deploy -> collect ->
advise -> plot -> recipe -> shutdown through one object, the one-shot
``run``, resume-from-state across session instances, and ephemeral
(no-disk) sessions.
"""

import json
import os

import pytest

from repro.api import (
    AdviseRequest,
    AdvisorSession,
    CollectRequest,
    AdviceResult,
    CollectResult,
    SessionInfo,
)
from repro.errors import ConfigError, ReproError, ResourceNotFound
from tests.conftest import make_config


@pytest.fixture
def state_dir(tmp_path):
    return str(tmp_path / "state")


class TestDeploy:
    def test_deploy_returns_session_info(self):
        session = AdvisorSession()
        info = session.deploy(make_config())
        assert isinstance(info, SessionInfo)
        assert info.name.startswith("testrg")
        assert info.region == "southcentralus"
        assert info.appname == "lammps"
        assert info.scenario_count == 2
        assert info.batch_account == f"{info.name}-batch"
        assert not info.has_data

    def test_deploy_accepts_dict_and_yaml_path(self, tmp_path):
        session = AdvisorSession()
        info = session.deploy(make_config().to_dict())
        assert info.scenario_count == 2
        path = tmp_path / "config.yaml"
        path.write_text(make_config(rgprefix="yamlrg").to_yaml())
        info2 = session.deploy(str(path))
        assert info2.name.startswith("yamlrg")

    def test_deploy_rejects_other_types(self):
        with pytest.raises(ConfigError, match="cannot build"):
            AdvisorSession().deploy(42)

    def test_list_deployments_sorted(self):
        session = AdvisorSession()
        names = [session.deploy(make_config(rgprefix=p)).name
                 for p in ("bbb", "aaa")]
        assert [i.name for i in session.list_deployments()] == sorted(names)


class TestCollectAdvise:
    def test_collect_then_advise(self):
        session = AdvisorSession()
        info = session.deploy(make_config())
        result = session.collect(deployment=info.name)
        assert isinstance(result, CollectResult)
        assert result.executed == 2
        assert result.completed == 2
        assert result.ok
        assert result.dataset_points == 2
        assert result.backend == "azurebatch"

        advice = session.advise(deployment=info.name, appname="lammps")
        assert isinstance(advice, AdviceResult)
        assert advice.rows
        assert advice.best is advice.rows[0]
        assert "Exectime(s)" in advice.render_table()

    def test_collect_accepts_request_object(self):
        session = AdvisorSession()
        info = session.deploy(make_config())
        result = session.collect(CollectRequest(deployment=info.name))
        assert result.completed == 2

    def test_request_and_kwargs_are_exclusive(self):
        session = AdvisorSession()
        with pytest.raises(ConfigError, match="not both"):
            session.collect(CollectRequest(deployment="x"), deployment="y")

    def test_missing_deployment_name_is_config_error(self):
        with pytest.raises(ConfigError, match="deployment name"):
            AdvisorSession().collect()

    def test_advise_before_collect_is_error(self):
        session = AdvisorSession()
        info = session.deploy(make_config())
        with pytest.raises(ReproError, match="run collect first"):
            session.advise(deployment=info.name)

    def test_advise_filters_by_nnodes(self):
        session = AdvisorSession()
        info = session.deploy(make_config(nnodes=[1, 2, 4]))
        session.collect(deployment=info.name)
        advice = session.advise(deployment=info.name, nnodes=(1, 2))
        assert {r.nnodes for r in advice.rows} <= {1, 2}

    def test_collect_on_slurm_backend(self):
        session = AdvisorSession()
        info = session.deploy(make_config())
        result = session.collect(deployment=info.name, backend="slurm")
        assert result.backend == "slurm"
        assert result.completed == 2
        assert session.backend(info.name, "slurm").cluster is not None

    def test_smart_sampling_populates_decisions(self):
        session = AdvisorSession()
        info = session.deploy(make_config(
            nnodes=[1, 2, 3, 4, 6, 8, 12, 16]
        ))
        result = session.collect(deployment=info.name, smart_sampling=True)
        assert result.sampler_decisions
        assert result.total_tasks == 8

    def test_budget_fields_populated(self):
        session = AdvisorSession()
        info = session.deploy(make_config(
            nnodes=[1, 2, 3, 4, 6, 8, 12, 16]
        ))
        result = session.collect(deployment=info.name, budget_usd=50.0)
        assert result.budget_spent_usd is not None
        assert result.budget_spent_usd <= 50.0


class TestPlotRecipePredict:
    def test_plot_requires_output_dir_when_ephemeral(self):
        session = AdvisorSession()
        info = session.deploy(make_config())
        session.collect(deployment=info.name)
        with pytest.raises(ConfigError, match="output_dir"):
            session.plot(deployment=info.name)

    def test_plot_writes_charts(self, tmp_path):
        session = AdvisorSession()
        info = session.deploy(make_config())
        session.collect(deployment=info.name)
        result = session.plot(deployment=info.name,
                              output_dir=str(tmp_path / "plots"))
        assert len(result.paths) == 5
        assert all(os.path.exists(p) for p in result.paths)
        assert "pareto" in result.kinds

    def test_recipe_top_row(self):
        session = AdvisorSession()
        info = session.deploy(make_config())
        session.collect(deployment=info.name)
        recipe = session.recipe(deployment=info.name,
                                extra_env={"OMP_NUM_THREADS": "1"})
        assert "#SBATCH --nodes=" in recipe.slurm_script
        assert "OMP_NUM_THREADS" in recipe.slurm_script
        assert "vm_type" in recipe.cluster_recipe
        assert recipe.row is not None

    def test_recipe_row_out_of_range(self):
        session = AdvisorSession()
        info = session.deploy(make_config())
        session.collect(deployment=info.name)
        with pytest.raises(ReproError, match="row"):
            session.recipe(deployment=info.name, row=99)

    def test_predict_trains_on_session_data(self):
        session = AdvisorSession()
        info = session.deploy(make_config(nnodes=[1, 2, 4, 8]))
        session.collect(deployment=info.name)
        result = session.predict(deployment=info.name, nnodes=(16,))
        assert result.trained_on == 4
        assert result.rows
        assert all(r.predicted for r in result.rows)

    def test_predict_candidates_use_measured_ppn(self):
        """Candidates must match the trained process layout, not ppr=100."""
        session = AdvisorSession()
        info = session.deploy(make_config(nnodes=[1, 2, 4, 8], ppr=50))
        session.collect(deployment=info.name)
        measured_ppn = {p.ppn for p in session.dataset(info.name)}
        result = session.predict(deployment=info.name, nnodes=(16,))
        assert {r.ppn for r in result.rows} <= measured_ppn


class TestRun:
    def test_one_shot_run_returns_populated_advice(self):
        result = AdvisorSession().run(make_config())
        assert isinstance(result, AdviceResult)
        assert result.rows
        assert result.dataset_points == 2
        assert result.appname == "lammps"

    def test_run_json_round_trips(self):
        result = AdvisorSession().run(make_config())
        payload = json.loads(json.dumps(result.to_dict()))
        assert AdviceResult.from_dict(payload) == result

    def test_run_accepts_request_templates(self):
        result = AdvisorSession().run(
            make_config(nnodes=[1, 2, 4]),
            collect=CollectRequest(backend="slurm"),
            advise=AdviseRequest(sort_by="cost", max_rows=1),
        )
        assert len(result.rows) == 1
        assert result.sort_by == "cost"


class TestPersistenceAndResume:
    def test_tilde_state_dir_resolves_to_home(self, tmp_path, monkeypatch):
        """The documented state_dir='~/...' must land in $HOME, not a
        literal ./~ directory."""
        monkeypatch.setenv("HOME", str(tmp_path))
        session = AdvisorSession(state_dir="~/.hpcadvisor-test")
        assert session.store.root == str(tmp_path / ".hpcadvisor-test")

    def test_resume_reuses_collected_dataset(self, state_dir):
        config = make_config()
        first = AdvisorSession(state_dir=state_dir)
        info = first.deploy(config)
        r1 = first.collect(deployment=info.name)
        assert r1.executed == 2

        resumed = AdvisorSession(state_dir=state_dir)
        assert [i.name for i in resumed.list_deployments()] == [info.name]
        r2 = resumed.collect(deployment=info.name)
        assert r2.executed == 0  # nothing re-run
        assert r2.dataset_points == 2
        advice = resumed.advise(deployment=info.name)
        assert advice.rows

    def test_dataset_persists_on_disk(self, state_dir):
        session = AdvisorSession(state_dir=state_dir)
        info = session.deploy(make_config())
        result = session.collect(deployment=info.name)
        assert os.path.exists(result.dataset_path)

    def test_shutdown_removes_record(self, state_dir):
        session = AdvisorSession(state_dir=state_dir)
        info = session.deploy(make_config())
        session.shutdown(info.name)
        assert session.list_deployments() == []
        fresh = AdvisorSession(state_dir=state_dir)
        with pytest.raises(ResourceNotFound):
            fresh.deployment(info.name)

    def test_shutdown_keeps_data_for_analysis(self, state_dir):
        """'Release the resources, keep the data': advice still works on
        a shut-down deployment's dataset."""
        session = AdvisorSession(state_dir=state_dir)
        info = session.deploy(make_config())
        session.collect(deployment=info.name)
        session.shutdown(info.name)
        # The data files (whatever engine holds them) survive shutdown.
        assert session.store.data_files(info.name)
        advice = AdvisorSession(state_dir=state_dir).advise(
            deployment=info.name
        )
        assert advice.rows

    def test_recycled_name_starts_fresh(self, state_dir):
        """A deployment recycling a shut-down name must not inherit the
        old dataset/task DB (collect would no-op on stale 'completed')."""
        session = AdvisorSession(state_dir=state_dir)
        info = session.deploy(make_config())
        r1 = session.collect(deployment=info.name)
        assert r1.executed == 2
        session.shutdown(info.name)

        fresh = AdvisorSession(state_dir=state_dir)
        info2 = fresh.deploy(make_config())
        assert info2.name == info.name  # counter restarts -> same name
        assert info2.dataset_points == 0
        # The old data is archived (never deleted), and the caller is
        # told.  How many files that is depends on the storage engine
        # (two JSON files, or one SQLite database).
        assert info2.archived_data
        assert all(os.path.exists(p) for p in info2.archived_data)
        r2 = fresh.collect(deployment=info2.name)
        assert r2.executed == 2
        assert r2.dataset_points == 2

    def test_second_process_deploy_does_not_clobber_live_deployment(
            self, state_dir):
        """Name allocation must consult the store: a fresh process
        deploying the same rgprefix gets -001, leaving -000's data."""
        first = AdvisorSession(state_dir=state_dir)
        info = first.deploy(make_config())
        first.collect(deployment=info.name)
        assert info.name.endswith("-000")

        second = AdvisorSession(state_dir=state_dir)  # new provider
        info2 = second.deploy(make_config())
        assert info2.name.endswith("-001")
        assert second.store.data_store(info.name).exists()
        assert second.advise(deployment=info.name).rows

    def test_external_delete_invalidates_cache(self, state_dir):
        """A cached dataset must not mask externally deleted storage."""
        session = AdvisorSession(state_dir=state_dir)
        info = session.deploy(make_config())
        session.collect(deployment=info.name)
        assert len(session.dataset(info.name)) == 2  # cached from disk
        for path in session.store.data_files(info.name):
            os.remove(path)
        with pytest.raises(ReproError, match="run collect first"):
            session.dataset(info.name)
        assert session.info(info.name).dataset_points == 0

    def test_seed_only_rebind_keeps_sigma(self):
        session = AdvisorSession()
        info = session.deploy(make_config())
        session.collect(deployment=info.name, noise=0.1, seed=1)
        session.collect(deployment=info.name, seed=2)
        noise = session.backend(info.name).noise
        assert noise.sigma == 0.1
        assert noise.seed == 2

    def test_omitted_noise_keeps_backend_binding(self):
        """collect() without noise must not reset a noisy backend."""
        session = AdvisorSession()
        info = session.deploy(make_config())
        session.collect(deployment=info.name, noise=0.05, seed=3)
        assert session.backend(info.name).noise.sigma == 0.05
        session.collect(deployment=info.name, retry_failed=1)
        assert session.backend(info.name).noise.sigma == 0.05
        session.collect(deployment=info.name, noise=0.0)
        assert session.backend(info.name).noise.sigma == 0.0

    def test_collect_reports_per_sweep_infrastructure_cost(self):
        """Cached backends accumulate; results must report sweep deltas."""
        session = AdvisorSession()
        info = session.deploy(make_config())
        r1 = session.collect(deployment=info.name)
        assert r1.infrastructure_cost_usd > 0
        r2 = session.collect(deployment=info.name)
        assert r2.executed == 0
        assert r2.infrastructure_cost_usd == 0.0
        assert r2.provisioning_overhead_s == 0.0

    def test_shutdown_unknown_raises(self, state_dir):
        with pytest.raises(ResourceNotFound):
            AdvisorSession(state_dir=state_dir).shutdown("ghost")

    def test_ephemeral_attach_unknown_raises(self):
        with pytest.raises(ResourceNotFound):
            AdvisorSession().deployment("ghost")

    def test_backend_cached_per_deployment(self):
        session = AdvisorSession()
        info = session.deploy(make_config())
        b1 = session.backend(info.name)
        assert session.backend(info.name) is b1
        # noise/seed re-bind on the same instance (pools stay reused)...
        rebound = session.backend(info.name, noise=0.1, seed=1)
        assert rebound is b1
        assert rebound.noise.sigma == 0.1
        # ...and a bare inspection call leaves the binding untouched.
        assert session.backend(info.name).noise.sigma == 0.1

    def test_backend_inspection_sees_sweep_with_noise(self):
        """session.backend(name, 'slurm') must return the instance that
        ran collect(..., noise=...), not a fresh empty cluster."""
        session = AdvisorSession()
        info = session.deploy(make_config())
        session.collect(deployment=info.name, backend="slurm",
                        noise=0.05, seed=3)
        cluster = session.backend(info.name, "slurm").cluster
        assert len(cluster.sacct()) > 0

    def test_dataset_cache_sees_external_writes(self, state_dir):
        """A long-lived session (the GUI server) must not serve stale data
        after another process appends to the store."""
        import time

        from repro.core.dataset import DataPoint

        writer = AdvisorSession(state_dir=state_dir)
        info = writer.deploy(make_config())
        writer.collect(deployment=info.name)

        reader = AdvisorSession(state_dir=state_dir)
        assert len(reader.dataset(info.name)) == 2

        # Simulate a separate `collect` process appending a point: a
        # fresh StateStore means a fresh store handle (own connection),
        # exactly like another OS process.
        from repro.core.statefiles import StateStore

        external = StateStore(root=reader.store.root).data_store(info.name)
        external.append_point(DataPoint(
            appname="lammps", sku="Standard_HB120rs_v3", nnodes=4, ppn=120,
            exec_time_s=1.0, cost_usd=0.1, appinputs={"BOXFACTOR": "4"},
        ))
        external.close()
        for path in reader.store.data_files(info.name):
            future = time.time() + 2
            os.utime(path, (future, future))  # defeat mtime granularity

        assert len(reader.dataset(info.name)) == 3
        assert reader.info(info.name).dataset_points == 3

    def test_taskdb_cache_sees_external_collect(self, state_dir):
        """A session that cached an empty task DB must not re-execute
        scenarios another process completed (duplicate points)."""
        import time

        watcher = AdvisorSession(state_dir=state_dir)
        info = watcher.deploy(make_config())
        assert len(watcher.taskdb(info.name)) == 0  # cached, empty

        other = AdvisorSession(state_dir=state_dir)
        other.collect(deployment=info.name)
        for path in watcher.store.data_files(info.name):
            future = time.time() + 2
            os.utime(path, (future, future))  # defeat mtime granularity

        result = watcher.collect(deployment=info.name)
        assert result.executed == 0
        assert result.dataset_points == 2  # no duplicates appended

    def test_compare_between_deployments(self, state_dir):
        session = AdvisorSession(state_dir=state_dir)
        a = session.deploy(make_config(rgprefix="cma"))
        b = session.deploy(make_config(rgprefix="cmb"))
        session.collect(deployment=a.name)
        session.collect(deployment=b.name)
        comparison = session.compare(a.name, b.name)
        assert comparison.matched == 2
