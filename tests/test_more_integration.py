"""Deeper cross-module integration: more apps, quota families, payoff."""

import pytest

from repro.appkit.plugins import get_plugin
from repro.backends.azurebatch import AzureBatchBackend
from repro.core.advisor import Advisor
from repro.core.collector import DataCollector
from repro.core.dataset import Dataset
from repro.core.deployer import Deployer
from repro.core.payoff import (
    PayoffAnalysis,
    payoff_vs_worst_front_row,
    render_payoff,
)
from repro.core.scenarios import generate_scenarios
from repro.core.taskdb import TaskDB
from repro.errors import AdvisorError
from tests.conftest import make_config


def sweep(config):
    deployment = Deployer().deploy(config)
    collector = DataCollector(
        backend=AzureBatchBackend(service=deployment.batch),
        script=get_plugin(config.appname),
        dataset=Dataset(),
        taskdb=TaskDB(),
    )
    report = collector.collect(generate_scenarios(config))
    return report, collector.dataset


class TestWrfEndToEnd:
    def test_resolution_sweep(self):
        config = make_config(
            appname="wrf",
            nnodes=[2, 4, 8],
            appinputs={"RESOLUTION": ["12", "6"]},
        )
        report, dataset = sweep(config)
        assert report.completed == 6
        # Finer resolution = much more work at the same shape.
        coarse = dataset.filter(appinputs={"RESOLUTION": "12"}, nnodes=[4])
        fine = dataset.filter(appinputs={"RESOLUTION": "6"}, nnodes=[4])
        assert fine.points()[0].exec_time_s > \
            4 * coarse.points()[0].exec_time_s

    def test_wrf_metrics_in_dataset(self):
        config = make_config(appname="wrf", nnodes=[2],
                             appinputs={"RESOLUTION": ["12"]})
        _, dataset = sweep(config)
        vars_ = dataset.points()[0].app_vars
        assert "WRFGRIDPOINTS" in vars_
        assert "APPEXECTIME" in vars_


class TestNamdEndToEnd:
    def test_stmv_sweep_and_advice(self):
        config = make_config(
            appname="namd",
            skus=["Standard_HB120rs_v3", "Standard_HC44rs"],
            nnodes=[1, 2, 4],
            appinputs={"ATOMS": ["1060000"]},
        )
        report, dataset = sweep(config)
        assert report.failed == 0
        rows = Advisor(dataset).advise(appname="namd")
        assert rows
        assert rows[0].sku_short == "hb120rs_v3"


class TestLowQuotaFamilies:
    def test_hb176_quota_blocks_third_node(self):
        """standardHBrsv4Family defaults to 352 cores = 2x176 nodes."""
        from repro.errors import QuotaExceeded

        config = make_config(
            skus=["Standard_HB176rs_v4"],
            nnodes=[1, 2, 3],
            appinputs={"BOXFACTOR": ["10"]},
        )
        deployment = Deployer().deploy(config)
        collector = DataCollector(
            backend=AzureBatchBackend(service=deployment.batch),
            script=get_plugin("lammps"),
            dataset=Dataset(),
            taskdb=TaskDB(),
        )
        with pytest.raises(QuotaExceeded):
            collector.collect(generate_scenarios(config))
        # The two in-quota scenarios completed before the failure.
        assert collector.taskdb.counts()["completed"] == 2

    def test_raising_quota_unblocks(self):
        config = make_config(
            skus=["Standard_HB176rs_v4"],
            nnodes=[1, 2, 3],
            appinputs={"BOXFACTOR": ["10"]},
        )
        deployment = Deployer().deploy(config)
        sub = deployment.provider.get_subscription(config.subscription)
        sub.quota.set_limit("southcentralus", "standardHBrsv4Family", 1000)
        collector = DataCollector(
            backend=AzureBatchBackend(service=deployment.batch),
            script=get_plugin("lammps"),
            dataset=Dataset(),
            taskdb=TaskDB(),
        )
        report = collector.collect(generate_scenarios(config))
        assert report.completed == 3


class TestRegionalDeployments:
    def test_westeurope_costs_more(self):
        base = make_config(nnodes=[2])
        eu = make_config(nnodes=[2], region="westeurope")
        _, us_data = sweep(base)
        _, eu_data = sweep(eu)
        us_cost = us_data.points()[0].cost_usd
        eu_cost = eu_data.points()[0].cost_usd
        assert eu_cost == pytest.approx(us_cost * 1.09, rel=0.01)


class TestPayoff:
    def test_breakeven_math(self):
        analysis = PayoffAnalysis(
            collection_cost_usd=17.0,
            baseline_cost_per_run_usd=0.576,
            advised_cost_per_run_usd=0.519,
        )
        # $0.057 saved per run -> 299 runs to recoup $17.
        assert analysis.breakeven_runs == 299
        assert analysis.net_saving_after(299) >= 0
        assert analysis.net_saving_after(298) < 0

    def test_no_payoff_when_no_saving(self):
        analysis = PayoffAnalysis(
            collection_cost_usd=10.0,
            baseline_cost_per_run_usd=0.5,
            advised_cost_per_run_usd=0.5,
        )
        assert analysis.breakeven_runs is None
        assert "never pays off" in render_payoff(analysis)

    def test_validation(self):
        with pytest.raises(AdvisorError):
            PayoffAnalysis(-1, 1, 1)
        with pytest.raises(AdvisorError):
            PayoffAnalysis(1, 0, 1)
        with pytest.raises(AdvisorError):
            PayoffAnalysis(1, 1, 1).net_saving_after(-1)

    def test_payoff_from_real_sweep(self):
        """End to end: the Listing-4 sweep pays off within ~300 LJ runs."""
        config = make_config(
            skus=["Standard_HC44rs", "Standard_HB120rs_v2",
                  "Standard_HB120rs_v3"],
            nnodes=[3, 4, 8, 16],
            appinputs={"BOXFACTOR": ["30"]},
        )
        report, dataset = sweep(config)
        rows = Advisor(dataset).advise(appname="lammps")
        analysis = payoff_vs_worst_front_row(report.task_cost_usd, rows)
        assert analysis.breakeven_runs is not None
        assert 100 < analysis.breakeven_runs < 1000
        text = render_payoff(analysis)
        assert "break-even" in text

    def test_empty_rows_rejected(self):
        with pytest.raises(AdvisorError):
            payoff_vs_worst_front_row(1.0, [])
