"""Risk-adjusted cost model: expected/P95 makespans, capacity views,
the n-objective Pareto front, and the spot-summary regression."""

import math

import numpy as np
import pytest

from repro.cloud.eviction import EvictionModel
from repro.cloud.pricing import PriceCatalog
from repro.core.advisor import Advisor, AdviceRow
from repro.core.cost import (
    P95_METRIC,
    capacity_view,
    cheapest_capacity,
    expected_spot_runtime,
    ondemand_view_point,
    p95_spot_runtime,
    reprice_dataset,
    simulate_spot_makespans,
    spot_savings_summary,
    spot_view_point,
)
from repro.core.dataset import DataPoint, Dataset
from repro.core.pareto import (
    dominates_nd,
    pareto_indices,
    pareto_indices_nd,
    pareto_select_nd,
)
from repro.errors import AdvisorError

HB = "Standard_HB120rs_v3"


def dp(nnodes, t, sku=HB, **kwargs):
    return DataPoint(
        appname="lammps", sku=sku, nnodes=nnodes, ppn=120,
        exec_time_s=t, cost_usd=nnodes * 3.6 * t / 3600.0,
        appinputs={"BOXFACTOR": "30"}, **kwargs,
    )


class TestExpectedRuntime:
    def test_zero_rate_is_identity(self):
        assert expected_spot_runtime(500.0, 0.0, "restart") == 500.0
        assert expected_spot_runtime(500.0, 0.0, "checkpoint_restart") \
            == 500.0

    def test_restart_matches_closed_form(self):
        lam = 30.0 / 3600.0
        expected = expected_spot_runtime(200.0, 30.0, "restart")
        assert expected == pytest.approx(math.expm1(lam * 200.0) / lam)

    def test_small_rate_limit_converges_to_work(self):
        assert expected_spot_runtime(100.0, 1e-9, "restart") \
            == pytest.approx(100.0, rel=1e-6)
        assert expected_spot_runtime(
            100.0, 1e-9, "checkpoint_restart", 30.0, 5.0
        ) == pytest.approx(100.0, rel=1e-6)

    def test_monotonic_in_rate(self):
        values = [expected_spot_runtime(300.0, r, "restart")
                  for r in (1.0, 10.0, 100.0)]
        assert values == sorted(values)
        assert values[0] > 300.0

    def test_checkpointing_beats_restart_for_long_tasks(self):
        kwargs = dict(checkpoint_interval_s=60.0, checkpoint_overhead_s=5.0)
        restart = expected_spot_runtime(1200.0, 20.0, "restart")
        checkpoint = expected_spot_runtime(1200.0, 20.0,
                                           "checkpoint_restart", **kwargs)
        assert checkpoint < restart

    def test_extreme_rate_saturates_to_inf_not_overflow(self):
        assert expected_spot_runtime(1e6, 1e6, "restart") == math.inf
        assert expected_spot_runtime(
            1e6, 1e7, "checkpoint_restart", 1e5, 10.0
        ) == math.inf

    def test_fail_policy_has_no_model(self):
        with pytest.raises(AdvisorError):
            expected_spot_runtime(100.0, 10.0, "fail")


class TestP95Simulation:
    def test_deterministic_for_seed(self):
        a = simulate_spot_makespans(300.0, 60.0, "restart", seed=3)
        b = simulate_spot_makespans(300.0, 60.0, "restart", seed=3)
        assert np.array_equal(a, b)
        assert not np.array_equal(
            a, simulate_spot_makespans(300.0, 60.0, "restart", seed=4)
        )

    def test_zero_rate_returns_work_exactly(self):
        spans = simulate_spot_makespans(123.0, 0.0)
        assert np.all(spans == 123.0)

    def test_every_sample_at_least_the_work(self):
        spans = simulate_spot_makespans(300.0, 120.0, "checkpoint_restart",
                                        30.0, 5.0, samples=128)
        assert np.all(spans >= 300.0 - 1e-9)

    def test_p95_at_least_expected_shape(self):
        p95 = p95_spot_runtime(300.0, 120.0, "restart")
        assert p95 > 300.0
        mean = float(np.mean(
            simulate_spot_makespans(300.0, 120.0, "restart")
        ))
        assert p95 >= mean

    def test_mean_tracks_closed_form(self):
        spans = simulate_spot_makespans(200.0, 60.0, "restart",
                                        samples=2000, seed=1)
        expected = expected_spot_runtime(200.0, 60.0, "restart")
        assert float(np.mean(spans)) == pytest.approx(expected, rel=0.15)

    def test_censored_samples_record_inf_not_fake_makespans(self):
        """A sample that never finishes within the attempt budget must
        read as inf — a fictitious finite makespan would hide the tail
        from the P95 Pareto objective."""
        spans = simulate_spot_makespans(600.0, 5000.0, "restart",
                                        samples=16, max_attempts=64)
        assert np.all(np.isinf(spans))
        assert p95_spot_runtime(600.0, 5000.0, "restart") == math.inf

    def test_single_chunk_checkpoint_equals_restart(self):
        """Regression: a task shorter than one checkpoint interval has
        no checkpoint to restore, so checkpoint_restart must cost exactly
        what restart does — in the closed form, the simulation, and hence
        the advice (the old model charged restore on first-chunk retries,
        overstating spot cost ~40% for the default 600s interval)."""
        expected_cp = expected_spot_runtime(
            300.0, 20.0, "checkpoint_restart",
            checkpoint_interval_s=600.0, checkpoint_overhead_s=60.0,
        )
        expected_restart = expected_spot_runtime(300.0, 20.0, "restart")
        assert expected_cp == pytest.approx(expected_restart, rel=1e-12)
        spans = simulate_spot_makespans(
            300.0, 20.0, "checkpoint_restart", 600.0, 60.0,
            samples=4000, seed=1,
        )
        assert float(np.mean(spans)) == pytest.approx(expected_cp,
                                                      rel=0.1)


class TestCapacityViews:
    def test_spot_view_reprices_and_retimes(self):
        catalog = PriceCatalog()
        point = dp(2, 300.0)
        view = spot_view_point(point, catalog, EvictionModel.flat(60.0),
                               recovery="restart")
        expected = expected_spot_runtime(300.0, 120.0, "restart")
        assert view.capacity == "spot"
        assert view.makespan_s == pytest.approx(expected)
        assert view.cost_usd == pytest.approx(
            catalog.task_cost(HB, 2, expected, spot=True)
        )
        assert view.infra_metrics[P95_METRIC] > 300.0
        # The useful work column survives untouched.
        assert view.exec_time_s == 300.0

    def test_spot_view_keeps_realized_spot_measurements(self):
        catalog = PriceCatalog()
        measured = dp(2, 300.0, capacity="spot", preemptions=4,
                      makespan_s=900.0, wasted_node_s=600.0)
        view = spot_view_point(measured, catalog, EvictionModel.flat(60.0))
        assert view.makespan_s == 900.0
        assert view.cost_usd == measured.cost_usd
        assert view.preemptions == 4

    def test_ondemand_view_strips_spot_dynamics(self):
        catalog = PriceCatalog()
        measured = dp(2, 300.0, capacity="spot", preemptions=4,
                      makespan_s=900.0, wasted_node_s=600.0)
        view = ondemand_view_point(measured, catalog)
        assert view.capacity == "ondemand"
        assert view.preemptions == 0
        assert view.wasted_node_s == 0.0
        assert view.makespan_s == 300.0
        assert view.cost_usd == pytest.approx(
            catalog.task_cost(HB, 2, 300.0, spot=False)
        )

    def test_capacity_view_validates_tier(self):
        with pytest.raises(AdvisorError):
            capacity_view(Dataset([dp(1, 10.0)]), PriceCatalog(), "flex")

    def test_cheapest_capacity_picks_winner(self):
        cheap = AdviceRow(exec_time_s=10.0, cost_usd=0.1, nnodes=1, sku=HB)
        dear = AdviceRow(exec_time_s=5.0, cost_usd=0.5, nnodes=2, sku=HB)
        assert cheapest_capacity([
            ("ondemand", [dear]), ("spot", [cheap]),
        ]) == "spot"
        assert cheapest_capacity([("ondemand", []), ("spot", [])]) is None


class TestSpotSummaryRegression:
    """The old summary kept the on-demand exec time next to the spot
    price; with eviction dynamics the makespans differ, and the summary
    must say so."""

    def test_spot_column_carries_risk_adjusted_makespan(self):
        data = Dataset([dp(16, 36.0), dp(3, 173.0)])
        text = spot_savings_summary(
            data, PriceCatalog(),
            eviction=EvictionModel.flat(200.0), recovery="restart",
        )
        # At 200/h x 3 nodes the 173 s config's expected makespan is far
        # beyond its on-demand exec time; the table must show it (the old
        # code reused the on-demand time next to the spot price).
        lam = 200.0 * 3 / 3600.0
        expected = math.expm1(lam * 173.0) / lam
        assert f"E[{expected:.0f}s]" in text
        assert "risk-adjusted" in text
        # The 16-node config is dominated once risk-adjusted (slower AND
        # dearer on spot) — it drops off the spot front entirely.
        assert "(off front)" in text

    def test_spot_cost_reflects_expected_not_nominal_time(self):
        data = Dataset([dp(16, 36.0)])
        catalog = PriceCatalog()
        text = spot_savings_summary(
            data, catalog,
            eviction=EvictionModel.flat(200.0), recovery="restart",
        )
        lam = 200.0 * 16 / 3600.0
        expected = math.expm1(lam * 36.0) / lam
        risk_cost = catalog.task_cost(HB, 16, expected, spot=True)
        naive_cost = catalog.task_cost(HB, 16, 36.0, spot=True)
        assert f"${risk_cost:.4f}" in text
        assert f"${naive_cost:.4f}" not in text

    def test_zero_risk_summary_matches_plain_discount(self):
        data = Dataset([dp(16, 36.0)])
        catalog = PriceCatalog()
        text = spot_savings_summary(
            data, catalog, eviction=EvictionModel.flat(0.0),
        )
        discounted = catalog.task_cost(HB, 16, 36.0, spot=True)
        assert f"${discounted:.4f}" in text

    def test_repricing_still_preserves_times(self):
        data = Dataset([dp(16, 36.0), dp(3, 173.0)])
        spot = reprice_dataset(data, PriceCatalog(), spot=True)
        for before, after in zip(data, spot):
            assert after.exec_time_s == before.exec_time_s
            assert after.cost_usd == pytest.approx(before.cost_usd * 0.30)


class TestParetoNd:
    def test_dominates_nd_semantics(self):
        assert dominates_nd((1, 1, 1), (2, 2, 2))
        assert dominates_nd((1, 2, 3), (1, 2, 4))
        assert not dominates_nd((1, 2, 3), (1, 2, 3))
        assert not dominates_nd((1, 5), (2, 4))
        with pytest.raises(ValueError):
            dominates_nd((1, 2), (1, 2, 3))

    def test_two_objectives_match_fast_sweep(self):
        points = [(3.0, 1.0), (1.0, 3.0), (2.0, 2.0), (2.5, 2.5),
                  (1.0, 3.0)]
        assert sorted(pareto_indices_nd(points)) \
            == sorted(pareto_indices(points))

    def test_third_objective_keeps_tail_risk_survivors(self):
        # Same expected time and cost, wildly different P95: both stay.
        points = [(10.0, 1.0, 12.0), (10.0, 1.0, 90.0), (11.0, 1.1, 95.0)]
        front = pareto_indices_nd(points)
        assert 0 in front
        # (10, 1, 90) is dominated by (10, 1, 12); (11, 1.1, 95) too.
        assert front == [0]
        spread = [(10.0, 2.0, 12.0), (12.0, 1.0, 90.0), (11.0, 1.5, 8.0)]
        assert sorted(pareto_indices_nd(spread)) == [0, 1, 2]

    def test_empty_and_mixed_dims(self):
        assert pareto_indices_nd([]) == []
        with pytest.raises(ValueError):
            pareto_indices_nd([(1.0, 2.0), (1.0, 2.0, 3.0)])

    def test_select_nd_orders_by_objective(self):
        items = ["slowcheap", "fastdear", "mid"]
        keys = {"slowcheap": (30.0, 1.0, 40.0), "fastdear": (10.0, 3.0, 15.0),
                "mid": (20.0, 2.0, 25.0)}
        selected = pareto_select_nd(items, key=lambda i: keys[i])
        assert selected == ["fastdear", "mid", "slowcheap"]


class TestAdvisorEffectiveObjective:
    def make_dataset(self):
        catalog = PriceCatalog()
        points = [dp(2, 300.0), dp(4, 170.0), dp(8, 100.0)]
        return capacity_view(
            Dataset(points), catalog, "spot",
            eviction=EvictionModel.flat(30.0), recovery="checkpoint_restart",
            checkpoint_interval_s=30.0, checkpoint_overhead_s=5.0,
        )

    def test_effective_front_uses_makespan_axis(self):
        rows = Advisor(self.make_dataset()).advise(objective="effective")
        assert rows
        for row in rows:
            assert row.capacity == "spot"
            assert row.makespan_s >= row.exec_time_s
            assert row.p95_makespan_s >= row.makespan_s * 0.5

    def test_effective_sorting_by_effective_time(self):
        rows = Advisor(self.make_dataset()).advise(objective="effective",
                                                   sort_by="time")
        spans = [row.effective_time_s for row in rows]
        assert spans == sorted(spans)

    def test_invalid_objective_rejected(self):
        with pytest.raises(AdvisorError, match="objective"):
            Advisor(Dataset([dp(1, 10.0)])).advise(objective="speed")

    def test_spot_rows_render_risk_columns(self):
        advisor = Advisor(self.make_dataset())
        rows = advisor.advise(objective="effective")
        table = advisor.render_table(rows)
        assert "E[Span](s)" in table
        assert "P95(s)" in table
        assert "[spot]" in table

    def test_ondemand_rows_keep_paper_table_shape(self):
        rows = Advisor(Dataset([dp(2, 300.0), dp(8, 100.0)])).advise()
        table = Advisor(Dataset()).render_table(rows)
        assert table.splitlines()[0] == \
            f"{'Exectime(s)':>11} {'Cost($)':>8} {'Nodes':>6}  SKU"
        assert "[spot]" not in table
