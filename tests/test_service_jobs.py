"""Job manager tests: lifecycle, persistence, concurrency, edge cases."""

import json
import os
import threading
import time

import pytest

from repro.api.results import CollectResult
from repro.errors import ConfigError, JobNotFound, JobStateError
from repro.service.jobs import (
    TERMINAL_STATES,
    JobManager,
    JobRecord,
)


class FakeSession:
    """Stands in for AdvisorSession: controllable collect()/predict()."""

    def __init__(self, gate=None, fail_with=None, on_start=None,
                 progress_steps=0):
        self.gate = gate          # threading.Event the sweep blocks on
        self.fail_with = fail_with
        self.on_start = on_start  # callable(deployment)
        self.progress_steps = progress_steps

    def collect(self, request, progress=None):
        if self.on_start is not None:
            self.on_start(request.deployment)
        if self.gate is not None:
            # Poll the gate so cancellation (raised from `progress`) can
            # interrupt a "running" sweep, like the real collector does
            # between scenarios.
            while not self.gate.wait(timeout=0.01):
                if progress is not None:
                    progress(_FakeReport(), 5)
        if self.fail_with is not None:
            raise self.fail_with
        for step in range(self.progress_steps):
            if progress is not None:
                progress(_FakeReport(executed=step + 1), self.progress_steps)
        return CollectResult(deployment=request.deployment, executed=2,
                             completed=2, dataset_points=2)

    def predict(self, request):
        from repro.api.results import PredictResult

        return PredictResult(deployment=request.deployment, trained_on=3)


class _FakeReport:
    def __init__(self, executed=0):
        self.executed = executed
        self.completed = executed
        self.failed = 0
        self.skipped = 0
        self.predicted = 0
        self.preemptions = 0
        self.simulated_wall_s = float(executed)


def make_manager(tmp_path, session=None, workers=2, **kwargs):
    return JobManager(
        jobs_dir=str(tmp_path / "jobs"),
        session_factory=lambda: session or FakeSession(),
        workers=workers,
        **kwargs,
    )


class TestJobRecord:
    def test_round_trips_through_json(self):
        record = JobRecord(
            id="job-1", kind="collect", deployment="d-000", state="done",
            request={"deployment": "d-000"}, created_at=1.5,
            result={"completed": 2}, progress={"executed": 2, "total": 2},
        )
        assert JobRecord.from_json(record.to_json()) == record

    def test_finished_property(self):
        for state in TERMINAL_STATES:
            assert JobRecord(id="j", state=state).finished
        for state in ("queued", "running"):
            assert not JobRecord(id="j", state=state).finished


class TestSubmitAndRun:
    def test_collect_job_runs_to_done(self, tmp_path):
        manager = make_manager(tmp_path)
        record = manager.submit("collect", {"deployment": "d-000"})
        assert record.state == "queued"
        final = manager.wait(record.id, timeout=10)
        assert final.state == "done"
        assert final.result["completed"] == 2
        assert final.started_at is not None
        assert final.finished_at >= final.started_at
        manager.close()

    def test_predict_job_runs_to_done(self, tmp_path):
        manager = make_manager(tmp_path)
        record = manager.submit("predict", {"deployment": "d-000"})
        final = manager.wait(record.id, timeout=10)
        assert final.state == "done"
        assert final.result["trained_on"] == 3
        manager.close()

    def test_progress_counters_update(self, tmp_path):
        manager = make_manager(tmp_path,
                               session=FakeSession(progress_steps=3))
        record = manager.submit("collect", {"deployment": "d-000"})
        final = manager.wait(record.id, timeout=10)
        assert final.progress["executed"] == 3
        assert final.progress["total"] == 3
        manager.close()

    def test_failed_job_records_the_error(self, tmp_path):
        manager = make_manager(
            tmp_path, session=FakeSession(fail_with=ConfigError("boom")))
        record = manager.submit("collect", {"deployment": "d-000"})
        final = manager.wait(record.id, timeout=10)
        assert final.state == "failed"
        assert "boom" in final.error
        manager.close()

    def test_submit_validates_kind_and_request(self, tmp_path):
        manager = make_manager(tmp_path)
        with pytest.raises(ConfigError):
            manager.submit("frobnicate", {"deployment": "d"})
        with pytest.raises(ConfigError):
            manager.submit("collect", {})  # no deployment
        with pytest.raises(ConfigError):
            manager.submit("collect", {"deployment": "d", "bogus": 1})
        manager.close()

    def test_get_unknown_job_raises(self, tmp_path):
        manager = make_manager(tmp_path)
        with pytest.raises(JobNotFound):
            manager.get("job-nope")
        manager.close()


class TestPersistence:
    def test_every_transition_is_on_disk(self, tmp_path):
        manager = make_manager(tmp_path)
        record = manager.submit("collect", {"deployment": "d-000"})
        manager.wait(record.id, timeout=10)
        path = tmp_path / "jobs" / f"{record.id}.json"
        assert path.exists()
        on_disk = json.loads(path.read_text())
        assert on_disk["state"] == "done"
        assert on_disk["result"]["completed"] == 2
        manager.close()

    def test_restart_lists_finished_jobs(self, tmp_path):
        manager = make_manager(tmp_path)
        record = manager.submit("collect", {"deployment": "d-000"})
        manager.wait(record.id, timeout=10)
        manager.close()
        reborn = make_manager(tmp_path)
        assert reborn.get(record.id).state == "done"
        assert [r.id for r in reborn.list()] == [record.id]
        reborn.close()

    def test_restart_marks_running_job_stale(self, tmp_path):
        """A `running` record from a dead server must surface as stale,
        not hang forever."""
        jobs_dir = tmp_path / "jobs"
        jobs_dir.mkdir()
        orphan = JobRecord(id="job-dead", kind="collect",
                           deployment="d-000", state="running",
                           request={"deployment": "d-000"}, created_at=1.0)
        (jobs_dir / "job-dead.json").write_text(orphan.to_json())
        manager = make_manager(tmp_path)
        record = manager.get("job-dead")
        assert record.state == "stale"
        assert "restarted" in record.error
        assert record.finished  # wait() would return immediately
        # ... and the new state is persisted for the next restart too.
        assert json.loads(
            (jobs_dir / "job-dead.json").read_text())["state"] == "stale"
        manager.close()

    def test_restart_keeps_running_job_with_live_lease(self, tmp_path):
        """Regression: N servers can share one state dir.  A `running`
        record whose lease is still live belongs to a *sibling* that is
        alive and heartbeating — a restart elsewhere must not stale it."""
        jobs_dir = tmp_path / "jobs"
        jobs_dir.mkdir()
        alive = JobRecord(id="job-alive", kind="collect",
                          deployment="d-000", state="running",
                          request={"deployment": "d-000"}, created_at=1.0,
                          worker_id="sibling-server",
                          lease_expires_at=time.time() + 300)
        (jobs_dir / "job-alive.json").write_text(alive.to_json())
        manager = make_manager(tmp_path)
        record = manager.get("job-alive")
        assert record.state == "running"
        assert record.error == ""
        assert not record.finished
        assert record.worker_id == "sibling-server"
        # ... and nothing was rewritten behind the owner's back.
        assert json.loads(
            (jobs_dir / "job-alive.json").read_text())["state"] == "running"
        manager.close()

    def test_restart_stales_running_job_with_expired_lease(self, tmp_path):
        """The flip side: an *expired* lease proves the worker is dead."""
        jobs_dir = tmp_path / "jobs"
        jobs_dir.mkdir()
        dead = JobRecord(id="job-expired", kind="collect",
                         deployment="d-000", state="running",
                         request={"deployment": "d-000"}, created_at=1.0,
                         worker_id="dead-server",
                         lease_expires_at=time.time() - 1)
        (jobs_dir / "job-expired.json").write_text(dead.to_json())
        manager = make_manager(tmp_path)
        record = manager.get("job-expired")
        assert record.state == "stale"
        assert "restarted" in record.error
        manager.close()

    def test_heartbeat_renews_lease_while_running(self, tmp_path):
        """A running job's persisted lease keeps moving forward, so a
        concurrent reader never mistakes a live job for an orphan."""
        gate = threading.Event()
        manager = make_manager(tmp_path,
                               session=FakeSession(gate=gate))
        try:
            record = manager.submit("collect", {"deployment": "d-000"})
            deadline = time.monotonic() + 10
            lease = None
            while lease is None and time.monotonic() < deadline:
                on_disk = json.loads(
                    (tmp_path / "jobs" / f"{record.id}.json").read_text())
                if on_disk["state"] == "running":
                    lease = on_disk["lease_expires_at"]
                time.sleep(0.01)
            assert lease is not None and lease > time.time()
        finally:
            gate.set()
            manager.close()

    def test_restart_requeues_queued_job(self, tmp_path):
        jobs_dir = tmp_path / "jobs"
        jobs_dir.mkdir()
        pending = JobRecord(id="job-q", kind="collect", deployment="d-000",
                            state="queued",
                            request={"deployment": "d-000"}, created_at=1.0)
        (jobs_dir / "job-q.json").write_text(pending.to_json())
        manager = make_manager(tmp_path)
        final = manager.wait("job-q", timeout=10)
        assert final.state == "done"
        manager.close()

    def test_unreadable_record_does_not_block_startup(self, tmp_path):
        jobs_dir = tmp_path / "jobs"
        jobs_dir.mkdir()
        (jobs_dir / "garbage.json").write_text("{not json")
        manager = make_manager(tmp_path)
        assert manager.list() == []
        manager.close()


class TestCancellation:
    def test_cancel_while_queued(self, tmp_path):
        gate = threading.Event()
        started = threading.Event()
        session = FakeSession(gate=gate,
                              on_start=lambda dep: started.set())
        manager = make_manager(tmp_path, session=session, workers=1)
        # Fill the single worker with a blocked job...
        blocker = manager.submit("collect", {"deployment": "d-000"})
        assert started.wait(timeout=5)
        # ...so this one is genuinely still queued when we cancel it.
        queued = manager.submit("collect", {"deployment": "d-001"})
        cancelled = manager.cancel(queued.id)
        assert cancelled.state == "cancelled"
        gate.set()
        manager.wait(blocker.id, timeout=10)
        # The worker must skip the cancelled job, not run it.
        time.sleep(0.05)
        assert manager.get(queued.id).state == "cancelled"
        manager.close()

    def test_cancel_while_running_is_cooperative(self, tmp_path):
        gate = threading.Event()
        started = threading.Event()
        session = FakeSession(gate=gate,
                              on_start=lambda dep: started.set())
        manager = make_manager(tmp_path, session=session, workers=1)
        record = manager.submit("collect", {"deployment": "d-000"})
        assert started.wait(timeout=5)
        manager.cancel(record.id)  # sets the flag; sweep notices via progress
        final = manager.wait(record.id, timeout=10)
        assert final.state == "cancelled"
        gate.set()
        manager.close()

    def test_cancel_finished_job_raises(self, tmp_path):
        manager = make_manager(tmp_path)
        record = manager.submit("collect", {"deployment": "d-000"})
        manager.wait(record.id, timeout=10)
        with pytest.raises(JobStateError):
            manager.cancel(record.id)
        manager.close()

    def test_cancel_unknown_job_raises(self, tmp_path):
        manager = make_manager(tmp_path)
        with pytest.raises(JobNotFound):
            manager.cancel("job-nope")
        manager.close()


class TestConcurrency:
    def test_same_deployment_jobs_serialize(self, tmp_path):
        """Two jobs on one deployment must never overlap (task-DB race)."""
        active = {"count": 0, "max": 0}
        lock = threading.Lock()

        class TrackedSession(FakeSession):
            def collect(self, request, progress=None):
                with lock:
                    active["count"] += 1
                    active["max"] = max(active["max"], active["count"])
                time.sleep(0.05)
                with lock:
                    active["count"] -= 1
                return CollectResult(deployment=request.deployment)

        manager = JobManager(
            jobs_dir=str(tmp_path / "jobs"),
            session_factory=TrackedSession,
            workers=4,
        )
        records = [
            manager.submit("collect", {"deployment": "d-000"})
            for _ in range(3)
        ]
        for record in records:
            assert manager.wait(record.id, timeout=10).state == "done"
        assert active["max"] == 1
        manager.close()

    def test_different_deployments_run_concurrently(self, tmp_path):
        """With enough workers, distinct deployments overlap in time."""
        overlap = {"count": 0, "max": 0}
        lock = threading.Lock()

        class TrackedSession(FakeSession):
            def collect(self, request, progress=None):
                with lock:
                    overlap["count"] += 1
                    overlap["max"] = max(overlap["max"], overlap["count"])
                time.sleep(0.1)
                with lock:
                    overlap["count"] -= 1
                return CollectResult(deployment=request.deployment)

        manager = JobManager(
            jobs_dir=str(tmp_path / "jobs"),
            session_factory=TrackedSession,
            workers=4,
        )
        records = [
            manager.submit("collect", {"deployment": f"d-{i:03d}"})
            for i in range(4)
        ]
        for record in records:
            assert manager.wait(record.id, timeout=10).state == "done"
        assert overlap["max"] > 1
        manager.close()

    def test_counts_by_state(self, tmp_path):
        manager = make_manager(tmp_path)
        record = manager.submit("collect", {"deployment": "d-000"})
        manager.wait(record.id, timeout=10)
        counts = manager.counts()
        assert counts["done"] == 1
        assert counts["queued"] == 0
        manager.close()

    def test_workers_validated(self, tmp_path):
        with pytest.raises(ConfigError):
            JobManager(jobs_dir=str(tmp_path / "jobs"),
                       session_factory=FakeSession, workers=0)

    def test_wait_times_out(self, tmp_path):
        gate = threading.Event()
        manager = make_manager(tmp_path, session=FakeSession(gate=gate),
                               workers=1)
        record = manager.submit("collect", {"deployment": "d-000"})
        with pytest.raises(JobStateError):
            manager.wait(record.id, timeout=0.2)
        gate.set()
        manager.wait(record.id, timeout=10)
        manager.close()


class TestRealPipeline:
    """One lifecycle against the genuine AdvisorSession, no fakes."""

    def test_collect_job_over_real_state_dir(self, tmp_path):
        from repro.api import AdvisorSession
        from tests.conftest import make_config

        state_dir = str(tmp_path / "state")
        control = AdvisorSession(state_dir=state_dir)
        info = control.deploy(make_config(rgprefix="jobrg"))
        manager = JobManager(
            jobs_dir=os.path.join(state_dir, "jobs"),
            session_factory=lambda: AdvisorSession(state_dir=state_dir),
            workers=2,
        )
        record = manager.submit("collect", {"deployment": info.name})
        final = manager.wait(record.id, timeout=30)
        assert final.state == "done", final.error
        assert final.result["completed"] == 2
        assert final.progress["total"] == 2
        # The control-plane session sees the collected data (file-signature
        # cache invalidation) and can advise on it.
        advice = control.advise(deployment=info.name)
        assert len(advice.rows) >= 1
        manager.close()


class TestParkedJobs:
    def test_cancelled_parked_job_does_not_strand_later_waiters(self,
                                                                tmp_path):
        """Regression: with J1 running and J2, J3 parked behind the same
        deployment's lock, cancelling J2 must not eat the wake-up that
        J3 needs when J1 releases the lock."""
        gate = threading.Event()
        started = threading.Event()
        session = FakeSession(gate=gate,
                              on_start=lambda dep: started.set())
        manager = make_manager(tmp_path, session=session, workers=2)
        j1 = manager.submit("collect", {"deployment": "d-000"})
        assert started.wait(timeout=5)
        j2 = manager.submit("collect", {"deployment": "d-000"})
        j3 = manager.submit("collect", {"deployment": "d-000"})
        # Wait until both followers are parked behind d-000's lock.
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            with manager._lock:
                if len(manager._parked.get("d-000", ())) == 2:
                    break
            time.sleep(0.01)
        else:
            raise AssertionError("followers never parked")
        manager.cancel(j2.id)
        gate.set()
        assert manager.wait(j1.id, timeout=10).state == "done"
        assert manager.wait(j3.id, timeout=10).state == "done"
        assert manager.get(j2.id).state == "cancelled"
        manager.close()


class TestRetention:
    def test_oldest_finished_jobs_are_pruned(self, tmp_path):
        manager = make_manager(tmp_path, retention=2)
        ids = []
        for i in range(4):
            record = manager.submit("collect", {"deployment": f"d-{i:03d}"})
            manager.wait(record.id, timeout=10)
            ids.append(record.id)
        manager.submit("collect", {"deployment": "d-next"})  # triggers prune
        listed = {r.id for r in manager.list()}
        # The two oldest finished jobs are gone, memory and disk.
        assert ids[0] not in listed and ids[1] not in listed
        assert ids[2] in listed and ids[3] in listed
        remaining = {p.name for p in (tmp_path / "jobs").glob("job-*.json")}
        assert f"{ids[0]}.json" not in remaining
        with pytest.raises(JobNotFound):
            manager.get(ids[0])
        manager.close()

    def test_retention_never_evicts_unfinished_jobs(self, tmp_path):
        gate = threading.Event()
        manager = make_manager(tmp_path, session=FakeSession(gate=gate),
                               workers=1, retention=1)
        running = manager.submit("collect", {"deployment": "d-000"})
        queued = manager.submit("collect", {"deployment": "d-001"})
        assert {r.id for r in manager.list()} >= {running.id, queued.id}
        gate.set()
        manager.wait(running.id, timeout=10)
        manager.wait(queued.id, timeout=10)
        manager.close()

    def test_retention_validated(self, tmp_path):
        with pytest.raises(ConfigError):
            make_manager(tmp_path, retention=0)

    def test_resumed_job_progress_is_not_stuck_below_total(self, tmp_path):
        """A resumed sweep has no pending work: its progress must not
        report 0/N forever (N = all scenarios ever)."""
        from repro.api import AdvisorSession
        from tests.conftest import make_config

        state_dir = str(tmp_path / "state")
        control = AdvisorSession(state_dir=state_dir)
        info = control.deploy(make_config(rgprefix="resumerg"))
        manager = JobManager(
            jobs_dir=os.path.join(state_dir, "jobs"),
            session_factory=lambda: AdvisorSession(state_dir=state_dir),
            workers=1,
        )
        first = manager.submit("collect", {"deployment": info.name})
        assert manager.wait(first.id, timeout=30).progress["total"] == 2
        second = manager.submit("collect", {"deployment": info.name})
        final = manager.wait(second.id, timeout=30)
        assert final.state == "done"
        assert final.result["executed"] == 0
        assert final.progress == {}  # nothing pending -> no counters
        manager.close()
