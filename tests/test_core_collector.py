"""Algorithm-1 collector tests."""

import pytest

from repro.appkit.plugins import get_plugin
from repro.backends.azurebatch import AzureBatchBackend, pool_id_for
from repro.core.collector import DataCollector, SamplingDecision
from repro.core.dataset import Dataset
from repro.core.deployer import Deployer
from repro.core.scenarios import generate_scenarios
from repro.core.taskdb import TaskDB, TaskStatus
from tests.conftest import make_config


def build(config, **kwargs):
    deployment = Deployer().deploy(config)
    backend = AzureBatchBackend(service=deployment.batch)
    collector = DataCollector(
        backend=backend,
        script=get_plugin(config.appname),
        dataset=Dataset(),
        taskdb=TaskDB(),
        deployment_name=deployment.name,
        **kwargs,
    )
    return collector, deployment


class TestBasicSweep:
    def test_all_tasks_completed(self):
        config = make_config(nnodes=[1, 2], appinputs={"BOXFACTOR": ["4", "6"]})
        collector, _ = build(config)
        report = collector.collect(generate_scenarios(config))
        assert report.executed == 4
        assert report.completed == 4
        assert report.failed == 0
        assert len(collector.dataset) == 4
        assert collector.taskdb.counts()["completed"] == 4

    def test_empty_scenarios(self):
        config = make_config()
        collector, _ = build(config)
        report = collector.collect([])
        assert report.total_tasks == 0

    def test_dataset_points_carry_everything(self):
        config = make_config(nnodes=[2])
        collector, deployment = build(config)
        collector.collect(generate_scenarios(config))
        point = collector.dataset.points()[0]
        assert point.appname == "lammps"
        assert point.nnodes == 2
        assert point.exec_time_s > 0
        assert point.cost_usd > 0
        assert point.app_vars["LAMMPSSTEPS"] == "100"
        assert point.infra_metrics  # bottleneck data recorded
        assert point.deployment == deployment.name
        assert point.tags == {"version": "test"}


class TestAlgorithm1PoolManagement:
    def test_one_pool_per_vmtype(self):
        config = make_config(
            skus=["Standard_HB120rs_v3", "Standard_HC44rs"], nnodes=[1, 2]
        )
        collector, deployment = build(config)
        collector.collect(generate_scenarios(config))
        pools = deployment.batch.list_pools(include_deleted=True)
        assert {p.pool_id for p in pools} == {
            pool_id_for("Standard_HB120rs_v3"), pool_id_for("Standard_HC44rs")
        }

    def test_pools_resized_to_zero_on_switch(self):
        """Algorithm 1 line 5: 'resize pool to zero or delete pool'."""
        config = make_config(
            skus=["Standard_HB120rs_v3", "Standard_HC44rs"], nnodes=[1, 2]
        )
        collector, deployment = build(config)
        collector.collect(generate_scenarios(config))
        for pool in deployment.batch.list_pools():
            assert pool.current_nodes == 0

    def test_delete_pool_mode(self):
        config = make_config(nnodes=[1, 2])
        collector, deployment = build(config, delete_pool_on_switch=True)
        collector.collect(generate_scenarios(config))
        assert deployment.batch.list_pools() == []

    def test_pool_grows_monotonically_within_sku(self):
        config = make_config(nnodes=[4, 1, 2])
        collector, deployment = build(config)
        collector.collect(generate_scenarios(config))
        pool = deployment.batch.list_pools(include_deleted=True)[0]
        # Ascending execution order means exactly one resize per new size
        # plus the final resize to zero.
        assert pool.resize_count == 4

    def test_setup_task_once_per_vmtype(self):
        config = make_config(nnodes=[1, 2])
        collector, deployment = build(config)
        collector.collect(generate_scenarios(config))
        setup_tasks = [
            t for job in deployment.batch.jobs.values()
            for t in job.tasks.values() if t.kind.value == "setup"
        ]
        assert len(setup_tasks) == 1


class TestFailureHandling:
    def test_oom_marks_failed_and_continues(self):
        # bf=60 OOMs on 1 node but fits on 16.
        config = make_config(nnodes=[1, 16], appinputs={"BOXFACTOR": ["60"]})
        collector, _ = build(config)
        report = collector.collect(generate_scenarios(config))
        assert report.failed == 1
        assert report.completed == 1
        assert len(report.failures) == 1
        assert "out of memory" in report.failures[0]
        statuses = {r.scenario.nnodes: r.status for r in collector.taskdb.all()}
        assert statuses[1] is TaskStatus.FAILED
        assert statuses[16] is TaskStatus.COMPLETED

    def test_stop_on_failure(self):
        config = make_config(nnodes=[1, 16], appinputs={"BOXFACTOR": ["60"]})
        collector, _ = build(config, stop_on_failure=True)
        report = collector.collect(generate_scenarios(config))
        assert report.executed == 1
        assert collector.taskdb.counts()["pending"] == 1


class TestResume:
    def test_resume_skips_done_tasks(self):
        config = make_config(nnodes=[1, 2])
        collector, _ = build(config)
        scenarios = generate_scenarios(config)
        first = collector.collect(scenarios)
        assert first.executed == 2
        second = collector.collect(scenarios)
        assert second.executed == 0
        assert len(collector.dataset) == 2


class TestSamplerIntegration:
    class SkipAllSampler:
        def decide(self, scenario):
            return SamplingDecision(action="skip", reason="test")

        def observe(self, point):
            pass

    class PredictSampler:
        def decide(self, scenario):
            if scenario.nnodes > 1:
                return SamplingDecision(
                    action="predict", predicted_time_s=10.0,
                    predicted_cost_usd=0.01,
                )
            return SamplingDecision(action="run")

        def observe(self, point):
            self.seen = getattr(self, "seen", 0) + 1

    def test_skip_all(self):
        config = make_config(nnodes=[1, 2])
        collector, _ = build(config, sampler=self.SkipAllSampler())
        report = collector.collect(generate_scenarios(config))
        assert report.skipped == 2
        assert report.executed == 0
        assert all(r.skipped_by_sampler for r in collector.taskdb.all())

    def test_predictions_stored_marked(self):
        config = make_config(nnodes=[1, 2])
        sampler = self.PredictSampler()
        collector, _ = build(config, sampler=sampler)
        report = collector.collect(generate_scenarios(config))
        assert report.predicted == 1
        assert report.executed == 1
        predicted = [p for p in collector.dataset if p.predicted]
        assert len(predicted) == 1
        assert predicted[0].exec_time_s == 10.0
        # Only measured points are fed back to the sampler.
        assert sampler.seen == 1

    def test_decision_validation(self):
        with pytest.raises(ValueError):
            SamplingDecision(action="maybe")
        with pytest.raises(ValueError):
            SamplingDecision(action="predict")


class TestPersistence:
    def test_saves_when_paths_set(self, tmp_path):
        config = make_config(nnodes=[1])
        deployment = Deployer().deploy(config)
        collector = DataCollector(
            backend=AzureBatchBackend(service=deployment.batch),
            script=get_plugin("lammps"),
            dataset=Dataset(path=str(tmp_path / "d.jsonl")),
            taskdb=TaskDB(path=str(tmp_path / "t.json")),
        )
        collector.collect(generate_scenarios(config))
        assert Dataset.load(str(tmp_path / "d.jsonl")).points()
        assert TaskDB.load(str(tmp_path / "t.json")).counts()["completed"] == 1
