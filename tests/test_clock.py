"""SimClock, EventQueue, and BillingMeter tests."""

import pytest

from repro.clock import BillingMeter, EventQueue, SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advance(self):
        clock = SimClock()
        clock.advance(10.5)
        assert clock.now == 10.5

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(1.0)
        clock.advance(2.0)
        assert clock.now == 3.0

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            SimClock().advance(-1.0)

    def test_advance_to(self):
        clock = SimClock()
        clock.advance_to(100.0)
        assert clock.now == 100.0

    def test_advance_to_past_rejected(self):
        clock = SimClock(now=50.0)
        with pytest.raises(ValueError, match="backwards"):
            clock.advance_to(10.0)

    def test_observers_see_every_advance(self):
        clock = SimClock()
        seen = []
        clock.subscribe(lambda old, new: seen.append((old, new)))
        clock.advance(5)
        clock.advance(3)
        assert seen == [(0, 5), (5, 8)]

    def test_stopwatch(self):
        clock = SimClock()
        watch = clock.stopwatch()
        clock.advance(7)
        assert watch.elapsed == 7
        watch.restart()
        assert watch.elapsed == 0

    def test_stopwatch_accumulates_after_restart(self):
        clock = SimClock()
        watch = clock.stopwatch()
        clock.advance(5)
        watch.restart()
        clock.advance(2)
        clock.advance(1)
        assert watch.elapsed == 3

    def test_observers_see_advance_to(self):
        clock = SimClock()
        seen = []
        clock.subscribe(lambda old, new: seen.append((old, new)))
        clock.advance_to(4)
        clock.advance_to(9)
        assert seen == [(0, 4), (4, 9)]

    def test_advance_to_is_exact(self):
        """advance_to lands on the target exactly, no now+delta rounding."""
        clock = SimClock(now=0.1)
        target = 0.1 + 0.7  # not exactly representable either way
        clock.advance_to(target)
        assert clock.now == target


class TestEventQueue:
    def test_events_fire_in_time_order(self):
        clock = SimClock()
        engine = EventQueue(clock)
        fired = []
        engine.schedule_at(30, lambda: fired.append(("b", clock.now)))
        engine.schedule_at(10, lambda: fired.append(("a", clock.now)))
        engine.schedule_at(20, lambda: fired.append(("m", clock.now)))
        assert engine.run_until_idle() == 30
        assert fired == [("a", 10), ("m", 20), ("b", 30)]

    def test_ties_break_by_insertion_order(self):
        engine = EventQueue(SimClock())
        fired = []
        for tag in "abc":
            engine.schedule_at(5, lambda t=tag: fired.append(t))
        engine.run_until_idle()
        assert fired == ["a", "b", "c"]

    def test_schedule_in_past_clamps_to_now(self):
        clock = SimClock(now=100.0)
        engine = EventQueue(clock)
        fired = []
        engine.schedule_at(5, lambda: fired.append(clock.now))
        engine.run_until_idle()
        assert fired == [100.0]

    def test_schedule_in_relative(self):
        clock = SimClock(now=50.0)
        engine = EventQueue(clock)
        fired = []
        engine.schedule_in(25, lambda: fired.append(clock.now))
        engine.run_until_idle()
        assert fired == [75.0]

    def test_schedule_in_negative_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            EventQueue(SimClock()).schedule_in(-1, lambda: None)

    def test_events_can_schedule_events(self):
        clock = SimClock()
        engine = EventQueue(clock)
        fired = []
        engine.schedule_at(
            10, lambda: engine.schedule_in(5, lambda: fired.append(clock.now))
        )
        engine.run_until_idle()
        assert fired == [15.0]

    def test_run_until_stops_at_timestamp(self):
        clock = SimClock()
        engine = EventQueue(clock)
        fired = []
        engine.schedule_at(10, lambda: fired.append("early"))
        engine.schedule_at(99, lambda: fired.append("late"))
        engine.run_until(50)
        assert fired == ["early"]
        assert clock.now == 50
        assert len(engine) == 1
        engine.run_until_idle()
        assert fired == ["early", "late"]

    def test_run_next_returns_false_when_idle(self):
        assert EventQueue(SimClock()).run_next() is False

    def test_spawned_processes_interleave(self):
        """Two generator timelines share one clock without serializing."""
        clock = SimClock()
        engine = EventQueue(clock)
        trace = []

        def worker(tag, delays):
            for delay in delays:
                yield clock.now + delay
                trace.append((tag, clock.now))

        engine.spawn(worker("a", [10, 10]))
        engine.spawn(worker("b", [15, 1]))
        engine.run_until_idle()
        assert trace == [("a", 10), ("b", 15), ("b", 16), ("a", 20)]

    def test_spawn_on_done_fires_after_return(self):
        clock = SimClock()
        engine = EventQueue(clock)
        events = []

        def worker():
            yield 5.0
            events.append("worked")

        engine.spawn(worker(), on_done=lambda: events.append("done"))
        engine.run_until_idle()
        assert events == ["worked", "done"]

    def test_spawn_empty_process_completes_immediately(self):
        done = []

        def empty():
            return
            yield  # pragma: no cover - makes this a generator function

        EventQueue(SimClock()).spawn(empty(), on_done=lambda: done.append(1))
        assert done == [1]


class TestBillingMeter:
    def test_no_nodes_no_cost(self):
        clock = SimClock()
        meter = BillingMeter(clock=clock, hourly_price=3.60)
        clock.advance(3600)
        assert meter.accrued_usd == 0.0

    def test_one_node_hour(self):
        clock = SimClock()
        meter = BillingMeter(clock=clock, hourly_price=3.60)
        meter.set_nodes(1)
        clock.advance(3600)
        assert meter.accrued_usd == pytest.approx(3.60)

    def test_varying_node_counts(self):
        clock = SimClock()
        meter = BillingMeter(clock=clock, hourly_price=2.0)
        meter.set_nodes(4)
        clock.advance(1800)  # 4 nodes x 0.5 h x $2 = $4
        meter.set_nodes(1)
        clock.advance(3600)  # 1 node x 1 h x $2 = $2
        assert meter.accrued_usd == pytest.approx(6.0)
        assert meter.accrued_node_seconds == pytest.approx(4 * 1800 + 3600)

    def test_windows_recorded(self):
        clock = SimClock()
        meter = BillingMeter(clock=clock, hourly_price=1.0)
        meter.set_nodes(2)
        clock.advance(10)
        assert meter.windows == [(0, 10, 2)]

    def test_negative_nodes_rejected(self):
        meter = BillingMeter(clock=SimClock(), hourly_price=1.0)
        with pytest.raises(ValueError):
            meter.set_nodes(-1)

    def test_multiple_meters_independent(self):
        clock = SimClock()
        a = BillingMeter(clock=clock, hourly_price=1.0)
        b = BillingMeter(clock=clock, hourly_price=10.0)
        a.set_nodes(1)
        b.set_nodes(1)
        clock.advance(3600)
        assert a.accrued_usd == pytest.approx(1.0)
        assert b.accrued_usd == pytest.approx(10.0)
