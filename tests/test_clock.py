"""SimClock and BillingMeter tests."""

import pytest

from repro.clock import BillingMeter, SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advance(self):
        clock = SimClock()
        clock.advance(10.5)
        assert clock.now == 10.5

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(1.0)
        clock.advance(2.0)
        assert clock.now == 3.0

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            SimClock().advance(-1.0)

    def test_advance_to(self):
        clock = SimClock()
        clock.advance_to(100.0)
        assert clock.now == 100.0

    def test_advance_to_past_rejected(self):
        clock = SimClock(now=50.0)
        with pytest.raises(ValueError, match="backwards"):
            clock.advance_to(10.0)

    def test_observers_see_every_advance(self):
        clock = SimClock()
        seen = []
        clock.subscribe(lambda old, new: seen.append((old, new)))
        clock.advance(5)
        clock.advance(3)
        assert seen == [(0, 5), (5, 8)]

    def test_stopwatch(self):
        clock = SimClock()
        watch = clock.stopwatch()
        clock.advance(7)
        assert watch.elapsed == 7
        watch.restart()
        assert watch.elapsed == 0


class TestBillingMeter:
    def test_no_nodes_no_cost(self):
        clock = SimClock()
        meter = BillingMeter(clock=clock, hourly_price=3.60)
        clock.advance(3600)
        assert meter.accrued_usd == 0.0

    def test_one_node_hour(self):
        clock = SimClock()
        meter = BillingMeter(clock=clock, hourly_price=3.60)
        meter.set_nodes(1)
        clock.advance(3600)
        assert meter.accrued_usd == pytest.approx(3.60)

    def test_varying_node_counts(self):
        clock = SimClock()
        meter = BillingMeter(clock=clock, hourly_price=2.0)
        meter.set_nodes(4)
        clock.advance(1800)  # 4 nodes x 0.5 h x $2 = $4
        meter.set_nodes(1)
        clock.advance(3600)  # 1 node x 1 h x $2 = $2
        assert meter.accrued_usd == pytest.approx(6.0)
        assert meter.accrued_node_seconds == pytest.approx(4 * 1800 + 3600)

    def test_windows_recorded(self):
        clock = SimClock()
        meter = BillingMeter(clock=clock, hourly_price=1.0)
        meter.set_nodes(2)
        clock.advance(10)
        assert meter.windows == [(0, 10, 2)]

    def test_negative_nodes_rejected(self):
        meter = BillingMeter(clock=SimClock(), hourly_price=1.0)
        with pytest.raises(ValueError):
            meter.set_nodes(-1)

    def test_multiple_meters_independent(self):
        clock = SimClock()
        a = BillingMeter(clock=clock, hourly_price=1.0)
        b = BillingMeter(clock=clock, hourly_price=10.0)
        a.set_nodes(1)
        b.set_nodes(1)
        clock.advance(3600)
        assert a.accrued_usd == pytest.approx(1.0)
        assert b.accrued_usd == pytest.approx(10.0)
