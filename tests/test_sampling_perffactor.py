"""Scaling-law regression tests."""

import pytest

from repro.cloud.skus import get_sku
from repro.perf.registry import get_model
from repro.sampling.perffactor import ScalingLaw, fit_per_group, fit_scaling_law
from repro.errors import SamplingError


class TestFit:
    def test_recovers_known_coefficients(self):
        # T(n) = 1000/n + 10 + 2n, sampled exactly.
        points = [(n, 1000 / n + 10 + 2 * n) for n in (1, 2, 4, 8, 16)]
        law = fit_scaling_law(points)
        assert law.a == pytest.approx(1000, rel=1e-6)
        assert law.b == pytest.approx(10, rel=1e-4)
        assert law.c == pytest.approx(2, rel=1e-4)
        assert law.r_squared == pytest.approx(1.0)

    def test_interpolation_accurate(self):
        points = [(n, 500 / n + 5) for n in (1, 2, 8, 16)]
        law = fit_scaling_law(points)
        assert law.predict(4) == pytest.approx(130, rel=0.01)

    def test_coefficients_nonnegative(self):
        # Decreasing superlinearly: nnls must not go negative.
        points = [(1, 100), (2, 40), (4, 18), (8, 9)]
        law = fit_scaling_law(points)
        assert law.a >= 0 and law.b >= 0 and law.c >= 0

    def test_needs_three_distinct_node_counts(self):
        with pytest.raises(SamplingError, match="3 distinct"):
            fit_scaling_law([(1, 10), (1, 11), (2, 6)])

    def test_invalid_values(self):
        with pytest.raises(SamplingError):
            fit_scaling_law([(0, 1), (1, 2), (2, 3)])
        with pytest.raises(SamplingError):
            fit_scaling_law([(1, -1), (2, 2), (4, 3)])

    def test_predict_validation(self):
        law = fit_scaling_law([(1, 10), (2, 6), (4, 4)])
        with pytest.raises(SamplingError):
            law.predict(0)

    def test_fits_simulated_lammps_well(self):
        """The paper's own workload should regress nearly perfectly."""
        sku = get_sku("Standard_HB120rs_v3")
        model = get_model("lammps")
        points = [
            (n, model.simulate(sku, n, 120, {"BOXFACTOR": "30"}).exec_time_s)
            for n in (2, 3, 4, 8, 16)
        ]
        law = fit_scaling_law(points)
        assert law.r_squared > 0.998
        predicted = law.predict(6)
        actual = model.simulate(sku, 6, 120, {"BOXFACTOR": "30"}).exec_time_s
        assert predicted == pytest.approx(actual, rel=0.08)


class TestLawBehaviour:
    def test_optimistic_below_predict(self):
        law = ScalingLaw(a=100, b=5, c=1, r_squared=1, n_points=4,
                         n_min=1, n_max=8)
        assert law.optimistic(4) < law.predict(4)

    def test_within_range(self):
        law = ScalingLaw(a=1, b=1, c=0, r_squared=1, n_points=3,
                         n_min=2, n_max=8)
        assert law.within_range(4)
        assert law.within_range(16, extrapolation=2.0)
        assert not law.within_range(17, extrapolation=2.0)
        assert not law.within_range(0.5, extrapolation=1.0)

    def test_scaled_by_work(self):
        """Cross-input transfer: compute terms scale linearly with work."""
        law = ScalingLaw(a=100, b=10, c=3, r_squared=1, n_points=4,
                         n_min=1, n_max=16)
        double = law.scaled_by_work(2.0)
        assert double.a == 200
        assert double.b == 20
        assert double.c == pytest.approx(3 * 2 ** (2 / 3))
        with pytest.raises(SamplingError):
            law.scaled_by_work(0)


class TestFitPerGroup:
    def test_groups_fitted_independently(self):
        observations = (
            [("v3", n, 100 / n) for n in (1, 2, 4, 8)]
            + [("hc", n, 400 / n) for n in (1, 2, 4)]
            + [("sparse", 1, 10.0)]  # too few points -> omitted
        )
        laws = fit_per_group(observations)
        assert set(laws) == {"v3", "hc"}
        assert laws["hc"].a == pytest.approx(400, rel=1e-6)
