"""CloudProvider facade tests."""

import pytest

from repro.cloud.provider import CloudProvider
from repro.errors import (
    ResourceExists,
    ResourceNotFound,
    SkuNotAvailable,
)


class TestSubscriptions:
    def test_register_and_get(self, provider):
        sub = provider.register_subscription("mysub")
        assert provider.get_subscription("mysub") is sub

    def test_register_idempotent(self, provider):
        a = provider.register_subscription("mysub")
        b = provider.register_subscription("mysub")
        assert a is b

    def test_unknown_subscription(self, provider):
        with pytest.raises(ResourceNotFound):
            provider.get_subscription("ghost")


class TestResourceGroups:
    def test_create_advances_clock(self, provider):
        before = provider.clock.now
        provider.create_resource_group("rg1", "eastus")
        assert provider.clock.now > before

    def test_duplicate_rejected(self, provider):
        provider.create_resource_group("rg1", "eastus")
        with pytest.raises(ResourceExists):
            provider.create_resource_group("rg1", "eastus")

    def test_recreate_after_delete_allowed(self, provider):
        provider.create_resource_group("rg1", "eastus")
        provider.delete_resource_group("rg1")
        provider.create_resource_group("rg1", "eastus")

    def test_list_by_prefix(self, provider):
        provider.create_resource_group("hpcadvisor-001", "eastus")
        provider.create_resource_group("hpcadvisor-002", "eastus")
        provider.create_resource_group("other", "eastus")
        names = [rg.name for rg in provider.list_resource_groups("hpcadvisor")]
        assert names == ["hpcadvisor-001", "hpcadvisor-002"]

    def test_get_deleted_raises(self, provider):
        provider.create_resource_group("rg1", "eastus")
        provider.delete_resource_group("rg1")
        with pytest.raises(ResourceNotFound):
            provider.get_resource_group("rg1")

    def test_operation_log(self, provider):
        provider.create_resource_group("rg1", "eastus")
        assert any("create_resource_group rg1" in line
                   for line in provider.operation_log)


class TestSkuValidation:
    def test_valid_combination(self, provider):
        sku = provider.validate_sku_in_region(
            "Standard_HB120rs_v3", "southcentralus"
        )
        assert sku.cores == 120

    def test_sku_missing_in_region(self, provider):
        with pytest.raises(SkuNotAvailable):
            provider.validate_sku_in_region("Standard_HB120rs_v3", "japaneast")


class TestNetworkingAndStorage:
    def test_full_landing_zone(self, provider):
        provider.create_resource_group("rg1", "southcentralus")
        provider.create_vnet("rg1", "vnet", "10.44.0.0/16")
        provider.create_subnet("rg1", "vnet", "compute", "10.44.0.0/20")
        account = provider.create_storage_account("rg1", "rg1storage")
        assert account.region == "southcentralus"

    def test_storage_names_globally_unique(self, provider):
        provider.create_resource_group("rg1", "eastus")
        provider.create_resource_group("rg2", "eastus")
        provider.create_storage_account("rg1", "sharedname")
        with pytest.raises(ResourceExists):
            provider.create_storage_account("rg2", "sharedname")

    def test_subnet_on_missing_vnet(self, provider):
        provider.create_resource_group("rg1", "eastus")
        with pytest.raises(ResourceNotFound):
            provider.create_subnet("rg1", "ghost", "s", "10.0.0.0/24")

    def test_peer_vnets_across_groups(self, provider):
        provider.create_resource_group("rg1", "eastus")
        provider.create_resource_group("rg2", "eastus")
        provider.create_vnet("rg1", "a", "10.0.0.0/16")
        provider.create_vnet("rg2", "b", "10.1.0.0/16")
        provider.peer_vnets("rg1", "a", "rg2", "b")
        assert "b" in provider.get_resource_group("rg1").vnets["a"].peered_with

    def test_jumpbox_creation(self, provider):
        provider.create_resource_group("rg1", "eastus")
        provider.create_vnet("rg1", "vnet", "10.44.0.0/16")
        provider.create_subnet("rg1", "vnet", "infra", "10.44.16.0/24")
        provider.create_jumpbox("rg1", "jumpbox", "vnet", "infra")
        assert "jumpbox" in provider.get_resource_group("rg1").jumpboxes

    def test_batch_account_registration(self, provider):
        provider.create_resource_group("rg1", "eastus")
        provider.register_batch_account("rg1", "batch1")
        with pytest.raises(ResourceExists):
            provider.register_batch_account("rg1", "batch1")
