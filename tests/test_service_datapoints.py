"""Wire contract of the paginated data routes (ISSUE 5).

``GET /v1/datapoints`` (query pushdown + pagination), the
``limit``/``offset`` windows on ``/v1/jobs`` and ``/v1/deployments``,
and the ``purge_data`` flag on ``DELETE /v1/deployments/<name>`` —
router-level (no sockets) plus the :class:`RemoteSession` mirror over a
real server.
"""

import json

import pytest

from repro.api.results import SessionInfo
from repro.service.app import build_state
from repro.service.router import Router
from tests.conftest import make_config


@pytest.fixture
def state(tmp_path):
    service_state = build_state(str(tmp_path / "state"), workers=2)
    yield service_state
    service_state.close()


@pytest.fixture
def router(state):
    return Router(state)


def deploy(router, prefix="dprg", **overrides):
    overrides.setdefault("skus",
                         ["Standard_HB120rs_v3", "Standard_HC44rs"])
    overrides.setdefault("nnodes", [1, 2])
    config = make_config(rgprefix=prefix, **overrides)
    response = router.handle("POST", "/v1/deployments",
                             json.dumps({"config": config.to_dict()}))
    assert response.status == 201, response.payload
    return SessionInfo.from_dict(response.payload)


def collect_done(router, name):
    response = router.handle("POST", "/v1/jobs/collect",
                             json.dumps({"deployment": name}))
    assert response.status == 202, response.payload
    record = router.state.jobs.wait(response.payload["id"], timeout=30)
    assert record.state == "done", record.error
    return record


class TestDatapointsRoute:
    def test_requires_deployment(self, router):
        response = router.handle("GET", "/v1/datapoints")
        assert response.status == 400

    def test_full_listing_with_default_page(self, router):
        info = deploy(router)
        collect_done(router, info.name)
        response = router.handle(
            "GET", f"/v1/datapoints?deployment={info.name}")
        assert response.status == 200
        payload = response.payload
        assert payload["total"] == 4
        assert len(payload["points"]) == 4
        assert payload["limit"] == 500  # bounded default page
        assert {p["sku"] for p in payload["points"]} == {
            "Standard_HB120rs_v3", "Standard_HC44rs",
        }

    def test_filter_pushdown_and_window(self, router):
        info = deploy(router)
        collect_done(router, info.name)
        response = router.handle(
            "GET",
            f"/v1/datapoints?deployment={info.name}"
            "&sku=hb120rs_v3&limit=1&offset=1",
        )
        payload = response.payload
        assert payload["total"] == 2  # total ignores the window
        assert len(payload["points"]) == 1
        assert payload["points"][0]["sku"] == "Standard_HB120rs_v3"
        assert payload["offset"] == 1

    def test_nnodes_and_appinput_filters(self, router):
        info = deploy(router)
        collect_done(router, info.name)
        response = router.handle(
            "GET",
            f"/v1/datapoints?deployment={info.name}"
            "&nnodes=2&filter=BOXFACTOR%3D4",
        )
        payload = response.payload
        assert payload["total"] == 2
        assert all(p["nnodes"] == 2 for p in payload["points"])

    def test_unknown_deployment_404s(self, router):
        response = router.handle("GET", "/v1/datapoints?deployment=ghost")
        assert response.status in (404, 422)

    def test_post_not_allowed(self, router):
        response = router.handle("POST", "/v1/datapoints", "{}")
        assert response.status == 405


class TestPaginatedListings:
    def test_deployments_listing_pages(self, router):
        for i in range(3):
            deploy(router, prefix=f"pag{i}rg",
                   skus=["Standard_HB120rs_v3"], nnodes=[1])
        response = router.handle("GET", "/v1/deployments?limit=2&offset=1")
        payload = response.payload
        assert payload["total"] == 3
        assert len(payload["deployments"]) == 2
        names = [d["name"] for d in payload["deployments"]]
        assert names == ["pag1rg-000", "pag2rg-000"]

    def test_jobs_listing_pages(self, router):
        info = deploy(router, skus=["Standard_HB120rs_v3"], nnodes=[1])
        for _ in range(3):
            collect_done(router, info.name)
        response = router.handle("GET", "/v1/jobs?limit=2")
        payload = response.payload
        assert payload["total"] == 3
        assert len(payload["jobs"]) == 2
        rest = router.handle("GET", "/v1/jobs?limit=2&offset=2").payload
        assert len(rest["jobs"]) == 1
        ids = [j["id"] for j in payload["jobs"]] + [
            j["id"] for j in rest["jobs"]]
        assert len(set(ids)) == 3  # no overlap, nothing lost


class TestPurgeRoute:
    def test_delete_with_purge_removes_data(self, router):
        info = deploy(router, skus=["Standard_HB120rs_v3"], nnodes=[1])
        collect_done(router, info.name)
        session = router.state.session
        assert session.store.data_files(info.name)
        response = router.handle(
            "DELETE", f"/v1/deployments/{info.name}?purge_data=true")
        assert response.status == 200
        assert response.payload["purged_data"] is True
        assert session.store.data_files(info.name) == ()

    def test_delete_without_purge_keeps_data(self, router):
        info = deploy(router, skus=["Standard_HB120rs_v3"], nnodes=[1])
        collect_done(router, info.name)
        response = router.handle(
            "DELETE", f"/v1/deployments/{info.name}")
        assert response.status == 200
        assert response.payload["purged_data"] is False
        assert router.state.session.store.data_files(info.name)


class TestRemoteSessionMirror:
    """The typed client speaks the same pagination dialect, over sockets."""

    @pytest.fixture
    def served(self, tmp_path):
        import threading

        from repro.service.app import make_server

        server = make_server(str(tmp_path / "state"),
                             host="127.0.0.1", port=0, workers=2)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            yield f"http://127.0.0.1:{server.server_address[1]}"
        finally:
            server.shutdown()
            server.server_close()
            server.state.close()
            thread.join(timeout=10)

    def test_datapoints_round_trip(self, served):
        from repro.client import RemoteSession
        from repro.core.query import Query

        remote = RemoteSession(served, timeout=30)
        config = make_config(rgprefix="remrg",
                             skus=["Standard_HB120rs_v3",
                                   "Standard_HC44rs"],
                             nnodes=[1, 2])
        info = remote.deploy(config.to_dict())
        remote.collect(deployment=info.name).wait(timeout=60)

        page = remote.datapoints(info.name, Query(sku="hc44rs", limit=1))
        assert page.total == 2
        assert len(page.points) == 1
        assert page.has_more
        assert page.points[0].sku == "Standard_HC44rs"
        # keyword form, measured-only, full page
        all_points = remote.datapoints(info.name, limit=10)
        assert all_points.total == 4
        assert [p.to_dict() for p in all_points.points] == [
            p.to_dict() for p in
            remote.datapoints(info.name, Query(limit=10)).points
        ]

    def test_jobs_and_deployments_pagination(self, served):
        from repro.client import RemoteSession

        remote = RemoteSession(served, timeout=30)
        config = make_config(rgprefix="remprg",
                             skus=["Standard_HB120rs_v3"], nnodes=[1])
        info = remote.deploy(config.to_dict())
        remote.collect(deployment=info.name).wait(timeout=60)
        remote.collect(deployment=info.name).wait(timeout=60)

        assert len(remote.jobs(limit=1)) == 1
        assert len(remote.jobs(limit=1, offset=1)) == 1
        assert remote.jobs(limit=1)[0].id != \
            remote.jobs(limit=1, offset=1)[0].id
        assert len(remote.list_deployments(limit=1)) == 1

    def test_purge_over_the_wire(self, served, tmp_path):
        from repro.client import RemoteSession

        remote = RemoteSession(served, timeout=30)
        config = make_config(rgprefix="rempurg",
                             skus=["Standard_HB120rs_v3"], nnodes=[1])
        info = remote.deploy(config.to_dict())
        remote.collect(deployment=info.name).wait(timeout=60)
        remote.shutdown(info.name, purge_data=True)
        from repro.core.statefiles import StateStore

        store = StateStore(root=str(tmp_path / "state"))
        assert store.data_files(info.name) == ()
